"""S10 — AIDE: F1 of the learned region vs labelling effort ([18]).

A hidden rectangular interest region; the simulated user labels the
samples AIDE asks about.  The headline curve: F1 climbs steeply within a
few hundred labels — a tiny fraction of what labelling random tuples
until the region is pinned down would take.

Shape assertions: final F1 is high; F1 is (weakly) improving; the labels
consumed are a small fraction of the table.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import numpy as np
from common import print_table

from repro.explore import AideExplorer

N = 20_000


def _dataset(n: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    features = rng.uniform(0, 100, size=(n, 2))
    truth = (
        (features[:, 0] >= 35)
        & (features[:, 0] <= 60)
        & (features[:, 1] >= 20)
        & (features[:, 1] <= 55)
    ).astype(int)
    return features, truth


def run_experiment(n: int = N, rounds: int = 14):
    features, truth = _dataset(n)
    explorer = AideExplorer(
        features,
        oracle=lambda i: int(truth[i]),
        samples_per_round=25,
        seed=1,
    )
    result = explorer.run(max_iterations=rounds, truth=truth)
    rows = []
    for i, f1 in enumerate(result.f1_history):
        rows.append([(i + 1) * 25, f1])
    return result, rows, n


def test_bench_aide(benchmark) -> None:
    result, rows, n = run_experiment(n=8_000, rounds=12)
    print_table("S10: F1 of learned region vs labels", ["labels", "F1"], rows)
    nonzero = [f for f in result.f1_history if f > 0]
    assert nonzero and nonzero[-1] > 0.6
    assert max(result.f1_history) >= result.f1_history[0]
    assert result.samples_labeled < n * 0.1, "labelling effort << table size"

    features, truth = _dataset(4_000, seed=2)

    def one_run():
        explorer = AideExplorer(
            features, oracle=lambda i: int(truth[i]), samples_per_round=25, seed=3
        )
        return explorer.run(max_iterations=6).samples_labeled

    benchmark(one_run)


if __name__ == "__main__":
    _, rows, _ = run_experiment()
    print_table("S10: F1 of learned region vs labels", ["labels", "F1"], rows)
