"""S27 — partitioned adaptive indexing (HAIL / Hadoop [53]).

Block-resident data behind a zone map, with per-partition cracking built
only where queries land.  On data with value locality (sorted/clustered
blocks — the common case for time-ordered big-data ingests) most
partitions are pruned outright, and cold partitions never pay a byte of
indexing effort.

Shape assertions: the zone map prunes the vast majority of partition
visits; only the touched partitions ever build indexes; total work beats
a monolithic cracker on first-touch cost.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import numpy as np
from common import print_table

from repro.indexing import CrackerIndex, PartitionedAdaptiveIndex
from repro.workloads import shifting_focus_queries, uniform_column

N = 1_000_000
DOMAIN = (0, 10_000_000)


def run_experiment(n: int = N, num_queries: int = 120):
    values = np.sort(uniform_column(n, *DOMAIN, seed=0))  # time-ordered ingest
    queries = shifting_focus_queries(
        num_queries, DOMAIN, selectivity=0.001, num_phases=3, focus_fraction=0.03, seed=1
    )
    partitioned = PartitionedAdaptiveIndex(values, partition_size=n // 64)
    monolithic = CrackerIndex(values.copy())
    for query in queries:
        partitioned.lookup_range(query.low, query.high, True, False)
        monolithic.lookup_range(query.low, query.high, True, False)
    visits = partitioned.partitions_pruned + partitioned.partitions_scanned
    rows = [
        ["partitions", partitioned.num_partitions, "-"],
        ["partition visits pruned", partitioned.partitions_pruned, f"{partitioned.partitions_pruned / visits:.0%}"],
        ["partitions ever indexed", partitioned.partitions_indexed, f"of {partitioned.num_partitions}"],
        ["work: partitioned", partitioned.work_touched, "-"],
        ["work: monolithic crack", monolithic.work_touched, "-"],
    ]
    return partitioned, monolithic, rows


def test_bench_partitioned_indexing(benchmark) -> None:
    partitioned, monolithic, rows = run_experiment(n=200_000, num_queries=90)
    print_table(
        "S27: partitioned adaptive indexing on block-local data",
        ["metric", "value", "note"],
        rows,
    )
    visits = partitioned.partitions_pruned + partitioned.partitions_scanned
    assert partitioned.partitions_pruned / visits > 0.8, "zone map must prune hard"
    assert partitioned.partitions_indexed < partitioned.num_partitions / 2, (
        "cold partitions never build indexes"
    )
    assert partitioned.work_touched < monolithic.work_touched, (
        "block pruning beats monolithic first-touch cracking"
    )

    values = np.sort(uniform_column(100_000, *DOMAIN, seed=2))
    queries = shifting_focus_queries(30, DOMAIN, selectivity=0.001, seed=3)

    def run_partitioned():
        index = PartitionedAdaptiveIndex(values, partition_size=4_096)
        for query in queries:
            index.lookup_range(query.low, query.high, True, False)
        return index.work_touched

    benchmark(run_partitioned)


if __name__ == "__main__":
    *_, rows = run_experiment()
    print_table(
        "S27: partitioned adaptive indexing on block-local data",
        ["metric", "value", "note"],
        rows,
    )
