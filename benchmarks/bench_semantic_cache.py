"""S25 — semantic range caching: reuse of overlapping query results.

An exploration session's range queries overlap heavily (zoom-ins,
shifting focus).  The semantic cache answers covered sub-ranges locally
and fetches only remainder intervals.

Shape assertions: on a zoom-in workload most returned rows come from the
cache; base-table fetch volume is a fraction of what no caching pays;
exact-match repeats fetch nothing.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import numpy as np
from common import print_table

from repro.prefetch import SemanticRangeCache
from repro.workloads import uniform_column, zoom_in_queries

N = 200_000
DOMAIN = (0, 1_000_000)


def run_experiment(n: int = N, num_queries: int = 40):
    values = uniform_column(n, *DOMAIN, seed=0).astype(float)
    fetched = {"rows": 0}

    def fetch(low, high):
        hits = np.flatnonzero((values >= low) & (values < high))
        fetched["rows"] += len(hits)
        return hits

    cache = SemanticRangeCache(fetch)
    queries = zoom_in_queries(num_queries, DOMAIN, shrink=0.85, seed=1)
    no_cache_rows = 0
    rows = []
    for i, query in enumerate(queries):
        result = cache.query_filtered(float(query.low), float(query.high), values)
        truth = int(((values >= query.low) & (values < query.high)).sum())
        no_cache_rows += truth
        assert len(result) == truth
        if i in (0, 1, 5, 15, num_queries - 1):
            rows.append(
                [i + 1, query.width, truth, fetched["rows"], no_cache_rows]
            )
    rows.append(
        [
            "summary",
            "-",
            "-",
            fetched["rows"],
            no_cache_rows,
        ]
    )
    return cache, fetched["rows"], no_cache_rows, rows


def test_bench_semantic_cache(benchmark) -> None:
    cache, fetched_rows, no_cache_rows, rows = run_experiment(n=60_000, num_queries=30)
    print_table(
        "S25: cumulative base-table rows fetched, with vs without semantic cache",
        ["query", "range width", "result rows", "fetched (cached)", "fetched (no cache)"],
        rows,
    )
    assert fetched_rows < no_cache_rows / 2, (
        "overlapping ranges should be served mostly from cache"
    )
    assert cache.stats.cache_fraction > 0.3

    values = uniform_column(30_000, *DOMAIN, seed=2).astype(float)

    def fetch(low, high):
        return np.flatnonzero((values >= low) & (values < high))

    def session():
        cache_ = SemanticRangeCache(fetch)
        for query in zoom_in_queries(15, DOMAIN, shrink=0.8, seed=3):
            cache_.query_filtered(float(query.low), float(query.high), values)
        return cache_.stats.cache_fraction

    benchmark(session)


if __name__ == "__main__":
    *_, rows = run_experiment()
    print_table(
        "S25: cumulative base-table rows fetched, with vs without semantic cache",
        ["query", "range width", "result rows", "fetched (cached)", "fetched (no cache)"],
        rows,
    )
