"""Shared helpers for the benchmark harness.

Every ``bench_*.py`` file regenerates one experiment from DESIGN.md's
per-experiment index: it defines a ``run_experiment()`` that returns the
printed series, a pytest-benchmark test that times the core operation and
asserts the *shape* claims, and a ``__main__`` hook so
``python benchmarks/bench_x.py`` prints the full table.

Results are no longer print-only: every table rendered through
:func:`print_table` is also recorded into the process-wide metrics
registry (``repro.obs``), so a run's combined results can be dumped as
one structured JSON document via :func:`metrics_snapshot`.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.obs.metrics import get_registry


def print_table(title: str, headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Render and print a fixed-width results table; returns the text.

    The raw (unformatted) rows are also recorded in the metrics registry
    under the table title, for structured consumption.
    """
    get_registry().record_table(title, headers, rows)
    rendered = [[_format(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rendered)) if rendered else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [title, "=" * len(title)]
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in rendered:
        lines.append(" | ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    text = "\n".join(lines)
    print("\n" + text + "\n")
    return text


def _format(cell: Any) -> str:
    if isinstance(cell, float):
        if cell != 0 and (abs(cell) >= 1e5 or abs(cell) < 1e-3):
            return f"{cell:.3e}"
        return f"{cell:,.3f}"
    if isinstance(cell, int):
        return f"{cell:,}"
    return str(cell)


def metrics_snapshot(indent: int | None = 2) -> str:
    """The metrics registry (benchmark tables included) as a JSON string."""
    return get_registry().to_json(indent=indent)


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (0 guarded)."""
    import math

    positive = [v for v in values if v > 0]
    if not positive:
        return 0.0
    return math.exp(sum(math.log(v) for v in positive) / len(positive))
