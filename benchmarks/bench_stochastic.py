"""S2 — stochastic cracking robustness ([23]'s headline figure).

Standard cracking degenerates on a *sequential* workload: each query
cracks off a small slice of one huge unsorted piece, so every query
re-touches nearly the whole remainder.  Stochastic cracking inserts
random pre-cracks that bound piece sizes regardless of the pattern.

Shape assertions: on a sequential sweep, stochastic total cost beats
standard by a wide margin; on a random workload the two are comparable
(stochastic pays only a modest overhead).  Also serves as the pivot-
choice ablation from DESIGN.md (standard vs stochastic vs center).
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from common import print_table

from repro.indexing import CrackerIndex
from repro.workloads import (
    random_range_queries,
    sequential_range_queries,
    uniform_column,
)

N = 400_000
DOMAIN = (0, 10_000_000)
VARIANTS = ("standard", "stochastic", "center")


def run_experiment(n: int = N, num_queries: int = 150):
    values = uniform_column(n, *DOMAIN, seed=0)
    workloads = {
        "sequential": sequential_range_queries(num_queries, DOMAIN, selectivity=1.0 / num_queries),
        "random": random_range_queries(num_queries, DOMAIN, selectivity=0.005, seed=1),
    }
    totals: dict[tuple[str, str], int] = {}
    for workload_name, queries in workloads.items():
        for variant in VARIANTS:
            index = CrackerIndex(
                values.copy(), variant=variant, random_crack_threshold=n // 64, seed=7
            )
            for query in queries:
                index.lookup_range(query.low, query.high, True, False)
            totals[(workload_name, variant)] = index.work_touched
    rows = [
        [workload] + [totals[(workload, variant)] for variant in VARIANTS]
        for workload in workloads
    ]
    return totals, rows


def test_bench_stochastic_robustness(benchmark) -> None:
    totals, rows = run_experiment(n=150_000, num_queries=100)
    print_table(
        "S2: total cost (elements touched) by workload and pivot strategy",
        ["workload"] + list(VARIANTS),
        rows,
    )
    assert totals[("sequential", "stochastic")] < totals[("sequential", "standard")] / 3, (
        "stochastic cracking must fix the sequential pathology"
    )
    assert totals[("random", "stochastic")] < totals[("random", "standard")] * 3, (
        "stochastic overhead on random workloads stays modest"
    )

    values = uniform_column(150_000, *DOMAIN, seed=0)
    queries = sequential_range_queries(50, DOMAIN, selectivity=0.02)

    def run_stochastic():
        index = CrackerIndex(values.copy(), variant="stochastic", seed=7)
        for query in queries:
            index.lookup_range(query.low, query.high, True, False)
        return index.work_touched

    benchmark(run_stochastic)


if __name__ == "__main__":
    _, rows = run_experiment()
    print_table(
        "S2: total cost (elements touched) by workload and pivot strategy",
        ["workload"] + list(VARIANTS),
        rows,
    )
