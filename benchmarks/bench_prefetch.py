"""S12 — prefetching: hit rate vs strategy ([37, 35, 63]).

Synthetic cube-navigation sessions with realistic locality; four setups:

- no cache at all (every request computes);
- LRU cache only;
- cache + Markov (move-based) speculation;
- cache + trajectory-index (SCOUT-style) speculation.

Shape assertions: speculative strategies beat cache-only hit rates; the
foreground cost (what the user waits for) drops accordingly.  Includes
the Markov-order / fanout ablation from DESIGN.md.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from common import print_table

from repro.prefetch import (
    CubeNavigator,
    HybridRegionPredictor,
    MarkovPredictor,
    SpeculativeExecutor,
    TileCache,
    TrajectoryIndex,
)
from repro.prefetch.cube import MoveBasedRegionPredictor
from repro.workloads import CubeSessionGenerator, SessionConfig, generate_sessions, sales_table


def _navigator(n_rows: int = 4_000, seed: int = 0) -> CubeNavigator:
    table = sales_table(n_rows, seed=seed)
    return CubeNavigator(table, "price", "quantity", "revenue", levels=4, base_tiles=4)


def _sessions(count: int, seed: int, length: int = 60):
    config = SessionConfig(length=length, grid_side=32, levels=4, persistence=0.85)
    return generate_sessions(count, config, seed=seed)


def _run(strategy: str, fanout: int = 3, markov_order: int = 1, seed: int = 0):
    navigator = _navigator(seed=seed)
    training = _sessions(12, seed=100 + seed)
    live = _sessions(4, seed=200 + seed)

    predictor = None
    if strategy == "markov":
        model = MarkovPredictor(order=markov_order)
        for session in training:
            model.observe_sequence([s.move for s in session[1:]])
        predictor = MoveBasedRegionPredictor(navigator, model)
    elif strategy == "trajectory":
        index = TrajectoryIndex(max_suffix=2)
        for session in training:
            index.index_trajectory([s.region for s in session])
        predictor = index
    elif strategy == "hybrid":
        model = MarkovPredictor(order=markov_order)
        for session in training:
            model.observe_sequence([s.move for s in session[1:]])
        predictor = HybridRegionPredictor(navigator, model, mix=0.7)

    cache = TileCache(capacity=256)

    def compute(region):
        tile = navigator.compute_tile(region)
        if strategy == "hybrid":
            predictor.observe_tile(region, tile.aggregate)
        return tile

    executor = SpeculativeExecutor(
        compute=compute,
        cache=cache,
        predictor=predictor,
        fanout=fanout if strategy != "none" else 0,
    )
    for session in live:
        for step in session:
            executor.request(step.region)
    return executor


def run_experiment(seed: int = 0):
    rows = []
    executors = {}
    # a cache-less run pays one foreground computation per request
    navigator = _navigator(seed=seed)
    live = _sessions(4, seed=200 + seed)
    requests = sum(len(session) for session in live)
    for session in live:
        for step in session:
            navigator.compute_tile(step.region)
    rows.append(["no cache", 0.0, float(requests), 0.0])

    for strategy in ("cache-only", "markov", "trajectory", "hybrid"):
        executor = _run(strategy, fanout=0 if strategy == "cache-only" else 3, seed=seed)
        executors[strategy] = executor
        rows.append(
            [
                strategy,
                executor.hit_rate,
                executor.foreground_cost,
                executor.background_cost,
            ]
        )
    return executors, rows


def test_bench_prefetching(benchmark) -> None:
    executors, rows = run_experiment(seed=1)
    print_table(
        "S12: cache hit rate and costs by strategy (tiles computed)",
        ["strategy", "hit rate", "foreground cost", "background cost"],
        rows,
    )
    assert executors["markov"].hit_rate > executors["cache-only"].hit_rate
    assert executors["trajectory"].hit_rate > 0
    assert (
        executors["markov"].foreground_cost < executors["cache-only"].foreground_cost
    ), "speculation converts foreground latency into background work"

    benchmark(lambda: _run("markov", seed=2).hit_rate)


def test_bench_prefetch_ablation(benchmark) -> None:
    """Ablation: Markov order and speculation fanout."""
    rows = []
    hit_rates = {}
    for order in (1, 2):
        for fanout in (1, 3):
            executor = _run("markov", fanout=fanout, markov_order=order, seed=3)
            hit_rates[(order, fanout)] = executor.hit_rate
            rows.append([order, fanout, executor.hit_rate, executor.background_cost])
    print_table(
        "S12b: Markov order / fanout ablation",
        ["order", "fanout", "hit rate", "background cost"],
        rows,
    )
    assert hit_rates[(1, 3)] >= hit_rates[(1, 1)] - 0.02, (
        "larger fanout should not hurt hit rate"
    )
    benchmark(lambda: None)


if __name__ == "__main__":
    _, rows = run_experiment()
    print_table(
        "S12: cache hit rate and costs by strategy (tiles computed)",
        ["strategy", "hit rate", "foreground cost", "background cost"],
        rows,
    )
