"""S7 — BlinkDB: bounded errors / bounded response times ([7]).

Two headline shapes:

1. error–latency trade-off: relative error of a global AVG falls roughly
   like 1/sqrt(sample size) as the row budget grows;
2. stratified vs uniform on skewed groups: with a zipfian group
   distribution, a uniform sample's rare-group estimates blow up (or the
   groups vanish entirely) while an equally sized stratified sample keeps
   every group's error bounded.

Also the stratification-cap ablation called out in DESIGN.md.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import numpy as np
from common import print_table

from repro.engine.table import Table
from repro.sampling import ApproximateQueryEngine, SampleCatalog
from repro.workloads import sales_table

N = 60_000


def _true_group_means(table: Table) -> dict[str, float]:
    regions = np.asarray(table.column("region").to_list(), dtype=object)
    revenue = np.asarray(table.column("revenue").data, dtype=float)
    return {
        str(region): float(revenue[regions == region].mean())
        for region in set(regions.tolist())
    }


def run_experiment(n: int = N):
    table = sales_table(n, group_skew=1.6, seed=0)
    truth = float(np.mean(table.column("revenue").data))
    group_truth = _true_group_means(table)

    # 1. error vs budget
    budget_rows = []
    catalog = SampleCatalog(table)
    for fraction in (0.001, 0.005, 0.02, 0.1):
        catalog.add_uniform(fraction, seed=int(fraction * 10_000))
    engine = ApproximateQueryEngine(table, catalog)
    for budget in (100, 500, 2_000, 10_000):
        answer = engine.query("avg", "revenue", time_bound_rows=budget)
        error = abs(answer.estimate.value - truth) / truth
        budget_rows.append([budget, answer.rows_scanned, answer.estimate.value, error])

    # 2. uniform vs stratified on skewed groups, equal storage
    strat_catalog = SampleCatalog(table)
    stratified = strat_catalog.add_stratified(["region"], cap=400, seed=1)
    storage = stratified.size
    uni_catalog = SampleCatalog(table)
    uni_catalog.add_uniform(storage / table.num_rows, seed=2)

    group_rows = []
    worst = {"uniform": 0.0, "stratified": 0.0}
    for kind, catalog_ in (("uniform", uni_catalog), ("stratified", strat_catalog)):
        engine_ = ApproximateQueryEngine(table, catalog_)
        answer = engine_.query("avg", "revenue", group_by=["region"])
        for (region,), estimate in sorted(answer.group_estimates.items()):
            true_mean = group_truth[str(region)]
            error = abs(estimate.value - true_mean) / true_mean
            worst[kind] = max(worst[kind], error)
            group_rows.append([kind, region, estimate.value, true_mean, error])
        missing = set(group_truth) - {
            str(k[0]) for k in answer.group_estimates
        }
        for region in sorted(missing):
            worst[kind] = max(worst[kind], 1.0)
            group_rows.append([kind, region, "MISSING", group_truth[region], 1.0])
    return budget_rows, group_rows, worst, table


def test_bench_blinkdb(benchmark) -> None:
    budget_rows, group_rows, worst, table = run_experiment(n=30_000)
    print_table(
        "S7a: error vs row budget (global AVG)",
        ["budget", "rows scanned", "estimate", "relative error"],
        budget_rows,
    )
    print_table(
        "S7b: per-group AVG, uniform vs stratified (equal storage)",
        ["sample", "region", "estimate", "truth", "relative error"],
        group_rows,
    )
    # errors shrink as the budget grows (compare smallest vs largest)
    assert budget_rows[-1][3] < budget_rows[0][3]
    # stratified bounds the worst group error at least as well as uniform
    assert worst["stratified"] <= worst["uniform"] + 1e-9

    catalog = SampleCatalog(table)
    catalog.add_uniform(0.01, seed=3)
    catalog.add_stratified(["region"], cap=200, seed=4)
    engine = ApproximateQueryEngine(table, catalog)
    benchmark(lambda: engine.query("avg", "revenue", group_by=["region"]))


def test_bench_blinkdb_cap_ablation(benchmark) -> None:
    """Ablation: the stratification cap K trades storage for rare-group error."""
    table = sales_table(30_000, group_skew=1.6, seed=5)
    group_truth = _true_group_means(table)
    rows = []
    for cap in (50, 200, 800):
        catalog = SampleCatalog(table)
        sample = catalog.add_stratified(["region"], cap=cap, seed=cap)
        engine = ApproximateQueryEngine(table, catalog)
        answer = engine.query("avg", "revenue", group_by=["region"])
        worst = max(
            abs(e.value - group_truth[str(k[0])]) / group_truth[str(k[0])]
            for k, e in answer.group_estimates.items()
        )
        rows.append([cap, sample.size, worst])
    print_table(
        "S7c: stratification cap K ablation",
        ["cap K", "sample rows", "worst group error"],
        rows,
    )
    assert rows[-1][2] <= rows[0][2] + 0.05, "larger caps should not hurt accuracy"

    catalog = SampleCatalog(table)
    catalog.add_stratified(["region"], cap=200, seed=6)
    benchmark(lambda: catalog.samples()[0].size)


if __name__ == "__main__":
    budget_rows, group_rows, _, _ = run_experiment()
    print_table(
        "S7a: error vs row budget (global AVG)",
        ["budget", "rows scanned", "estimate", "relative error"],
        budget_rows,
    )
    print_table(
        "S7b: per-group AVG, uniform vs stratified (equal storage)",
        ["sample", "region", "estimate", "truth", "relative error"],
        group_rows,
    )
