"""S4 — cracking under updates ([30]).

Interleaves range queries with inserts.  The adaptive merge policy only
pays for updates that queries actually touch, so query cost stays near
the update-free baseline while out-of-range updates accumulate for free;
the eager comparator (re-merge everything on every insert, modelled by
merging all pending on every query over the full domain) pays much more.

Shape assertions: with updates concentrated outside the queried region,
total cost with lazy merging is close to the no-update run; forcing full
merges costs substantially more.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import numpy as np
from common import print_table

from repro.indexing import CrackerIndex, UpdatableCrackerIndex
from repro.workloads import random_range_queries, uniform_column

N = 200_000
DOMAIN = (0, 1_000_000)
HOT = (0, 300_000)  # queries live here
COLD = (700_000, 1_000_000)  # updates land here


def run_experiment(n: int = N, num_queries: int = 100, updates_per_query: int = 20):
    rng = np.random.default_rng(3)
    values = uniform_column(n, *DOMAIN, seed=0)
    queries = random_range_queries(num_queries, HOT, selectivity=0.01, seed=1)

    # baseline: no updates at all
    baseline = CrackerIndex(values.copy())
    for query in queries:
        baseline.lookup_range(query.low, query.high, True, False)

    # lazy merging with cold updates
    lazy = UpdatableCrackerIndex(values.copy())
    for query in queries:
        for _ in range(updates_per_query):
            lazy.insert(int(rng.integers(*COLD)))
        lazy.lookup_range(query.low, query.high, True, False)

    # forced merging: every query also merges all pending (full-domain touch)
    eager = UpdatableCrackerIndex(values.copy())
    for query in queries:
        for _ in range(updates_per_query):
            eager.insert(int(rng.integers(*COLD)))
        eager.lookup_range(None, None)  # forces a full merge
        eager.lookup_range(query.low, query.high, True, False)

    rows = [
        ["no updates (baseline)", baseline.work_touched, 0],
        ["lazy merge (cold updates)", lazy.work_touched, lazy.pending_count],
        ["forced full merge", eager.work_touched, eager.pending_count],
    ]
    return baseline, lazy, eager, rows


def test_bench_cracking_updates(benchmark) -> None:
    baseline, lazy, eager, rows = run_experiment(n=60_000, num_queries=60)
    print_table(
        "S4: total cost with interleaved updates",
        ["strategy", "elements touched", "pending left"],
        rows,
    )
    assert lazy.pending_count > 0, "cold updates should stay pending"
    # lazy merging keeps overhead bounded: cost stays within ~2.5x of the
    # no-update baseline (pending-buffer scans are the only overhead)
    assert lazy.work_touched < baseline.work_touched * 2.5
    assert eager.work_touched > lazy.work_touched * 2, "eager merging is far costlier"

    values = uniform_column(60_000, *DOMAIN, seed=0)
    queries = random_range_queries(30, HOT, selectivity=0.01, seed=1)
    rng = np.random.default_rng(4)

    def run_lazy():
        index = UpdatableCrackerIndex(values.copy())
        for query in queries:
            index.insert(int(rng.integers(*COLD)))
            index.lookup_range(query.low, query.high, True, False)
        return index.work_touched

    benchmark(run_lazy)


if __name__ == "__main__":
    _, _, _, rows = run_experiment()
    print_table(
        "S4: total cost with interleaved updates",
        ["strategy", "elements touched", "pending left"],
        rows,
    )
