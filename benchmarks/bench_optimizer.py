"""Rule-based plan optimizer: fused aggregation, pushdown, probe merge.

Builds a clustered fact table (plus a small dimension table and an
adaptive index) and measures three optimizer rewrites against the
optimizer-off engine on identical data:

- **fused filter+aggregate**: ``Aggregate -> Scan(filter)`` runs as one
  per-morsel pipeline consulting the zone map, instead of materialising
  the zone-pruned filtered table and re-scanning it;
- **join right-side pushdown**: a dimension-table conjunct moves below
  the join, shrinking the hash-join build input, instead of filtering
  the joined output;
- **probe merge**: every range conjunct on the indexed column collapses
  into one index probe, instead of probing one conjunct and re-filtering
  the probed rows.

Results print as a table and can be dumped as ``BENCH_optimizer.json``
(``--json``); ``--quick`` shrinks the table for CI.  Every optimized
result is checked bit-identical to its unoptimized twin before any
timing is reported (global aggregates only, so index probe order cannot
leak into answers).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import numpy as np
from common import print_table

from repro.engine import Database, scanopt
from repro.indexing import CrackerIndex

N = 1_000_000
ZONE_ROWS = 16_384
DIM_ROWS = 1_000

JOIN_PUSHDOWN = (
    "SELECT COUNT(*) AS n, SUM(w) AS sw FROM t JOIN d ON g = k WHERE w < 25"
)


def fused_agg_sql(n: int) -> str:
    """Select the top 5% of the clustered column x (zones skip the rest)."""
    return (
        "SELECT g, COUNT(*) AS n, SUM(x) AS sx FROM t "
        f"WHERE x >= {int(n * 0.90)} AND x < {int(n * 0.95)} GROUP BY g"
    )


def probe_merge_sql(n: int) -> str:
    """Four redundant range conjuncts on x that merge into one probe."""
    low, high = int(n * 0.60), int(n * 0.64)
    return (
        "SELECT COUNT(*) AS n, SUM(x) AS sx FROM t "
        f"WHERE x >= {low} AND x < {high} AND x > {low} AND x <= {high - 1000}"
    )


def build_database(n: int = N, dim_rows: int = DIM_ROWS, seed: int = 0) -> Database:
    """A clustered fact table t(x clustered, g foreign key, v payload)
    plus a dimension d(k unique, w payload) and a cracker index on x."""
    rng = np.random.default_rng(seed)
    db = Database()
    db.create_table(
        "t",
        {
            "x": np.arange(n, dtype=np.int64).tolist(),
            "g": rng.integers(0, dim_rows, n).tolist(),
            "v": rng.normal(size=n).tolist(),
        },
    )
    db.create_table(
        "d",
        {
            "k": list(range(dim_rows)),
            "w": rng.integers(0, 100, dim_rows).tolist(),
        },
    )
    return db


def _best_of(fn, repeats: int = 3) -> tuple[float, object]:
    best, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _identical(a, b) -> bool:
    if a.column_names != b.column_names or a.num_rows != b.num_rows:
        return False
    for name in a.column_names:
        ca, cb = a.column(name), b.column(name)
        va = ca.validity if ca.validity is not None else np.ones(len(ca), bool)
        vb = cb.validity if cb.validity is not None else np.ones(len(cb), bool)
        if not np.array_equal(va, vb):
            return False
        if ca.data.dtype == object:
            if list(ca.data[va]) != list(cb.data[vb]):
                return False
        elif ca.data[va].tobytes() != cb.data[vb].tobytes():
            return False
    return True


def _compare(db: Database, sql: str) -> dict:
    """Time one query with the optimizer off vs on (results must match)."""
    scanopt.configure(optimizer=False)
    off_s, off = _best_of(lambda: db.sql(sql))
    scanopt.configure(optimizer=True)
    on_s, on = _best_of(lambda: db.sql(sql))
    assert _identical(on, off), f"optimizer changed the answer of: {sql}"
    return {"off_ms": off_s * 1e3, "on_ms": on_s * 1e3, "speedup": off_s / on_s}


def run_experiment(n: int = N) -> dict:
    db = build_database(n)
    try:
        scanopt.configure(zone_rows=ZONE_ROWS, plan_cache=False)
        results = {
            "rows": n,
            "zone_rows": ZONE_ROWS,
            "fused_agg": _compare(db, fused_agg_sql(n)),
            "join_pushdown": _compare(db, JOIN_PUSHDOWN),
        }
        values = np.asarray(db.get_table("t").column("x").data)
        db.register_index("t", "x", CrackerIndex(values))
        results["probe_merge"] = _compare(db, probe_merge_sql(n))
    finally:
        scanopt.configure(
            zone_rows=scanopt.DEFAULT_ZONE_ROWS, plan_cache=True, optimizer=True
        )
    return results


def result_rows(results: dict) -> list[list]:
    rows = []
    for key, label in (
        ("fused_agg", "fused filter+aggregate (zones)"),
        ("join_pushdown", "join right-side pushdown"),
        ("probe_merge", "probe merge (adaptive index)"),
    ):
        r = results[key]
        rows.append(
            [label, f"{r['off_ms']:.3f}", f"{r['on_ms']:.3f}", f"{r['speedup']:.1f}x"]
        )
    return rows


def test_bench_optimizer(benchmark) -> None:
    results = run_experiment(n=100_000)
    print_table(
        "Plan optimizer: off vs on",
        ["workload", "off ms", "on ms", "speedup"],
        result_rows(results),
    )
    # envelopes are deliberately loose (CI machines are noisy); the full
    # 1M-row __main__ run is where the headline numbers come from.  The
    # _identical checks inside _compare are the hard assertions.
    assert results["fused_agg"]["speedup"] > 0.8
    assert results["join_pushdown"]["speedup"] > 0.8

    db = build_database(100_000)
    try:
        scanopt.configure(zone_rows=ZONE_ROWS)
        benchmark(lambda: db.sql(fused_agg_sql(100_000)))
    finally:
        scanopt.configure(zone_rows=scanopt.DEFAULT_ZONE_ROWS)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="small table for CI")
    parser.add_argument("--json", metavar="PATH", help="write results as JSON")
    args = parser.parse_args()
    n = 100_000 if args.quick else N
    results = run_experiment(n)
    print_table(
        f"Plan optimizer: off vs on ({n:,} rows)",
        ["workload", "off ms", "on ms", "speedup"],
        result_rows(results),
    )
    if args.json:
        Path(args.json).write_text(json.dumps(results, indent=2) + "\n")
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
