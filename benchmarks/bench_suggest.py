"""S19 — SQL query suggestion: hit-rate@k on held-out sessions ([21]).

Synthetic analyst sessions follow a small set of workflow templates
(scan → project → aggregate → drill).  The suggester trains on most
sessions and is evaluated on held-out ones.

Shape assertions: hit-rate@3 beats both random guessing over the query
vocabulary and a popularity-only baseline; hit-rate grows with k.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import numpy as np
from common import print_table

from repro.explore import QuerySuggester

TEMPLATES = [
    [
        "SELECT * FROM sales WHERE price > 50",
        "SELECT region, price FROM sales WHERE price > 50",
        "SELECT region, AVG(price) AS p FROM sales GROUP BY region",
        "SELECT region, SUM(revenue) AS r FROM sales GROUP BY region",
    ],
    [
        "SELECT * FROM sales WHERE quantity >= 5",
        "SELECT category, quantity FROM sales WHERE quantity >= 5",
        "SELECT category, COUNT(*) AS n FROM sales GROUP BY category",
    ],
    [
        "SELECT * FROM sales WHERE discount > 0",
        "SELECT category, SUM(revenue) AS r FROM sales GROUP BY category",
    ],
]


def _sessions(count: int, seed: int):
    rng = np.random.default_rng(seed)
    sessions = []
    for _ in range(count):
        template = TEMPLATES[int(rng.integers(0, len(TEMPLATES)))]
        # analysts sometimes stop early
        length = int(rng.integers(2, len(template) + 1))
        sessions.append(template[:length])
    return sessions


def run_experiment():
    train = _sessions(60, seed=0)
    test = _sessions(20, seed=1)
    suggester = QuerySuggester()
    for session in train:
        suggester.observe_session(session)
    vocabulary = {q for t in TEMPLATES for q in t}
    rows = []
    hit_rates = {}
    for k in (1, 3, 5):
        rate = suggester.hit_rate(test, k=k)
        hit_rates[k] = rate
        rows.append([k, rate, k / len(vocabulary)])
    return suggester, test, hit_rates, rows, vocabulary


def test_bench_suggestion(benchmark) -> None:
    suggester, test, hit_rates, rows, vocabulary = run_experiment()
    print_table(
        "S19: next-query hit-rate@k vs random baseline",
        ["k", "hit rate", "random baseline"],
        rows,
    )
    assert hit_rates[3] > 3 / len(vocabulary) * 2, "must beat random clearly"
    assert hit_rates[5] >= hit_rates[1], "hit rate grows with k"
    assert hit_rates[3] > 0.5, "templated workflows are highly predictable"

    benchmark(lambda: suggester.hit_rate(test[:5], k=3))


if __name__ == "__main__":
    *_, rows, _ = run_experiment()
    print_table(
        "S19: next-query hit-rate@k vs random baseline",
        ["k", "hit rate", "random baseline"],
        rows,
    )
