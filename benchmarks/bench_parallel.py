"""Morsel-driven parallel execution: speedup curve over worker counts.

Runs a filter + grouped-aggregate workload over a 1M-row table at
1/2/4/8 workers and records wall time, speedup vs the serial baseline
and morsel fan-out via the benchmark-metrics export (``print_table``
feeds the metrics registry).

The absolute speedup depends on the host's core count — on a single-core
container the curve is flat; the shape assertion therefore only checks
that parallel mode stays within a sane overhead envelope of serial while
remaining bit-identical to it.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import numpy as np
from common import print_table

from repro.engine import Database, parallel
from repro.workloads import sales_table

N = 1_000_000
WORKERS = (1, 2, 4, 8)
QUERY = (
    "SELECT region, COUNT(*) AS n, SUM(quantity) AS total_quantity, "
    "AVG(price) AS avg_price, MAX(price) AS max_price "
    "FROM sales WHERE price > 50 GROUP BY region"
)


def _run_query(db: Database, threads: int, repeats: int = 3) -> tuple[float, object]:
    parallel.configure(threads=threads)
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = db.sql(QUERY)
        best = min(best, time.perf_counter() - start)
    return best, result


def run_experiment(n: int = N, workers: tuple[int, ...] = WORKERS):
    db = Database()
    db.create_table("sales", sales_table(n, seed=0))
    try:
        serial_s, serial_result = _run_query(db, threads=0)
        morsels = parallel.morsel_count(n)
        rows = [["serial", f"{serial_s * 1e3:.1f}", "1.00", 0]]
        results = {"serial": serial_result}
        for w in workers:
            wall_s, result = _run_query(db, threads=w)
            rows.append(
                [f"{w} workers", f"{wall_s * 1e3:.1f}", f"{serial_s / wall_s:.2f}", morsels]
            )
            results[w] = result
        return rows, results
    finally:
        parallel.configure(threads=0)
        parallel.shutdown_pool()


def _identical(a, b) -> bool:
    for name in a.column_names:
        ca, cb = a.column(name), b.column(name)
        va = ca.validity if ca.validity is not None else np.ones(len(ca), bool)
        vb = cb.validity if cb.validity is not None else np.ones(len(cb), bool)
        if not np.array_equal(va, vb):
            return False
        if ca.data.dtype == object:
            if list(ca.data[va]) != list(cb.data[vb]):
                return False
        elif ca.data[va].tobytes() != cb.data[vb].tobytes():
            return False
    return True


def test_bench_parallel_speedup(benchmark) -> None:
    rows, results = run_experiment(n=200_000, workers=(2, 4))
    print_table(
        "Parallel executor: filter + aggregate speedup curve",
        ["mode", "best ms", "speedup", "morsels"],
        rows,
    )
    serial = results["serial"]
    for w, result in results.items():
        if w == "serial":
            continue
        assert _identical(serial, result), f"{w}-worker result drifted from serial"
    # parallel mode must not be pathologically slower than serial even on
    # a single-core host (pool + merge overhead stays bounded)
    serial_ms = float(rows[0][1])
    four_ms = float(rows[-1][1])
    assert four_ms < serial_ms * 5, "parallel overhead out of envelope"

    db = Database()
    db.create_table("sales", sales_table(100_000, seed=1))
    parallel.configure(threads=4)
    try:
        benchmark(lambda: db.sql(QUERY))
    finally:
        parallel.configure(threads=0)
        parallel.shutdown_pool()


if __name__ == "__main__":
    rows, _ = run_experiment()
    print_table(
        "Parallel executor: filter + aggregate speedup curve",
        ["mode", "best ms", "speedup", "morsels"],
        rows,
    )
