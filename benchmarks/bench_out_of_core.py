"""Out-of-core execution: mmap-backed scans, I/O-level zone-map pruning.

Measures what the mmap storage tier buys on a zone-clustered table that
never materialises in RAM:

- bytes read vs selectivity: the same predicate family (``k < K``) swept
  from a full scan down to a single zone, in ``storage=memory`` vs
  ``storage=mmap``; in mmap mode the executor consults the zone map
  *before* slicing each morsel, so FAIL zones are never faulted in and
  ``io.bytes_read`` falls with selectivity instead of staying flat;
- scan latency vs dataset/RAM ratio: the selective scan corpus run under
  a per-query memory budget of the dataset size over 1x / 4x / 10x —
  out-of-core scans must complete (and stay fast) even when the table is
  10x larger than the budget, because only the zones a predicate touches
  ever produce resident pages.

Results print as a table and can be dumped as ``BENCH_out_of_core.json``
(``--json``); ``--quick`` shrinks the table for CI.  Every run is
verified: each mmap-mode query must return bit-identical rows to the
same query in memory mode.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from common import print_table

from repro import resilience
from repro.engine import Database
from repro.obs import get_registry
from repro.storage import layouts

ROWS = 262_144
ZONE_ROWS = 2_048  # 128 zones; one zone = 0.78% of the table
RATIOS = (1, 4, 10)


def build_clustered(root: Path, rows: int, zone_rows: int) -> None:
    """A durable, checkpointed table whose key is clustered by zone.

    ``k = row // zone_rows`` so every zone holds exactly one key value:
    the zone map turns ``k = 7`` into a single surviving zone and
    ``k < K`` into a prefix of zones.
    """
    db = Database(path=root)
    db.execute("CREATE TABLE t (k INT, v DOUBLE, s TEXT)")
    batch = 8_192
    for start in range(0, rows, batch):
        values = ", ".join(
            f"({i // zone_rows}, {float(i % 97)}, 'city_{i % 199:04d}')"
            for i in range(start, min(start + batch, rows))
        )
        db.execute(f"INSERT INTO t (k, v, s) VALUES {values}")
    db.checkpoint()
    db.close()


def open_db(root: Path, storage: str, zone_rows: int) -> Database:
    """Reopen the durable table under one storage mode."""
    layouts.configure(storage=storage)
    db = Database(path=root)
    db.execute(f"PRAGMA zone_rows={zone_rows}")
    return db


def _fingerprint(table) -> tuple:
    """Order-insensitive content digest for cross-mode verification."""
    rows = sorted(
        tuple(table.column(name)[i] for name in table.column_names)
        for i in range(table.num_rows)
    )
    return (table.num_rows, tuple(rows[:100]), tuple(rows[-100:]))


def bench_selectivity(root: Path, rows: int, zone_rows: int) -> dict:
    """Bytes read and latency vs selectivity, memory vs mmap."""
    num_zones = (rows + zone_rows - 1) // zone_rows
    sweep = [
        ("100% of zones", num_zones),
        ("25% of zones", max(1, num_zones // 4)),
        ("5% of zones", max(1, num_zones // 20)),
        ("1 zone", 1),
    ]
    bytes_read = get_registry().counter("io.bytes_read")
    zones_skipped = get_registry().counter("io.zones_skipped_io")
    out: dict[str, dict] = {}
    baselines: dict[str, tuple] = {}
    with open_db(root, "memory", zone_rows) as db:
        for label, k in sweep:
            sql = f"SELECT k, v, s FROM t WHERE k < {k}"
            start = time.perf_counter()
            result = db.execute(sql)
            seconds = time.perf_counter() - start
            baselines[label] = _fingerprint(result)
            out[label] = {"selected_zones": k, "memory_s": seconds}
    with open_db(root, "mmap", zone_rows) as db:
        assert db.get_table("t").is_mapped, "recovery did not map the table"
        for label, k in sweep:
            sql = f"SELECT k, v, s FROM t WHERE k < {k}"
            before, skipped_before = bytes_read.value, zones_skipped.value
            start = time.perf_counter()
            result = db.execute(sql)
            seconds = time.perf_counter() - start
            assert _fingerprint(result) == baselines[label], (
                f"mmap result diverged from memory mode at {label}"
            )
            out[label].update(
                mmap_s=seconds,
                bytes_read=bytes_read.value - before,
                zones_skipped=zones_skipped.value - skipped_before,
            )
    total = out["100% of zones"]["bytes_read"]
    for r in out.values():
        r["read_fraction"] = r["bytes_read"] / total if total else 0.0
    return {"rows": rows, "zones": num_zones, "table_bytes": total, "sweep": out}


def bench_ram_ratio(
    root: Path, rows: int, zone_rows: int, table_bytes: int, ratios: tuple[int, ...]
) -> dict:
    """Selective-scan corpus latency with the dataset 1x/4x/10x the budget."""
    num_zones = (rows + zone_rows - 1) // zone_rows
    corpus = [
        f"SELECT k, v, s FROM t WHERE k < {max(1, num_zones // 20)}",
        f"SELECT k, v, s FROM t WHERE k = {num_zones // 2}",
        f"SELECT SUM(v) AS sv FROM t WHERE k = {num_zones // 3}",
    ]
    out: dict[str, dict] = {}
    with open_db(root, "mmap", zone_rows) as db:
        for ratio in ratios:
            budget_kb = max(1, table_bytes // 1024 // ratio)
            resilience.configure(memory_budget_kb=budget_kb)
            start = time.perf_counter()
            result_rows_total = 0
            for sql in corpus:
                result_rows_total += db.execute(sql).num_rows
            seconds = time.perf_counter() - start
            out[f"{ratio}x"] = {
                "budget_kb": budget_kb,
                "corpus_s": seconds,
                "result_rows": result_rows_total,
            }
    expected = out[f"{ratios[0]}x"]["result_rows"]
    assert all(r["result_rows"] == expected for r in out.values())
    return out


def run_experiment(
    rows: int = ROWS, zone_rows: int = ZONE_ROWS, ratios: tuple[int, ...] = RATIOS
) -> dict:
    """Both experiments under a throwaway directory; restores the config."""
    saved_storage = layouts.get_config().storage
    saved_budget = resilience.get_config().memory_budget_kb
    tmp = Path(tempfile.mkdtemp(prefix="bench_out_of_core_"))
    try:
        build_clustered(tmp / "db", rows, zone_rows)
        selectivity = bench_selectivity(tmp / "db", rows, zone_rows)
        ratio = bench_ram_ratio(
            tmp / "db", rows, zone_rows, selectivity["table_bytes"], ratios
        )
        return {
            "rows": rows,
            "zone_rows": zone_rows,
            "table_bytes": selectivity["table_bytes"],
            "selectivity": selectivity,
            "ram_ratio": ratio,
        }
    finally:
        layouts.configure(storage=saved_storage)
        resilience.configure(memory_budget_kb=saved_budget)
        shutil.rmtree(tmp, ignore_errors=True)


def result_rows(results: dict) -> list[list]:
    """Flatten the result dict into printable table rows."""
    rows = []
    for label, r in results["selectivity"]["sweep"].items():
        rows.append(
            [
                f"scan ({label})",
                f"{r['mmap_s'] * 1e3:.1f}",
                f"{r['bytes_read']:,} B read ({r['read_fraction']:.1%}), "
                f"{r['zones_skipped']} zones skipped",
                f"{r['memory_s'] / r['mmap_s']:.2f}x",
            ]
        )
    for label, r in results["ram_ratio"].items():
        rows.append(
            [
                f"corpus (dataset {label} of budget)",
                f"{r['corpus_s'] * 1e3:.1f}",
                f"budget {r['budget_kb']:,} KB, {r['result_rows']:,} rows out",
                "",
            ]
        )
    return rows


def test_bench_out_of_core(benchmark) -> None:
    """CI leg: small-scale run, pruning asserts, one timed mmap scan."""
    results = run_experiment(rows=65_536, zone_rows=512, ratios=(1, 4))
    print_table(
        "Out-of-core: mmap scans and I/O pruning",
        ["workload", "ms", "detail", "vs memory"],
        result_rows(results),
    )
    sweep = results["selectivity"]["sweep"]
    # one zone of 128 is 0.78% selectivity: must read < 10% of the table
    assert sweep["1 zone"]["read_fraction"] < 0.10
    assert sweep["1 zone"]["bytes_read"] > 0
    # bytes read must fall monotonically with selectivity
    assert (
        sweep["100% of zones"]["bytes_read"]
        > sweep["25% of zones"]["bytes_read"]
        > sweep["1 zone"]["bytes_read"]
    )

    saved_storage = layouts.get_config().storage
    tmp = Path(tempfile.mkdtemp(prefix="bench_out_of_core_"))
    build_clustered(tmp / "db", 65_536, 512)
    db = open_db(tmp / "db", "mmap", 512)

    def one_selective_scan() -> None:
        db.execute("SELECT k, v, s FROM t WHERE k = 7")

    try:
        benchmark(one_selective_scan)
    finally:
        db.close()
        layouts.configure(storage=saved_storage)
        shutil.rmtree(tmp, ignore_errors=True)


def main() -> int:
    """Entry point."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="small table for CI")
    parser.add_argument("--json", metavar="PATH", help="write results as JSON")
    args = parser.parse_args()
    if args.quick:
        rows, zone_rows, ratios = 65_536, 512, (1, 4)
    else:
        rows, zone_rows, ratios = ROWS, ZONE_ROWS, RATIOS
    results = run_experiment(rows, zone_rows, ratios)
    print_table(
        f"Out-of-core: mmap scans and I/O pruning ({rows:,} rows, "
        f"{results['selectivity']['zones']} zones)",
        ["workload", "ms", "detail", "vs memory"],
        result_rows(results),
    )
    if args.json:
        Path(args.json).write_text(json.dumps(results, indent=2) + "\n")
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
