"""S9 — SeeDB: pruning cuts work, keeps the top-k ([49]).

The exact recommender evaluates every (dimension, measure, aggregate)
view on all the data; the phased recommender prunes views whose utility
interval falls below the running top-k.

Shape assertions: pruning drops a substantial share of the candidate
views before the final phase, and the pruned top-1 equals the exact
top-1 (and the pruned top-k heavily overlaps the exact top-k).  The
confidence-level ablation from DESIGN.md is included.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from common import print_table

from repro.engine import col
from repro.explore import SeeDB
from repro.workloads import sales_table

N = 30_000
DIMENSIONS = ["region", "category"]
MEASURES = ["price", "quantity", "revenue", "discount"]


def run_experiment(n: int = N, k: int = 5):
    table = sales_table(n, seed=0)
    target = col("region") == "north"

    exact_engine = SeeDB(table, DIMENSIONS, MEASURES)
    exact = exact_engine.recommend(target, k=k, prune=False)

    pruned_engine = SeeDB(table, DIMENSIONS, MEASURES)
    pruned = pruned_engine.recommend(target, k=k, prune=True, num_phases=10)

    total = len(exact_engine.candidate_views())
    overlap = len(
        {v.spec for v in exact[:k]} & {v.spec for v in pruned[:k]}
    )
    rows = [
        ["exact", total, exact_engine.views_evaluated_fully, exact[0].spec.describe()],
        [
            "pruned",
            total,
            pruned_engine.views_evaluated_fully,
            pruned[0].spec.describe(),
        ],
    ]
    return exact, pruned, exact_engine, pruned_engine, overlap, rows, k


def test_bench_seedb(benchmark) -> None:
    exact, pruned, exact_engine, pruned_engine, overlap, rows, k = run_experiment(
        n=12_000
    )
    print_table(
        "S9: views fully evaluated, exact vs CI-pruned",
        ["mode", "candidates", "fully evaluated", "top view"],
        rows,
    )
    assert pruned_engine.views_pruned > 0
    assert pruned_engine.views_evaluated_fully < exact_engine.views_evaluated_fully
    assert pruned[0].spec == exact[0].spec, "pruning must keep the top view"
    assert overlap >= k - 1, "top-k should be (near-)identical"

    table = sales_table(6_000, seed=1)

    def run_pruned():
        engine = SeeDB(table, DIMENSIONS, MEASURES)
        return engine.recommend(col("region") == "north", k=3, prune=True, num_phases=6)

    benchmark(run_pruned)


def test_bench_seedb_confidence_ablation(benchmark) -> None:
    """Ablation: lower pruning confidence prunes more aggressively."""
    table = sales_table(12_000, seed=2)
    target = col("category") == "tools"
    rows = []
    pruned_counts = {}
    for confidence in (0.7, 0.9, 0.99):
        engine = SeeDB(table, DIMENSIONS, MEASURES)
        top = engine.recommend(target, k=3, prune=True, num_phases=10, confidence=confidence)
        pruned_counts[confidence] = engine.views_pruned
        rows.append(
            [confidence, engine.views_pruned, engine.views_evaluated_fully, top[0].spec.describe()]
        )
    print_table(
        "S9b: pruning-confidence ablation",
        ["confidence", "views pruned", "fully evaluated", "top view"],
        rows,
    )
    assert pruned_counts[0.7] >= pruned_counts[0.99], (
        "looser confidence prunes at least as much"
    )
    benchmark(lambda: None)


if __name__ == "__main__":
    *_, rows, _ = run_experiment()
    print_table(
        "S9: views fully evaluated, exact vs CI-pruned",
        ["mode", "candidates", "fully evaluated", "top view"],
        rows,
    )
