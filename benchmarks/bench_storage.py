"""S14 — adaptive storage vs static layouts ([9]).

A phase-shifting workload (narrow analytical scans ↔ wide tuple reads)
replayed against three static layouts and the H2O-style adaptive store.

Shape assertions: each static layout wins one phase and loses the other;
the adaptive store's total cost beats both static extremes over the full
phase-shifting workload (it pays brief reorganisation spikes instead of a
persistent mismatch).
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from common import print_table

from repro.storage import (
    AdaptiveStore,
    ColumnLayout,
    QueryProfile,
    RowLayout,
)

COLUMNS = [f"c{i}" for i in range(8)]
N = 100_000
PHASE = 40


def _workload(num_phases: int = 4):
    profiles = []
    for phase in range(num_phases):
        if phase % 2 == 0:
            profile = QueryProfile.make(["c0"], ["c1"], selectivity=0.01)  # scan phase
        else:
            profile = QueryProfile.make(["c0"], COLUMNS, selectivity=0.7)  # tuple phase
        profiles.extend([profile] * PHASE)
    return profiles


def run_experiment(n: int = N):
    workload = _workload()
    static_costs = {}
    for name, layout in (("static-row", RowLayout(COLUMNS)), ("static-column", ColumnLayout(COLUMNS))):
        static_costs[name] = sum(layout.scan_cost(p, n) for p in workload)

    adaptive = AdaptiveStore(COLUMNS, n, evaluation_interval=10, window=20)
    for profile in workload:
        adaptive.execute(profile)

    rows = [
        ["static-row", static_costs["static-row"], 0],
        ["static-column", static_costs["static-column"], 0],
        ["adaptive (H2O)", adaptive.total_cost, len(adaptive.events)],
    ]
    return adaptive, static_costs, workload, rows


def test_bench_adaptive_storage(benchmark) -> None:
    adaptive, static_costs, workload, rows = run_experiment(n=50_000)
    print_table(
        "S14: total cost (cells touched) over a phase-shifting workload",
        ["system", "total cost", "layout switches"],
        rows,
    )
    # sanity: each static layout wins one phase
    scan = QueryProfile.make(["c0"], ["c1"], selectivity=0.01)
    wide = QueryProfile.make(["c0"], COLUMNS, selectivity=0.7)
    assert ColumnLayout(COLUMNS).scan_cost(scan, 50_000) < RowLayout(COLUMNS).scan_cost(scan, 50_000)
    assert RowLayout(COLUMNS).scan_cost(wide, 50_000) < ColumnLayout(COLUMNS).scan_cost(wide, 50_000)
    # the adaptive store beats both static extremes overall
    assert adaptive.total_cost < min(static_costs.values())
    assert len(adaptive.events) >= 2, "expected switches at phase boundaries"

    def replay():
        store = AdaptiveStore(COLUMNS, 50_000, evaluation_interval=10, window=20)
        for profile in workload:
            store.execute(profile)
        return store.total_cost

    benchmark(replay)


if __name__ == "__main__":
    *_, rows = run_experiment()
    print_table(
        "S14: total cost (cells touched) over a phase-shifting workload",
        ["system", "total cost", "layout switches"],
        rows,
    )
