"""S18 — query by output: predicate recovery vs example count ([64, 58]).

A hidden conjunctive range query selects some rows; the discoverer sees
only a random subset of the output and must recover the predicate.

Shape assertions: F1 of the recovered query grows with the number of
examples and is near-perfect once the full output is given.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import numpy as np
from common import print_table

from repro.engine import Table
from repro.explore import QueryByOutput

N = 10_000


def _setup(n: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    table = Table.from_dict(
        {
            "mag": rng.uniform(0, 10, size=n),
            "depth": rng.uniform(0, 500, size=n),
            "noise": rng.uniform(0, 1, size=n),
        }
    )
    mag = np.asarray(table.column("mag").data)
    depth = np.asarray(table.column("depth").data)
    target_rows = np.flatnonzero((mag >= 4) & (mag <= 6) & (depth <= 120))
    return table, target_rows


def run_experiment(n: int = N):
    table, target_rows = _setup(n)
    rng = np.random.default_rng(1)
    rows = []
    f1_by_examples = {}
    qbo = QueryByOutput(table, columns=["mag", "depth", "noise"])

    # NOTE: the discoverer treats non-example rows as negatives, so partial
    # outputs understate recall by construction; the curve still shows the
    # precision/recall of the *final* query improving with evidence.
    for fraction in (0.1, 0.3, 1.0):
        size = max(2, int(len(target_rows) * fraction))
        examples = rng.choice(target_rows, size=size, replace=False)
        # evaluate against the full hidden output
        recovered = qbo.discover(examples.tolist())
        matched = recovered.boxes
        predicted = qbo._rows_matching(matched)
        tp = len(predicted & set(target_rows.tolist()))
        precision = tp / len(predicted) if predicted else 0.0
        recall = tp / len(target_rows)
        f1 = 2 * precision * recall / (precision + recall) if precision + recall else 0.0
        f1_by_examples[fraction] = f1
        rows.append([size, precision, recall, f1])
    return f1_by_examples, rows


def test_bench_qbo(benchmark) -> None:
    f1_by_examples, rows = run_experiment(n=4_000)
    print_table(
        "S18: recovered-query quality vs examples shown",
        ["examples", "precision", "recall", "F1 vs hidden query"],
        rows,
    )
    assert f1_by_examples[1.0] > 0.95, "full output should pin the query down"
    assert f1_by_examples[1.0] >= f1_by_examples[0.1], "more evidence helps"

    table, target_rows = _setup(2_000, seed=2)
    qbo = QueryByOutput(table, columns=["mag", "depth"])
    examples = target_rows.tolist()
    benchmark(lambda: qbo.discover(examples))


if __name__ == "__main__":
    _, rows = run_experiment()
    print_table(
        "S18: recovered-query quality vs examples shown",
        ["examples", "precision", "recall", "F1 vs hidden query"],
        rows,
    )
