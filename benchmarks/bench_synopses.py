"""S8 — synopsis accuracy vs space ([16, 5]).

All four synopsis families estimate range counts over a zipfian column at
several space budgets; reported as mean relative error per (synopsis,
space) cell, plus point-frequency error for the sketch.

Shape assertions: every family's error decreases with space; at equal
space, equi-depth beats equi-width on the skewed data; Count-Min never
underestimates point frequencies.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import numpy as np
from common import print_table

from repro.synopses import (
    CountMinSketch,
    EquiDepthHistogram,
    EquiWidthHistogram,
    HaarWaveletSynopsis,
    SampleSynopsis,
)
from repro.workloads import zipfian_column

N = 100_000
NUM_VALUES = 2_000


def _range_queries(rng, count=50, width=40):
    starts = rng.integers(0, NUM_VALUES - width, size=count)
    return [(int(s), int(s + width)) for s in starts]


def _mean_relative_error(synopsis, queries, values) -> float:
    errors = []
    for low, high in queries:
        truth = float(((values >= low) & (values <= high)).sum())
        estimate = synopsis.estimate_range_count(low, high)
        errors.append(abs(estimate - truth) / max(1.0, truth))
    return float(np.mean(errors))


def run_experiment(n: int = N):
    rng = np.random.default_rng(0)
    values = zipfian_column(n, num_values=NUM_VALUES, skew=1.3, seed=1).astype(float)
    queries = _range_queries(rng)
    budgets = (16, 64, 256)
    rows = []
    errors: dict[tuple[str, int], float] = {}
    for budget in budgets:
        synopses = {
            "equi-width": EquiWidthHistogram(values, num_buckets=budget),
            "equi-depth": EquiDepthHistogram(values, num_buckets=budget),
            "wavelet": HaarWaveletSynopsis(values, num_coefficients=budget, grid_size=2048),
            "sample": SampleSynopsis(values, sample_size=budget * 2, seed=2),
        }
        for name, synopsis in synopses.items():
            error = _mean_relative_error(synopsis, queries, values)
            errors[(name, budget)] = error
            rows.append([name, budget, synopsis.size_bytes, error])
    return values, errors, rows, budgets


def test_bench_synopses(benchmark) -> None:
    values, errors, rows, budgets = run_experiment(n=40_000)
    print_table(
        "S8: mean relative range-count error by synopsis and budget",
        ["synopsis", "budget", "bytes", "mean rel. error"],
        rows,
    )
    for name in ("equi-width", "equi-depth", "wavelet", "sample"):
        assert errors[(name, budgets[-1])] <= errors[(name, budgets[0])] + 0.02, (
            f"{name}: more space must not hurt"
        )
    assert errors[("equi-depth", 64)] <= errors[("equi-width", 64)], (
        "equi-depth is the skew-robust histogram"
    )
    # Count-Min: one-sided error on point frequencies
    sketch = CountMinSketch(epsilon=0.005, delta=0.01)
    sketch.extend(values[:20_000].astype(int).tolist())
    counts = np.bincount(values[:20_000].astype(int), minlength=NUM_VALUES)
    for item in range(0, NUM_VALUES, 200):
        assert sketch.estimate(item) >= counts[item]

    benchmark(lambda: EquiDepthHistogram(values, num_buckets=64))


if __name__ == "__main__":
    _, _, rows, _ = run_experiment()
    print_table(
        "S8: mean relative range-count error by synopsis and budget",
        ["synopsis", "budget", "bytes", "mean rel. error"],
        rows,
    )
