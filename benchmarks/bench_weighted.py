"""S20 — SciBORQ impressions: focus under a hard row budget ([59, 60]).

Rows in an "interesting" region (1% of the table) carry high weights.
Under a fixed row budget, biased impressions capture far more of the
interesting region than uniform samples — while Horvitz–Thompson
reweighting keeps global aggregates roughly unbiased.

Shape assertions: coverage of the interesting region grows with the bias
knob; HT sum estimates stay within a reasonable band of the truth.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import numpy as np
from common import print_table

from repro.sampling import WeightedSampler

N = 100_000
BUDGET = 2_000


def run_experiment(n: int = N, budget: int = BUDGET):
    rng = np.random.default_rng(0)
    values = rng.uniform(0, 100, size=n)
    interesting = np.zeros(n, dtype=bool)
    interesting[rng.choice(n, size=n // 100, replace=False)] = True
    weights = np.where(interesting, 50.0, 1.0)

    rows = []
    coverage_by_bias = {}
    for bias in (0.0, 0.5, 1.0, 2.0):
        sampler = WeightedSampler(weights, bias=bias, seed=1)
        impression = sampler.build(budget)
        coverage = sampler.coverage_of(impression, interesting)
        ht_sum = impression.horvitz_thompson_sum(values[impression.row_indices])
        truth = float(values.sum())
        coverage_by_bias[bias] = coverage
        rows.append([bias, impression.size, coverage, abs(ht_sum - truth) / truth])
    return coverage_by_bias, rows


def test_bench_weighted_sampling(benchmark) -> None:
    coverage_by_bias, rows = run_experiment(n=40_000, budget=1_000)
    print_table(
        "S20: interesting-region coverage and HT-sum error vs bias",
        ["bias", "rows", "coverage of interesting 1%", "HT sum rel. error"],
        rows,
    )
    assert coverage_by_bias[2.0] > coverage_by_bias[0.0] * 3, (
        "bias must focus the impression"
    )
    assert coverage_by_bias[1.0] > coverage_by_bias[0.0]
    # HT reweighting keeps the unbiased-ish property
    assert all(row[3] < 0.5 for row in rows)

    weights = np.ones(40_000)
    weights[:400] = 50.0
    sampler = WeightedSampler(weights, bias=1.0, seed=2)
    benchmark(lambda: sampler.build(1_000).size)


if __name__ == "__main__":
    _, rows = run_experiment()
    print_table(
        "S20: interesting-region coverage and HT-sum error vs bias",
        ["bias", "rows", "coverage of interesting 1%", "HT sum rel. error"],
        rows,
    )
