"""S3 — hybrid adaptive indexing convergence ([33]).

Hybrids merge qualifying key ranges out of cracked/sorted partitions into
a final sorted index, so repeated or overlapping ranges converge to
full-index cost much faster than plain cracking.

Shape assertions: with a shifting-focus workload (lots of range overlap),
the hybrid's late-query cost collapses to near the sorted index's, and
its total cost beats plain cracking's on the revisit-heavy phase.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import numpy as np
from common import print_table

from repro.indexing import CrackerIndex, HybridCrackSortIndex, SortedIndex
from repro.workloads import shifting_focus_queries, uniform_column

N = 300_000
DOMAIN = (0, 10_000_000)


def run_experiment(n: int = N, num_queries: int = 120):
    values = uniform_column(n, *DOMAIN, seed=0)
    queries = shifting_focus_queries(
        num_queries, DOMAIN, selectivity=0.002, num_phases=3, focus_fraction=0.05, seed=1
    )
    indexes = {
        "crack": CrackerIndex(values.copy()),
        "hybrid-crack": HybridCrackSortIndex(values.copy(), num_partitions=16, flavour="crack"),
        "hybrid-sort": HybridCrackSortIndex(values.copy(), num_partitions=16, flavour="sort"),
        "full-sort": SortedIndex(values.copy(), lazy=True),
    }
    series: dict[str, list[int]] = {name: [] for name in indexes}
    for query in queries:
        for name, index in indexes.items():
            before = index.work_touched
            index.lookup_range(query.low, query.high, True, False)
            series[name].append(index.work_touched - before)
    checkpoints = [0, 4, 19, 59, num_queries - 1]
    rows = [[q + 1] + [series[name][q] for name in indexes] for q in checkpoints]
    rows.append(["total"] + [sum(series[name]) for name in indexes])
    return series, rows, list(indexes)


def test_bench_hybrid_convergence(benchmark) -> None:
    series, rows, names = run_experiment(n=100_000, num_queries=90)
    print_table(
        "S3: per-query cost, shifting-focus workload",
        ["query"] + names,
        rows,
    )
    for flavour in ("hybrid-crack", "hybrid-sort"):
        early = float(np.mean(series[flavour][:5]))
        late = float(np.mean(series[flavour][-15:]))
        assert late < early / 3, f"{flavour} must converge as ranges merge"
    first_sorted = series["full-sort"][0]
    assert series["hybrid-crack"][0] < first_sorted, (
        "hybrid avoids the monolithic up-front sort"
    )
    # once the focus region is fully merged, repeat ranges cost index-like
    # amounts: the cheapest late hybrid query approaches the sorted index's
    late_sorted = float(np.mean(series["full-sort"][-15:]))
    assert min(series["hybrid-crack"][-15:]) < 4 * max(1.0, late_sorted)

    values = uniform_column(100_000, *DOMAIN, seed=0)
    queries = shifting_focus_queries(40, DOMAIN, selectivity=0.002, seed=1)

    def run_hybrid():
        index = HybridCrackSortIndex(values.copy(), num_partitions=16)
        for query in queries:
            index.lookup_range(query.low, query.high, True, False)
        return index.work_touched

    benchmark(run_hybrid)


if __name__ == "__main__":
    _, rows, names = run_experiment()
    print_table("S3: per-query cost, shifting-focus workload", ["query"] + names, rows)
