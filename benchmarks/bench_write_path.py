"""Write path: delta-store appends vs rebuild-the-world, merge cost, reads.

Measures the batched write path introduced with the delta store against
the engine's previous behaviour, where every INSERT rebuilt the whole
table through ``replace_table`` (invalidating statistics, encodings and
the plan cache each time):

- single-row append throughput: delta-store INSERT vs a faithful
  simulation of the legacy concat-and-replace path, on a 100k-row table;
- read latency over main+delta as the pending tail grows (0 / 1k / 8k
  pending rows), against a fully merged twin — results must match;
- merge cost: folding an 8k-row delta into the main incrementally vs
  rebuilding the same table from scratch via ``replace_table``.

Results print as a table and can be dumped as ``BENCH_write_path.json``
(``--json``); ``--quick`` shrinks the table for CI.  Every delta-path
result is checked bit-identical to its merged twin before any timing is
reported.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import numpy as np
from common import print_table

from repro.engine import Database, Table, scanopt
from repro.engine import delta as deltamod
from repro.engine.column import Column

N = 100_000
APPENDS = 1_000
READ_SQL = "SELECT COUNT(*) AS n, SUM(x) AS sx FROM t WHERE x >= 50000 AND s = 'city_0042'"


def build_database(n: int = N, seed: int = 0) -> Database:
    """A 100k-row table shaped like the scan-accel benchmark's: clustered
    int, low-cardinality string — both accelerator-friendly, so the
    legacy path pays for re-encoding on every rebuild exactly as it did."""
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, 200, n)
    strings = [f"city_{int(v):04d}" for v in labels]
    db = Database()
    db.create_table("t", {"x": np.arange(n, dtype=np.int64).tolist(), "s": strings})
    return db


def _legacy_insert(db: Database, x: int, s: str) -> None:
    """What ``INSERT INTO t VALUES (...)`` did before the delta store:
    concat a one-row tail onto every column and replace the table."""
    main = db.main_table("t")
    tail = Table(
        [
            ("x", Column(np.array([x], dtype=np.int64))),
            ("s", Column(np.array([s], dtype=object))),
        ]
    )
    db.replace_table("t", main.concat(tail))


def _time(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _best_of(fn, repeats: int = 3) -> tuple[float, object]:
    best, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _identical(a, b) -> bool:
    if a.column_names != b.column_names or a.num_rows != b.num_rows:
        return False
    for name in a.column_names:
        ca, cb = a.column(name), b.column(name)
        va = ca.validity if ca.validity is not None else np.ones(len(ca), bool)
        vb = cb.validity if cb.validity is not None else np.ones(len(cb), bool)
        if not np.array_equal(va, vb):
            return False
        if ca.data.dtype == object:
            if list(ca.data[va]) != list(cb.data[vb]):
                return False
        elif ca.data[va].tobytes() != cb.data[vb].tobytes():
            return False
    return True


def bench_append_throughput(n: int, appends: int) -> dict:
    """Single-row INSERTs: the delta path vs the legacy rebuild path."""
    delta_db = build_database(n)
    deltamod.configure(delta_rows=deltamod.DEFAULT_DELTA_ROWS)

    def delta_appends() -> None:
        for i in range(appends):
            delta_db.execute(f"INSERT INTO t (x, s) VALUES ({n + i}, 'city_0042')")

    delta_s = _time(delta_appends)

    legacy_db = build_database(n)

    def legacy_appends() -> None:
        for i in range(appends):
            _legacy_insert(legacy_db, n + i, "city_0042")

    legacy_s = _time(legacy_appends)

    delta_db.flush_deltas("t")
    assert _identical(delta_db.get_table("t"), legacy_db.get_table("t")), (
        "delta-path appends diverged from the rebuild path"
    )
    return {
        "appends": appends,
        "legacy_s": legacy_s,
        "delta_s": delta_s,
        "legacy_rows_per_s": appends / legacy_s,
        "delta_rows_per_s": appends / delta_s,
        "speedup": legacy_s / delta_s,
    }


def bench_read_latency(n: int) -> dict:
    """Query latency as the pending delta grows, vs a merged twin."""
    out: dict[str, dict] = {}
    for pending in (0, 1_000, 8_000):
        db = build_database(n)
        deltamod.configure(delta_rows=max(pending + 1, 1))
        for start in range(0, pending, 500):
            count = min(500, pending - start)
            values = ", ".join(
                f"({n + start + i}, 'city_0042')" for i in range(count)
            )
            db.execute(f"INSERT INTO t (x, s) VALUES {values}")
        merged = build_database(n)
        deltamod.configure(delta_rows=1)  # merge-on-write twin
        for start in range(0, pending, 500):
            count = min(500, pending - start)
            values = ", ".join(
                f"({n + start + i}, 'city_0042')" for i in range(count)
            )
            merged.execute(f"INSERT INTO t (x, s) VALUES {values}")
        assert merged.delta_store_if_dirty("t") is None
        delta_s, got = _best_of(lambda: db.sql(READ_SQL))
        merged_s, expected = _best_of(lambda: merged.sql(READ_SQL))
        assert _identical(got, expected), (
            f"delta read diverged from merged twin at {pending} pending rows"
        )
        out[str(pending)] = {
            "delta_ms": delta_s * 1e3,
            "merged_ms": merged_s * 1e3,
            "overhead": delta_s / merged_s,
        }
    return out


def bench_merge_cost(n: int, pending: int = 8_000) -> dict:
    """Incremental merge of a pending delta vs rebuilding from scratch.

    Both sides are timed to the same finish line: a merged table with
    fresh statistics and zone maps.  The merge maintains dictionary
    codes, statistics and zones incrementally; the rebuild re-encodes
    and recomputes them over all ``n + pending`` rows."""
    db = build_database(n)
    db.statistics("t")  # warm, as a long-lived table's would be
    db.zone_map("t")
    deltamod.configure(delta_rows=pending + 1)
    for start in range(0, pending, 500):
        values = ", ".join(f"({n + start + i}, 'city_0042')" for i in range(500))
        db.execute(f"INSERT INTO t (x, s) VALUES {values}")

    def merge() -> None:
        db.flush_deltas("t")
        db.statistics("t")
        db.zone_map("t")

    merge_s = _time(merge)

    rng = np.random.default_rng(0)
    labels = rng.integers(0, 200, n)
    xs = np.arange(n, dtype=np.int64).tolist() + [n + i for i in range(pending)]
    strings = [f"city_{int(v):04d}" for v in labels] + ["city_0042"] * pending
    rebuild_db = Database()

    def rebuild() -> None:
        rebuild_db.create_table("t", {"x": xs, "s": strings})
        rebuild_db.statistics("t")
        rebuild_db.zone_map("t")

    rebuild_s = _time(rebuild)
    assert _identical(db.get_table("t"), rebuild_db.get_table("t"))
    return {
        "pending": pending,
        "merge_ms": merge_s * 1e3,
        "rebuild_ms": rebuild_s * 1e3,
        "speedup": rebuild_s / merge_s,
    }


def run_experiment(n: int = N, appends: int = APPENDS) -> dict:
    saved = deltamod.get_config().delta_rows
    try:
        return {
            "rows": n,
            "append": bench_append_throughput(n, appends),
            "read": bench_read_latency(n),
            "merge": bench_merge_cost(n),
        }
    finally:
        deltamod.configure(delta_rows=saved)
        scanopt.configure(
            dict_encode=True,
            zone_rows=scanopt.DEFAULT_ZONE_ROWS,
            plan_cache=True,
        )


def result_rows(results: dict) -> list[list]:
    append = results["append"]
    merge = results["merge"]
    rows = [
        [
            f"append {append['appends']} rows (legacy)",
            f"{append['legacy_s'] * 1e3:.1f}",
            f"{append['legacy_rows_per_s']:,.0f} rows/s",
            "1.0x",
        ],
        [
            f"append {append['appends']} rows (delta)",
            f"{append['delta_s'] * 1e3:.1f}",
            f"{append['delta_rows_per_s']:,.0f} rows/s",
            f"{append['speedup']:.1f}x",
        ],
    ]
    for pending, r in results["read"].items():
        rows.append(
            [
                f"read with {pending} pending",
                f"{r['delta_ms']:.3f}",
                f"merged {r['merged_ms']:.3f} ms",
                f"{1 / r['overhead']:.2f}x",
            ]
        )
    rows.append(
        [
            f"merge {merge['pending']} pending",
            f"{merge['merge_ms']:.1f}",
            f"rebuild {merge['rebuild_ms']:.1f} ms",
            f"{merge['speedup']:.1f}x",
        ]
    )
    return rows


def test_bench_write_path(benchmark) -> None:
    results = run_experiment(n=20_000, appends=200)
    print_table(
        "Write path: delta store vs rebuild",
        ["workload", "ms", "detail", "speedup"],
        result_rows(results),
    )
    # the 10x acceptance number comes from the full 100k-row __main__
    # run; the CI envelope is deliberately loose
    assert results["append"]["speedup"] > 3.0

    db = build_database(20_000)
    saved = deltamod.get_config().delta_rows
    deltamod.configure(delta_rows=deltamod.DEFAULT_DELTA_ROWS)
    counter = iter(range(10_000_000))

    def one_insert() -> None:
        db.execute(f"INSERT INTO t (x, s) VALUES ({next(counter)}, 'city_0001')")

    try:
        benchmark(one_insert)
    finally:
        deltamod.configure(delta_rows=saved)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="small table for CI")
    parser.add_argument("--json", metavar="PATH", help="write results as JSON")
    args = parser.parse_args()
    n, appends = (20_000, 200) if args.quick else (N, APPENDS)
    results = run_experiment(n, appends)
    print_table(
        f"Write path: delta store vs rebuild ({n:,} rows)",
        ["workload", "ms", "detail", "speedup"],
        result_rows(results),
    )
    if args.json:
        Path(args.json).write_text(json.dumps(results, indent=2) + "\n")
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
