"""Smoke benchmark: run a tiny cross-layer workload and assert that the
metrics-registry JSON snapshot is well-formed.

Exercises every observability surface in one pass — SQL execution
counters/timers, EXPLAIN ANALYZE profiling, a cracker index, the tile
and semantic caches, the adaptive store, and a recorded benchmark table
— then round-trips the snapshot through JSON and checks its shape.
CI runs this after the test suite (``python benchmarks/smoke_metrics.py``).
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import numpy as np
from common import metrics_snapshot, print_table

from repro.engine.catalog import Database
from repro.engine.column import Column
from repro.engine.types import coerce_array, infer_type
from repro.indexing import CrackerIndex
from repro.obs import get_registry
from repro.prefetch import SemanticRangeCache, TileCache
from repro.storage import AdaptiveStore, QueryProfile


def run_workload() -> tuple:
    """Touch every instrumented subsystem at least once.

    Returns the instrumented objects so the caller can keep them alive
    until the snapshot is taken (stat sources are weakly referenced).
    """
    db = Database()
    rng = np.random.default_rng(0)
    db.create_table(
        "sales",
        {
            "region": [f"r{i % 5}" for i in range(1000)],
            "amount": rng.uniform(0, 100, 1000).tolist(),
        },
    )
    db.sql("SELECT region, SUM(amount) AS total FROM sales GROUP BY region")
    report = db.explain_analyze(
        "SELECT DISTINCT region FROM sales WHERE amount > 50 ORDER BY region LIMIT 3"
    )
    assert report.total_s >= 0 and report.root.rows_out <= 3

    values = rng.uniform(0, 1000, 10_000)
    index = CrackerIndex(values)
    for low in (100, 400, 700):
        index.lookup_range(low, low + 50, True, False)

    tiles = TileCache(capacity=4)
    for key in (1, 2, 1, 3):
        if tiles.get(key) is None:
            tiles.put(key, f"tile-{key}")

    cache = SemanticRangeCache(
        fetch=lambda low, high: np.flatnonzero((values >= low) & (values < high))
    )
    cache.query(0, 100)
    cache.query(50, 150)

    store = AdaptiveStore(columns=["a", "b", "c"], num_rows=1000)
    for _ in range(20):
        store.execute(QueryProfile.make(filters=["a"], projects=["a", "b"]))

    print_table("smoke: row counts", ["step", "rows"], [["sales", 1000]])
    return index, tiles, cache, store


def check_column_fast_path(n: int = 200_000, repeats: int = 3) -> float:
    """Guard the vectorised ``Column.__init__`` fast path for plain number
    lists: it must stay well ahead of the per-element scan it replaced
    (reproduced inline below) while building the identical payload."""
    values = list(range(n))

    def slow_reference():
        # the pre-fast-path construction: a per-element null scan, a
        # per-element type inference pass, then list coercion
        assert not any(v is None for v in values)
        dtype = infer_type(values)
        return coerce_array(values, dtype), dtype

    fast_s, slow_s = float("inf"), float("inf")
    column = None
    for _ in range(repeats):
        start = time.perf_counter()
        column = Column(values)
        fast_s = min(fast_s, time.perf_counter() - start)
        start = time.perf_counter()
        slow_data, slow_dtype = slow_reference()
        slow_s = min(slow_s, time.perf_counter() - start)

    assert column.dtype is slow_dtype
    assert column.validity is None
    assert np.array_equal(column.data, slow_data)
    speedup = slow_s / fast_s
    # the honest ratio is ~2x (two python passes + asarray vs one asarray);
    # 1.4x leaves noise headroom while still catching a lost fast path
    assert speedup >= 1.4, (
        f"Column fast path regressed: only {speedup:.1f}x over the element scan"
    )
    return speedup


def main() -> int:
    keepalive = run_workload()
    fast_path_speedup = check_column_fast_path()
    snapshot = json.loads(metrics_snapshot())
    assert keepalive is not None

    for section in ("counters", "gauges", "timers", "sources", "benchmarks"):
        assert section in snapshot, f"snapshot is missing section {section!r}"
    assert snapshot["counters"].get("engine.queries", 0) >= 1
    assert snapshot["counters"].get("engine.queries_profiled", 0) >= 1
    assert snapshot["timers"]["engine.query_time"]["count"] >= 2
    sources = snapshot["sources"]
    for prefix in (
        "indexing.cracker",
        "prefetch.tile_cache",
        "prefetch.semantic_cache",
        "storage.adaptive_store",
    ):
        assert any(
            name == prefix or name.startswith(prefix + "#") for name in sources
        ), f"no stat source matching {prefix!r}: {sorted(sources)}"
    assert "smoke: row counts" in snapshot["benchmarks"]

    get_registry().reset()
    print("metrics smoke ok:", len(sources), "stat sources,",
          len(snapshot["benchmarks"]), "benchmark tables,",
          f"column fast path {fast_path_speedup:.1f}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
