"""S22 — keyword search over relations: candidate networks ([67]).

A three-table publications database; keyword queries of increasing
breadth.  Reported: candidate networks enumerated, answers produced, and
the size of the winning network.

Shape assertions: single-table matches rank above join answers
(compactness); multi-keyword queries spanning tables produce joined
answers through the FK graph; non-matching keywords yield nothing.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from common import print_table

from repro.engine import Database
from repro.interface import KeywordSearchEngine
from repro.interface.keyword import ForeignKey


def _engine() -> KeywordSearchEngine:
    db = Database()
    authors = {
        "author_id": list(range(8)),
        "name": [
            "Ada Lovelace", "Alan Turing", "Grace Hopper", "Edgar Codd",
            "Barbara Liskov", "John Backus", "Frances Allen", "Donald Knuth",
        ],
    }
    papers = {
        "paper_id": list(range(12)),
        "author_id": [0, 1, 1, 2, 3, 3, 4, 5, 6, 7, 7, 2],
        "venue_id": [0, 1, 1, 2, 0, 0, 2, 1, 0, 2, 2, 1],
        "title": [
            "Notes on the Analytical Engine",
            "On Computable Numbers",
            "Computing Machinery and Intelligence",
            "The Education of a Computer",
            "A Relational Model of Data",
            "Further Normalization of the Data Base Relational Model",
            "Abstraction Mechanisms in CLU",
            "The FORTRAN Automatic Coding System",
            "Program Optimization",
            "The Art of Computer Programming",
            "Literate Programming",
            "Compiling Routines",
        ],
    }
    venues = {
        "venue_id": [0, 1, 2],
        "venue": ["Scientific Memoirs", "Mind Journal", "Communications Digest"],
    }
    db.create_table("authors", authors)
    db.create_table("papers", papers)
    db.create_table("venues", venues)
    fks = [
        ForeignKey("papers", "author_id", "authors", "author_id"),
        ForeignKey("papers", "venue_id", "venues", "venue_id"),
    ]
    return KeywordSearchEngine(db, fks)


QUERIES = [
    ["Turing"],
    ["Relational"],
    ["Codd", "Relational"],
    ["Knuth", "Literate"],
    ["Turing", "Mind"],
    ["xylophone"],
]


def run_experiment():
    engine = _engine()
    rows = []
    results_by_query = {}
    for keywords in QUERIES:
        networks = engine.candidate_networks(keywords)
        results = engine.search(keywords, k=3)
        results_by_query[tuple(keywords)] = results
        best = results[0].tables if results else ()
        rows.append(
            [
                " ".join(keywords),
                len(networks),
                len(results),
                " ⋈ ".join(best) if best else "-",
            ]
        )
    return engine, results_by_query, rows


def test_bench_keyword_search(benchmark) -> None:
    engine, results, rows = run_experiment()
    print_table(
        "S22: candidate networks and answers per keyword query",
        ["keywords", "networks", "answers", "best network"],
        rows,
    )
    assert results[("Turing",)][0].tables == ("authors",), "compact answers first"
    joined = results[("Codd", "Relational")]
    assert joined and set(joined[0].tables) == {"authors", "papers"}
    cross = results[("Turing", "Mind")]
    assert cross and {"authors", "papers", "venues"} >= set(cross[0].tables)
    assert len(set(cross[0].tables)) >= 2
    assert results[("xylophone",)] == []

    benchmark(lambda: engine.search(["Relational"], k=3))


if __name__ == "__main__":
    *_, rows = run_experiment()
    print_table(
        "S22: candidate networks and answers per keyword query",
        ["keywords", "networks", "answers", "best network"],
        rows,
    )
