"""Query governor: cancellation latency and degraded-answer quality.

Two experiments over the resilience layer:

1. **Cancellation latency vs morsel size** — with every morsel slowed by
   a fixed injected delay and a deadline far below the total work, the
   overshoot past the deadline is bounded by roughly the work in flight
   at the checkpoint (one morsel per worker): smaller morsels mean finer
   checkpoints and tighter cancellation.
2. **Degraded-answer error/latency curve** — the sampling-based
   approximate answer at growing sample budgets, against the exact
   aggregate: wall time, relative error and CI width all shrink toward
   the exact answer as the budget grows.

Both tables feed the benchmark-metrics export via ``print_table``.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import numpy as np
from common import print_table

from repro import resilience
from repro.engine import Database, parallel
from repro.errors import QueryTimeoutError
from repro.resilience.degrade import degraded_answer
from repro.workloads import sales_table

QUERY = (
    "SELECT region, COUNT(*) AS n, SUM(quantity) AS sq, AVG(price) AS ap "
    "FROM sales GROUP BY region"
)
SLOW_MS = 20.0
DEADLINE_MS = 60


def _reset() -> None:
    resilience.configure(timeout_ms=0, faults="off", degrade=0)
    parallel.configure(threads=0, morsel_rows=parallel.DEFAULT_MORSEL_ROWS)
    parallel.shutdown_pool()


def run_latency_experiment(
    n: int = 8_000, morsel_sizes: tuple[int, ...] = (100, 400, 1_600)
):
    """Overshoot past the deadline for each morsel granularity."""
    db = Database()
    db.create_table("sales", sales_table(n, seed=0))
    rows = []
    overshoots = {}
    try:
        for morsel_rows in morsel_sizes:
            parallel.configure(threads=2, morsel_rows=morsel_rows, min_parallel_rows=1)
            resilience.configure(
                timeout_ms=DEADLINE_MS, faults=f"slow_morsel:1.0:{SLOW_MS}"
            )
            morsels = parallel.morsel_count(n)
            start = time.perf_counter()
            try:
                db.sql(QUERY)
                outcome = "finished"
            except QueryTimeoutError:
                outcome = "timeout"
            wall_ms = (time.perf_counter() - start) * 1e3
            overshoot_ms = max(0.0, wall_ms - DEADLINE_MS)
            overshoots[morsel_rows] = overshoot_ms
            rows.append(
                [morsel_rows, morsels, f"{wall_ms:.1f}", f"{overshoot_ms:.1f}", outcome]
            )
    finally:
        _reset()
    return rows, overshoots


def run_degradation_experiment(
    n: int = 200_000, sample_sizes: tuple[int, ...] = (1_000, 5_000, 25_000)
):
    """Error and latency of the degraded answer at growing sample budgets."""
    db = Database()
    db.create_table("sales", sales_table(n, seed=0))
    start = time.perf_counter()
    exact = db.sql(QUERY)
    exact_ms = (time.perf_counter() - start) * 1e3
    exact_sq = {
        exact.column("region")[i]: exact.column("sq")[i] for i in range(exact.num_rows)
    }
    plan = db.plan(QUERY)
    rows = [["exact", f"{exact_ms:.1f}", "0.000%", "—", ""]]
    errors = {}
    try:
        for size in sample_sizes:
            start = time.perf_counter()
            approx = degraded_answer(plan, db, max_rows=size, reason="benchmark")
            wall_ms = (time.perf_counter() - start) * 1e3
            rel_errors, ci_widths, covered = [], [], 0
            for i in range(approx.num_rows):
                region = approx.column("region")[i]
                truth = exact_sq[region]
                est = approx.column("sq")[i]
                lo = approx.column("sq_lo")[i]
                hi = approx.column("sq_hi")[i]
                rel_errors.append(abs(est - truth) / abs(truth))
                ci_widths.append((hi - lo) / abs(truth))
                covered += int(lo <= truth <= hi)
            mean_err = float(np.mean(rel_errors))
            errors[size] = mean_err
            rows.append(
                [
                    f"sample {size}",
                    f"{wall_ms:.1f}",
                    f"{mean_err:.3%}",
                    f"{float(np.mean(ci_widths)):.3%}",
                    f"{covered}/{approx.num_rows} in CI",
                ]
            )
    finally:
        _reset()
    return rows, errors


def test_bench_resilience(benchmark) -> None:
    latency_rows, overshoots = run_latency_experiment(
        n=2_000, morsel_sizes=(50, 200, 800)
    )
    print_table(
        "Governor: cancellation latency vs morsel size (injected 20 ms/morsel)",
        ["morsel_rows", "morsels", "wall ms", "overshoot ms", "outcome"],
        latency_rows,
    )
    # fine morsels keep the overshoot within a handful of slow morsels'
    # work; generous bound so single-core CI hosts don't flake
    assert overshoots[50] < SLOW_MS * 10

    degrade_rows, errors = run_degradation_experiment(
        n=50_000, sample_sizes=(1_000, 10_000)
    )
    print_table(
        "Governor: degraded-answer error/latency curve (SUM per group)",
        ["mode", "wall ms", "mean rel error", "mean CI width", "coverage"],
        degrade_rows,
    )
    # more sample budget must not make the estimate worse (deterministic seed)
    assert errors[10_000] <= errors[1_000]

    db = Database()
    db.create_table("sales", sales_table(20_000, seed=1))
    plan = db.plan(QUERY)
    try:
        benchmark(lambda: degraded_answer(plan, db, max_rows=2_000, reason="bench"))
    finally:
        _reset()


if __name__ == "__main__":
    rows, _ = run_latency_experiment()
    print_table(
        "Governor: cancellation latency vs morsel size (injected 20 ms/morsel)",
        ["morsel_rows", "morsels", "wall ms", "overshoot ms", "outcome"],
        rows,
    )
    rows, _ = run_degradation_experiment()
    print_table(
        "Governor: degraded-answer error/latency curve (SUM per group)",
        ["mode", "wall ms", "mean rel error", "mean CI width", "coverage"],
        rows,
    )
