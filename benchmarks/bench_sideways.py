"""S21 — sideways cracking: tuple reconstruction ([31]).

``SELECT tail WHERE head BETWEEN ...`` answered two ways:

- plain cracking on the head + positional gather of the tail (random
  access per qualifying row, charged with a penalty factor as in the
  storage cost model);
- a sideways cracker map storing (head, tail) together.

Shape assertions: both converge, but the sideways map's steady-state cost
(sequential tail reads) beats crack+gather once result sizes dominate;
maps for never-projected columns are never built.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import numpy as np
from common import print_table

from repro.indexing import CrackerIndex, SidewaysCracker
from repro.workloads import random_range_queries, uniform_column

N = 300_000
DOMAIN = (0, 10_000_000)
GATHER_PENALTY = 4  # random access vs sequential read, as in repro.storage


def run_experiment(n: int = N, num_queries: int = 120):
    rng = np.random.default_rng(0)
    head = uniform_column(n, *DOMAIN, seed=1)
    tails = {"b": rng.normal(size=n), "c": rng.normal(size=n)}
    queries = random_range_queries(num_queries, DOMAIN, selectivity=0.01, seed=2)

    # plain cracking + gather
    cracker = CrackerIndex(head.copy())
    gather_cost = 0
    crack_series = []
    for query in queries:
        before = cracker.work_touched
        positions = cracker.lookup_range(query.low, query.high, True, False)
        tails["b"][positions]  # the actual gather
        cost = (cracker.work_touched - before) + GATHER_PENALTY * len(positions)
        gather_cost += GATHER_PENALTY * len(positions)
        crack_series.append(cost)

    # sideways cracker map
    sideways = SidewaysCracker(head, tails)
    side_series = []
    previous = 0
    for query in queries:
        sideways.select_project(query.low, query.high, ["b"], True, False)
        side_series.append(sideways.work_touched - previous)
        previous = sideways.work_touched

    checkpoints = [0, 9, 49, num_queries - 1]
    rows = [[q + 1, crack_series[q], side_series[q]] for q in checkpoints]
    rows.append(["total", sum(crack_series), sum(side_series)])
    return crack_series, side_series, sideways, rows


def test_bench_sideways(benchmark) -> None:
    crack_series, side_series, sideways, rows = run_experiment(
        n=100_000, num_queries=80
    )
    print_table(
        "S21: select+project cost, crack+gather vs sideways map",
        ["query", "crack + gather", "sideways map"],
        rows,
    )
    late_crack = float(np.mean(crack_series[-15:]))
    late_side = float(np.mean(side_series[-15:]))
    assert late_side < late_crack, (
        "steady state: sequential map reads beat positional gathers"
    )
    assert sideways.maps_created == 1, "the never-projected column built no map"

    head = uniform_column(100_000, *DOMAIN, seed=1)
    tails = {"b": np.random.default_rng(3).normal(size=100_000)}
    queries = random_range_queries(40, DOMAIN, selectivity=0.01, seed=4)

    def run_sideways():
        cracker = SidewaysCracker(head, tails)
        for query in queries:
            cracker.select_project(query.low, query.high, ["b"], True, False)
        return cracker.work_touched

    benchmark(run_sideways)


if __name__ == "__main__":
    *_, rows = run_experiment()
    print_table(
        "S21: select+project cost, crack+gather vs sideways map",
        ["query", "crack + gather", "sideways map"],
        rows,
    )
