"""S11 — semantic windows: online vs exhaustive search ([36]).

Hotspot windows hide somewhere on a large grid; the exhaustive strategy
scans windows in grid order while the online strategy probes then expands
around promising probes.

Shape assertion: averaged over grids, the online strategy inspects far
fewer windows before delivering the first k results.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import numpy as np
from common import print_table

from repro.explore import SemanticWindowExplorer
from repro.workloads import grid_table

SIDE = 128
WINDOW = 4
THRESHOLD = 1.5


def run_experiment(side: int = SIDE, trials: int = 6, k: int = 3):
    rows = []
    ratios = []
    for trial in range(trials):
        table = grid_table(side, value_fn="hotspots", num_hotspots=3, seed=trial)
        online = SemanticWindowExplorer(table, WINDOW, THRESHOLD)
        exhaustive = SemanticWindowExplorer(table, WINDOW, THRESHOLD)
        online_found = online.find_online(k=k, num_probes=side, seed=trial)
        exhaustive_found = exhaustive.find_exhaustive(k=k)
        if not online_found or not exhaustive_found:
            continue
        ratios.append(exhaustive.windows_inspected / max(1, online.windows_inspected))
        rows.append(
            [
                trial,
                len(online_found),
                online.windows_inspected,
                exhaustive.windows_inspected,
                online.num_windows,
            ]
        )
    return ratios, rows


def test_bench_semantic_windows(benchmark) -> None:
    ratios, rows = run_experiment(side=96, trials=5)
    print_table(
        "S11: windows inspected to find first 3 results",
        ["grid", "found", "online inspected", "exhaustive inspected", "total windows"],
        rows,
    )
    assert ratios, "expected at least one grid with discoverable hotspots"
    assert float(np.mean(ratios)) > 1.5, "online search should inspect far fewer windows on average"

    table = grid_table(64, value_fn="hotspots", num_hotspots=3, seed=99)

    def one_online_search():
        explorer = SemanticWindowExplorer(table, WINDOW, THRESHOLD)
        return explorer.find_online(k=2, num_probes=64, seed=0)

    benchmark(one_online_search)


if __name__ == "__main__":
    _, rows = run_experiment()
    print_table(
        "S11: windows inspected to find first 3 results",
        ["grid", "found", "online inspected", "exhaustive inspected", "total windows"],
        rows,
    )
