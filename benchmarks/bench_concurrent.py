"""S23 — concurrency control for adaptive indexing ([22]).

Eight clients issue range queries against one shared cracker index under
piece-level latching.  The headline dynamic of Graefe et al.: early
rounds serialize (everyone cracks the same huge piece), but contention
evaporates as the index adapts and queries land on disjoint pieces.

Shape assertions: the conflict rate in the first rounds far exceeds the
late rounds'; effective parallelism approaches the client count; total
rounds ≪ the serial execution's round count.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import numpy as np
from common import print_table

from repro.indexing import ConcurrentCrackingSimulator
from repro.workloads import random_range_queries, uniform_column

N = 500_000
CLIENTS = 8
QUERIES_PER_CLIENT = 50
DOMAIN = (0, 10_000_000)


def run_experiment(n: int = N, clients: int = CLIENTS, per_client: int = QUERIES_PER_CLIENT):
    values = uniform_column(n, *DOMAIN, seed=0)
    simulator = ConcurrentCrackingSimulator(values, num_clients=clients, seed=1)
    queues = [
        random_range_queries(per_client, DOMAIN, selectivity=0.002, seed=100 + c)
        for c in range(clients)
    ]
    rounds = simulator.run(queues)
    rows = []
    for r in rounds[:3] + rounds[len(rounds) // 2 : len(rounds) // 2 + 2] + rounds[-3:]:
        rows.append(
            [r.round_index, r.submitted, r.executed, r.conflicts, r.pieces]
        )
    rows.append(
        [
            "summary",
            f"{len(rounds)} rounds",
            simulator.serial_rounds_equivalent(),
            f"{simulator.conflict_rate():.2f} overall",
            simulator.index.num_pieces,
        ]
    )
    return simulator, rounds, rows


def test_bench_concurrent_cracking(benchmark) -> None:
    simulator, rounds, rows = run_experiment(n=100_000, clients=8, per_client=40)
    print_table(
        "S23: per-round concurrency under piece-level latching",
        ["round", "submitted", "executed", "conflicts", "pieces"],
        rows,
    )
    early = simulator.conflict_rate(0, 3)
    late = simulator.conflict_rate(-10, None)
    assert early > late + 0.1, "contention must evaporate as the index adapts"
    late_parallelism = float(np.mean([r.executed for r in rounds[-5:] if r.submitted]))
    assert late_parallelism > 4, "late rounds should run most clients in parallel"
    assert len(rounds) < simulator.serial_rounds_equivalent(), (
        "concurrency must beat serial execution"
    )

    values = uniform_column(50_000, *DOMAIN, seed=2)

    def one_run():
        sim = ConcurrentCrackingSimulator(values, num_clients=4, seed=3)
        queues = [
            random_range_queries(15, DOMAIN, selectivity=0.005, seed=200 + c)
            for c in range(4)
        ]
        sim.run(queues)
        return sim.conflict_rate()

    benchmark(one_run)


if __name__ == "__main__":
    *_, rows = run_experiment()
    print_table(
        "S23: per-round concurrency under piece-level latching",
        ["round", "submitted", "executed", "conflicts", "pieces"],
        rows,
    )
