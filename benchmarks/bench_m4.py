"""S17 — M4 result reduction: pixel error vs reduction factor ([11]).

A long random-walk series reduced to a 4·width-point result; compared
against uniform (stride) sampling at the same budget, across several
chart widths.

Shape assertions: M4's pixel error is no worse than uniform sampling's
at every width (and strictly better somewhere); reduction factors are
large.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import numpy as np
from common import print_table

from repro.viz import m4_reduce, reduction_error

N = 200_000


def run_experiment(n: int = N):
    rng = np.random.default_rng(0)
    x = np.arange(n, dtype=float)
    y = np.cumsum(rng.normal(size=n))
    rows = []
    m4_errors = {}
    uniform_errors = {}
    for width in (50, 100, 400):
        m4x, m4y = m4_reduce(x, y, width)
        stride = max(1, n // max(1, len(m4x)))
        ux, uy = x[::stride], y[::stride]
        m4_error = reduction_error(x, y, m4x, m4y, width=width)
        uniform_error = reduction_error(x, y, ux, uy, width=width)
        m4_errors[width] = m4_error
        uniform_errors[width] = uniform_error
        rows.append([width, n // max(1, len(m4x)), m4_error, uniform_error])
    return m4_errors, uniform_errors, rows


def test_bench_m4(benchmark) -> None:
    m4_errors, uniform_errors, rows = run_experiment(n=60_000)
    print_table(
        "S17: pixel error of M4 vs uniform sampling at equal budget",
        ["chart width", "reduction factor", "m4 error", "uniform error"],
        rows,
    )
    for width in m4_errors:
        assert m4_errors[width] <= uniform_errors[width] + 1e-9
    assert any(m4_errors[w] < uniform_errors[w] * 0.8 for w in m4_errors), (
        "M4 should beat uniform sampling clearly somewhere"
    )

    rng = np.random.default_rng(1)
    x = np.arange(30_000, dtype=float)
    y = np.cumsum(rng.normal(size=30_000))
    benchmark(lambda: m4_reduce(x, y, 200))


if __name__ == "__main__":
    *_, rows = run_experiment()
    print_table(
        "S17: pixel error of M4 vs uniform sampling at equal budget",
        ["chart width", "reduction factor", "m4 error", "uniform error"],
        rows,
    )
