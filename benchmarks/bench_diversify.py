"""S13 — result diversification: the relevance/diversity trade-off ([65, 41]).

Sweeping MMR's λ from pure-diversity to pure-relevance over clustered
candidates traces the trade-off curve; the swap heuristic and the plain
top-k baseline sit at known points on it.

Shape assertions: diversity decreases (weakly) as λ grows; λ=1 equals
top-k relevance; at moderate λ MMR beats top-k on diversity while keeping
most of its relevance.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import numpy as np
from common import print_table

from repro.explore import diversity_score, mmr_diversify, swap_diversify
from repro.explore.diversify import relevance_score, topk_relevance

K = 10


def _candidates(seed: int = 0):
    rng = np.random.default_rng(seed)
    centers = np.asarray([[0, 0], [15, 0], [0, 15], [15, 15]])
    points = np.concatenate(
        [center + rng.normal(0, 1.0, size=(60, 2)) for center in centers]
    )
    relevance = rng.uniform(0.2, 0.6, size=len(points))
    relevance[:60] += 0.5  # one cluster is clearly most relevant
    return points, relevance


def run_experiment(seed: int = 0):
    points, relevance = _candidates(seed)
    rows = []
    curve = {}
    for trade_off in (0.0, 0.25, 0.5, 0.75, 1.0):
        selected = mmr_diversify(points, relevance, K, trade_off=trade_off)
        div = diversity_score(points, selected)
        rel = relevance_score(relevance, selected)
        curve[trade_off] = (div, rel)
        rows.append([f"mmr λ={trade_off}", rel, div])
    top = topk_relevance(relevance, K)
    rows.append(["top-k", relevance_score(relevance, top), diversity_score(points, top)])
    swapped = swap_diversify(points, relevance, K, min_relevance_fraction=0.5)
    rows.append(
        ["swap", relevance_score(relevance, swapped), diversity_score(points, swapped)]
    )
    return points, relevance, curve, top, rows


def test_bench_diversification(benchmark) -> None:
    points, relevance, curve, top, rows = run_experiment()
    print_table(
        "S13: relevance/diversity trade-off (k=10)",
        ["method", "total relevance", "diversity"],
        rows,
    )
    # λ sweep: diversity at λ=0 far exceeds λ=1
    assert curve[0.0][0] > curve[1.0][0] * 1.5
    # λ=1 reduces to pure top-k
    top_div = diversity_score(points, top)
    assert abs(curve[1.0][0] - top_div) < 1e-9
    # moderate λ: much more diverse than top-k, keeps most relevance
    assert curve[0.5][0] > top_div * 1.2
    assert curve[0.5][1] > 0.6 * curve[1.0][1]

    benchmark(lambda: mmr_diversify(points, relevance, K, trade_off=0.5))


if __name__ == "__main__":
    *_, rows = run_experiment()
    print_table(
        "S13: relevance/diversity trade-off (k=10)",
        ["method", "total relevance", "diversity"],
        rows,
    )
