"""S6 — online aggregation ([25]'s headline figure).

Running AVG over a large table: the confidence interval's half-width
shrinks like 1/sqrt(rows processed), so a few percent of the data already
pins the answer tightly — the analyst stops the query early.

Shape assertions: the half-width decreases monotonically (sampled at
checkpoints), roughly as 1/sqrt(n); a 1%-relative-error stop consumes a
small fraction of the table; the final (exhausted) answer is exact.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import numpy as np
from common import print_table

from repro.sampling import OnlineAggregator

N = 1_000_000


def run_experiment(n: int = N):
    rng = np.random.default_rng(0)
    values = rng.lognormal(mean=3.0, sigma=1.0, size=n)
    truth = float(values.mean())
    aggregator = OnlineAggregator(values, "avg", batch_size=n // 100, seed=1)
    rows = []
    checkpoints = {1, 2, 5, 10, 25, 50, 100}
    widths = []
    batch = 0
    for result in aggregator.run():
        batch += 1
        widths.append(result.estimate.half_width)
        if batch in checkpoints:
            rows.append(
                [
                    result.rows_processed,
                    f"{100 * result.progress:.0f}%",
                    result.estimate.value,
                    result.estimate.half_width,
                    result.estimate.contains(truth),
                ]
            )
    return values, truth, widths, rows


def test_bench_online_aggregation(benchmark) -> None:
    values, truth, widths, rows = run_experiment(n=200_000)
    print_table(
        "S6: running AVG estimate with 95% CI",
        ["rows seen", "progress", "estimate", "ci half-width", "covers truth"],
        rows,
    )
    # width shrinks ~1/sqrt(n): width at 4x the rows should be ~half
    assert widths[3] < widths[0] * 0.75
    assert widths[-1] == 0.0, "exhausted run is exact"
    # early stopping saves most of the scan
    aggregator = OnlineAggregator(values, "avg", batch_size=2000, seed=2)
    stopped = aggregator.run_until(relative_error=0.01)
    assert stopped.rows_processed <= len(values) / 3
    assert abs(stopped.estimate.value - truth) / truth < 0.05

    def one_stop():
        agg = OnlineAggregator(values, "avg", batch_size=2000, seed=3)
        return agg.run_until(relative_error=0.02).rows_processed

    benchmark(one_stop)


if __name__ == "__main__":
    _, _, _, rows = run_experiment()
    print_table(
        "S6: running AVG estimate with 95% CI",
        ["rows seen", "progress", "estimate", "ci half-width", "covers truth"],
        rows,
    )
