"""S1 — database cracking convergence ([29]'s headline figure).

Per-query cost (elements touched) of three strategies over a random
range-query workload:

- full scan: flat, high;
- full sort: one enormous first query, then near-zero;
- cracking: first query ≈ a scan, then rapid convergence toward the
  sorted index without ever paying the up-front sort.

Shape assertions: cracking's first query is far cheaper than the sorted
index's first query; cracking's late queries are far cheaper than scans;
cumulative cracking cost stays below the scan baseline.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import numpy as np
from common import print_table

from repro.indexing import CrackerIndex, ScanIndex, SortedIndex
from repro.workloads import random_range_queries, uniform_column

N = 1_000_000
NUM_QUERIES = 200
DOMAIN = (0, 10_000_000)


def run_experiment(n: int = N, num_queries: int = NUM_QUERIES):
    """Returns per-query costs for scan / sort / crack plus summary rows."""
    values = uniform_column(n, *DOMAIN, seed=0)
    queries = random_range_queries(num_queries, DOMAIN, selectivity=0.001, seed=1)

    costs: dict[str, list[int]] = {}
    for name, index in (
        ("scan", ScanIndex(values)),
        ("sort", SortedIndex(values.copy(), lazy=True)),
        ("crack", CrackerIndex(values.copy())),
    ):
        series = []
        for query in queries:
            before = index.work_touched
            index.lookup_range(query.low, query.high, True, False)
            series.append(index.work_touched - before)
        costs[name] = series

    checkpoints = [0, 1, 4, 9, 49, 99, num_queries - 1]
    rows = []
    for q in checkpoints:
        rows.append([q + 1, costs["scan"][q], costs["sort"][q], costs["crack"][q]])
    rows.append(
        ["cumulative", sum(costs["scan"]), sum(costs["sort"]), sum(costs["crack"])]
    )
    return costs, rows


def test_bench_cracking_convergence(benchmark) -> None:
    costs, rows = run_experiment(n=200_000, num_queries=100)
    print_table(
        "S1: per-query cost (elements touched), random workload",
        ["query", "scan", "full sort", "crack"],
        rows,
    )
    # shape claims from the cracking papers
    assert costs["crack"][0] < costs["sort"][0] / 2, "cracking avoids the up-front sort"
    late_crack = float(np.mean(costs["crack"][-20:]))
    assert late_crack < costs["scan"][-1] / 20, "cracking converges near index speed"
    assert sum(costs["crack"]) < sum(costs["scan"]), "cumulative crack < cumulative scan"

    # time one steady-state cracked lookup
    values = uniform_column(200_000, *DOMAIN, seed=0)
    index = CrackerIndex(values)
    for query in random_range_queries(100, DOMAIN, selectivity=0.001, seed=1):
        index.lookup_range(query.low, query.high, True, False)
    query = random_range_queries(1, DOMAIN, selectivity=0.001, seed=2)[0]
    benchmark(lambda: index.lookup_range(query.low, query.high, True, False))
    benchmark.extra_info["late_crack_cost"] = late_crack


if __name__ == "__main__":
    _, rows = run_experiment()
    print_table(
        "S1: per-query cost (elements touched), random workload",
        ["query", "scan", "full sort", "crack"],
        rows,
    )
