"""S24 — ripple join: online aggregation over joins (CONTROL [24]).

Estimating a join cardinality while both inputs stream in random order:
the estimate converges to the true join size with a shrinking interval,
so analysts can abort multi-minute joins in seconds.

Shape assertions: the relative error after a small fraction of both
inputs is already low; the CI half-width shrinks monotonically at
checkpoints; exhaustion is exact.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import numpy as np
from common import print_table

from repro.sampling import RippleJoin


def _tables(n_left: int, n_right: int, keys: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    return (
        rng.integers(0, keys, size=n_left),
        rng.integers(0, keys, size=n_right),
    )


def _truth(left, right) -> float:
    from collections import Counter

    counts = Counter(right.tolist())
    return float(sum(counts[v] for v in left.tolist()))


def run_experiment(n_left: int = 40_000, n_right: int = 30_000):
    left, right = _tables(n_left, n_right, keys=500, seed=0)
    truth = _truth(left, right)
    join = RippleJoin(left, right, batch_size=n_left // 50, seed=1)
    rows = []
    widths = []
    step = 0
    for snapshot in join.run():
        step += 1
        widths.append(snapshot.half_width)
        if step in (1, 2, 5, 10, 25, 50):
            error = abs(snapshot.estimate - truth) / truth
            rows.append(
                [
                    snapshot.rows_read_left + snapshot.rows_read_right,
                    snapshot.pairs_inspected,
                    snapshot.estimate,
                    snapshot.half_width,
                    error,
                ]
            )
    rows.append(["exact", "-", truth, 0.0, 0.0])
    return join, truth, widths, rows


def test_bench_ripple_join(benchmark) -> None:
    join, truth, widths, rows = run_experiment(n_left=10_000, n_right=8_000)
    print_table(
        "S24: ripple-join running estimate of |R ⋈ S|",
        ["rows read", "pairs inspected", "estimate", "ci half-width", "rel. error"],
        rows,
    )
    assert widths[10] < widths[1], "interval shrinks as the corner grows"
    # after ~20% of both inputs the estimate is tight
    left, right = _tables(10_000, 8_000, keys=500, seed=0)
    probe = RippleJoin(left, right, batch_size=500, seed=2)
    snapshot = probe.run_until(max_rows_per_side=2_000)
    assert abs(snapshot.estimate - truth) / truth < 0.1

    def early_stop():
        j = RippleJoin(left, right, batch_size=500, seed=3)
        return j.run_until(max_rows_per_side=1_500).estimate

    benchmark(early_stop)


if __name__ == "__main__":
    *_, rows = run_experiment()
    print_table(
        "S24: ripple-join running estimate of |R ⋈ S|",
        ["rows read", "pairs inspected", "estimate", "ci half-width", "rel. error"],
        rows,
    )
