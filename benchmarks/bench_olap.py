"""S26 — discovery-driven OLAP exploration ([54, 55]).

A planted exception in a sales cube: one (region, category) cell deviates
from the additive model.  Discovery-driven exploration must (a) rank the
view containing it first, (b) flag the right cell, and (c) point the
drill-down at the right dimension value — without the analyst scanning
the cube.

Shape assertions: exactly those three behaviours, plus no false flags on
a purely additive cube.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import numpy as np
from common import print_table

from repro.engine import Table
from repro.explore import CubeExplorer, best_views_by_exceptions


def _cube_with_exception(seed: int = 0, rows_per_cell: int = 80):
    rng = np.random.default_rng(seed)
    regions = ("north", "south", "east", "west")
    categories = ("tools", "toys", "food")
    channels = ("web", "store")
    region_effect = {r: 10.0 * i for i, r in enumerate(regions)}
    category_effect = {c: 4.0 * i for i, c in enumerate(categories)}
    data = {"region": [], "category": [], "channel": [], "revenue": []}
    for region in regions:
        for category in categories:
            for channel in channels:
                base = 50.0 + region_effect[region] + category_effect[category]
                if (region, category) == ("south", "toys"):
                    base += 40.0  # the planted exception
                for _ in range(rows_per_cell):
                    data["region"].append(region)
                    data["category"].append(category)
                    data["channel"].append(channel)
                    data["revenue"].append(base + rng.normal(0, 1.0))
    return Table.from_dict(data)


def run_experiment():
    table = _cube_with_exception()
    views = best_views_by_exceptions(
        table, ["region", "category", "channel"], "revenue", top_k=3
    )
    explorer = CubeExplorer(table, "region", "category", "revenue")
    exceptions = explorer.exceptions(threshold=2.0)
    drill = explorer.drill_path_scores()
    view_rows = [[f"{a} x {b}", mass] for a, b, mass in views]
    cell_rows = [
        [c.row_value, c.column_value, c.actual, c.expected, c.surprise]
        for c in exceptions[:4]
    ]
    return views, exceptions, drill, view_rows, cell_rows


def test_bench_olap_discovery(benchmark) -> None:
    views, exceptions, drill, view_rows, cell_rows = run_experiment()
    print_table("S26a: cube views ranked by exception mass", ["view", "mass"], view_rows)
    print_table(
        "S26b: flagged cells in the region x category view",
        ["region", "category", "actual", "expected", "surprise"],
        cell_rows,
    )
    assert set(views[0][:2]) == {"region", "category"}, "exception view ranks first"
    assert exceptions, "the planted exception must be flagged"
    top = exceptions[0]
    assert (top.row_value, top.column_value) == ("south", "toys")
    assert max(drill, key=drill.get) == "south", "drill guidance points at south"

    table = _cube_with_exception(seed=1, rows_per_cell=40)
    benchmark(
        lambda: CubeExplorer(table, "region", "category", "revenue").exceptions()
    )


if __name__ == "__main__":
    *_, view_rows, cell_rows = run_experiment()
    print_table("S26a: cube views ranked by exception mass", ["view", "mass"], view_rows)
    print_table(
        "S26b: flagged cells in the region x category view",
        ["region", "category", "actual", "expected", "surprise"],
        cell_rows,
    )
