"""S15 — iSAX data-series index vs sequential scan ([68]).

Exact 1-NN queries over random-walk series: the index visits a fraction
of the series thanks to MINDIST pruning; the adaptive build defers leaf
splitting until queries arrive, shifting cost from build to first-touch.

Shape assertions: exact search computes far fewer distances than a scan
while returning the true nearest neighbour; the adaptive build starts
with fewer leaves than the eager one.  Includes the word-length ablation
from DESIGN.md.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import numpy as np
from common import print_table

from repro.indexing import ISAXIndex
from repro.workloads import random_walk_series

NUM_SERIES = 2_000
LENGTH = 128


def run_experiment(num_series: int = NUM_SERIES, num_queries: int = 20):
    series = random_walk_series(num_series, LENGTH, seed=0)
    # similarity-search queries: noisy variants of indexed series (the
    # standard data-series benchmark query model)
    rng = np.random.default_rng(1)
    targets = rng.integers(0, num_series, size=num_queries)
    queries = series[targets] + rng.normal(0, 0.05, size=(num_queries, LENGTH))
    index = ISAXIndex(series, word_length=8, leaf_capacity=32)
    rows = []
    total_distances = 0
    correct = 0
    for i, query in enumerate(queries):
        index.reset_counters()
        (found, _), = index.exact_search(query, k=1)
        truth = int(np.argmin(np.linalg.norm(series - query, axis=1)))
        correct += found == truth
        total_distances += index.distance_computations
        if i < 6:
            rows.append([i, index.distance_computations, num_series, found == truth])
    rows.append(
        ["mean", total_distances / num_queries, num_series, f"{correct}/{num_queries}"]
    )
    return correct, total_distances, num_queries, num_series, rows


def test_bench_isax(benchmark) -> None:
    correct, total_distances, num_queries, num_series, rows = run_experiment(
        num_series=800, num_queries=10
    )
    print_table(
        "S15: distance computations per exact 1-NN query (scan = all series)",
        ["query", "distances", "scan cost", "correct"],
        rows,
    )
    assert correct == num_queries, "exact search must always be correct"
    assert total_distances / num_queries < num_series / 4, (
        "pruning should skip most of the data"
    )

    series = random_walk_series(800, LENGTH, seed=0)
    eager = ISAXIndex(series, leaf_capacity=32, adaptive=False)
    lazy = ISAXIndex(series, leaf_capacity=32, adaptive=True)
    assert lazy.num_leaves < eager.num_leaves, "adaptive build defers splits"

    index = ISAXIndex(series, leaf_capacity=32)
    query = random_walk_series(1, LENGTH, seed=2)[0]
    benchmark(lambda: index.exact_search(query, k=1))


def test_bench_isax_word_length_ablation(benchmark) -> None:
    """Ablation: longer SAX words prune better (up to a point)."""
    series = random_walk_series(800, LENGTH, seed=3)
    queries = random_walk_series(5, LENGTH, seed=4)
    rows = []
    mean_distances = {}
    for word_length in (4, 8, 16):
        index = ISAXIndex(series, word_length=word_length, leaf_capacity=32)
        total = 0
        for query in queries:
            index.reset_counters()
            index.exact_search(query, k=1)
            total += index.distance_computations
        mean_distances[word_length] = total / len(queries)
        rows.append([word_length, mean_distances[word_length], index.num_leaves])
    print_table(
        "S15b: word-length ablation (mean distances per query)",
        ["word length", "mean distances", "leaves"],
        rows,
    )
    assert mean_distances[8] <= mean_distances[4] * 1.5
    benchmark(lambda: None)


if __name__ == "__main__":
    *_, rows = run_experiment()
    print_table(
        "S15: distance computations per exact 1-NN query (scan = all series)",
        ["query", "distances", "scan cost", "correct"],
        rows,
    )
