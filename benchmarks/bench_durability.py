"""Durability: WAL append cost per sync policy, recovery time vs log length.

Measures what the write-ahead log charges the write path and what crash
recovery costs on reopen:

- single-row durable INSERT throughput under each sync policy
  (``off`` / ``batch`` / ``commit``) on a 100k-row table, against the
  same workload with the WAL disabled — the fsync-per-commit price and
  how far batching recovers it;
- recovery time as a function of WAL length: reopen a database whose
  log holds 100 / 1k / 5k records, versus reopening right after a
  checkpoint (replay of zero records, pure snapshot load).

Results print as a table and can be dumped as ``BENCH_durability.json``
(``--json``); ``--quick`` shrinks the table and the workloads for CI.
Every run is verified: the reopened database must hold exactly the rows
that were durably written.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import numpy as np
from common import print_table

from repro.engine import Database
from repro.engine import wal as walmod
from repro.obs import get_registry

N = 100_000
APPENDS = 1_000
WAL_LENGTHS = (100, 1_000, 5_000)


def build_database(root: Path | None, n: int = N, seed: int = 0) -> Database:
    """A durable (or, with ``root=None``, in-memory) 100k-row table."""
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, 200, n)
    strings = [f"city_{int(v):04d}" for v in labels]
    db = Database(path=root) if root is not None else Database()
    db.create_table("t", {"x": np.arange(n, dtype=np.int64).tolist(), "s": strings})
    return db


def _time(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def bench_append_sync_policies(root: Path, n: int, appends: int) -> dict:
    """Durable single-row INSERT throughput per sync policy vs no WAL."""
    out: dict[str, dict] = {}
    fsyncs = get_registry().counter("wal.fsyncs")
    for policy in ("nowal", "off", "batch", "commit"):
        if policy == "nowal":
            walmod.configure(wal=False, wal_sync="commit")
        else:
            walmod.configure(wal=True, wal_sync=policy)
        db = build_database(root / policy, n)

        def run() -> None:
            for i in range(appends):
                db.execute(f"INSERT INTO t (x, s) VALUES ({n + i}, 'city_0042')")

        fsyncs_before = fsyncs.value
        seconds = _time(run)
        db.close()
        walmod.configure(wal=True, wal_sync="commit")
        with Database(path=root / policy) as recovered:
            # with the WAL disabled nothing was logged — not even CREATE
            has_table = recovered.has_table("t")
            durable = recovered.get_table("t").num_rows - n if has_table else 0
        expected = 0 if policy == "nowal" else appends
        assert durable == expected, (
            f"{policy}: expected {expected} durable appends, recovered {durable}"
        )
        out[policy] = {
            "seconds": seconds,
            "rows_per_s": appends / seconds,
            "fsyncs": fsyncs.value - fsyncs_before,
            "recovered_rows": durable,
        }
    baseline = out["nowal"]["seconds"]
    for r in out.values():
        r["overhead"] = r["seconds"] / baseline
    return out


def bench_recovery_time(root: Path, n: int, lengths: tuple[int, ...]) -> dict:
    """Reopen cost vs WAL length, and vs a freshly checkpointed snapshot."""
    out: dict[str, dict] = {}
    # building the log is not the measurement: sync lazily, close flushes
    walmod.configure(wal=True, wal_sync="off")
    for records in lengths:
        directory = root / f"replay_{records}"
        db = build_database(directory, n)
        for i in range(records):
            db.execute(f"INSERT INTO t (x, s) VALUES ({n + i}, 'city_0042')")
        db.close()
        seconds = _time(lambda: Database(path=directory).close())
        with Database(path=directory) as recovered:
            assert recovered.get_table("t").num_rows == n + records
            replayed = recovered.durability.last_recovery["records_replayed"]
        out[str(records)] = {
            "recovery_s": seconds,
            "records_replayed": replayed,
            "ms_per_record": seconds * 1e3 / max(1, replayed),
        }
    directory = root / "checkpointed"
    db = build_database(directory, n)
    for i in range(lengths[-1]):
        db.execute(f"INSERT INTO t (x, s) VALUES ({n + i}, 'city_0042')")
    db.checkpoint()
    db.close()
    seconds = _time(lambda: Database(path=directory).close())
    with Database(path=directory) as recovered:
        assert recovered.get_table("t").num_rows == n + lengths[-1]
        assert recovered.durability.last_recovery["records_replayed"] == 0
    out["checkpointed"] = {
        "recovery_s": seconds,
        "records_replayed": 0,
        "ms_per_record": 0.0,
    }
    return out


def run_experiment(
    n: int = N, appends: int = APPENDS, lengths: tuple[int, ...] = WAL_LENGTHS
) -> dict:
    """Both experiments under a throwaway directory; restores the config."""
    config = walmod.get_config()
    saved = (config.wal, config.wal_sync, config.wal_batch)
    tmp = Path(tempfile.mkdtemp(prefix="bench_durability_"))
    try:
        return {
            "rows": n,
            "append": bench_append_sync_policies(tmp / "append", n, appends),
            "recovery": bench_recovery_time(tmp / "recovery", n, lengths),
        }
    finally:
        walmod.configure(wal=saved[0], wal_sync=saved[1], wal_batch=saved[2])
        shutil.rmtree(tmp, ignore_errors=True)


def result_rows(results: dict) -> list[list]:
    """Flatten the result dict into printable table rows."""
    rows = []
    for policy, r in results["append"].items():
        label = "no WAL" if policy == "nowal" else f"wal_sync={policy}"
        rows.append(
            [
                f"append ({label})",
                f"{r['seconds'] * 1e3:.1f}",
                f"{r['rows_per_s']:,.0f} rows/s, {r['fsyncs']} fsyncs",
                f"{r['overhead']:.2f}x",
            ]
        )
    for key, r in results["recovery"].items():
        label = "after checkpoint" if key == "checkpointed" else f"{key}-record WAL"
        rows.append(
            [
                f"recover ({label})",
                f"{r['recovery_s'] * 1e3:.1f}",
                f"{r['records_replayed']} replayed, "
                f"{r['ms_per_record']:.3f} ms/record",
                "",
            ]
        )
    return rows


def test_bench_durability(benchmark) -> None:
    """CI leg: small-scale run, correctness asserts, one timed durable INSERT."""
    results = run_experiment(n=20_000, appends=200, lengths=(50, 200))
    print_table(
        "Durability: WAL cost and recovery",
        ["workload", "ms", "detail", "vs no WAL"],
        result_rows(results),
    )
    append = results["append"]
    assert append["commit"]["recovered_rows"] == 200
    # commit fsyncs every record; batch amortises; off only syncs on close
    assert append["commit"]["fsyncs"] >= 200
    assert append["off"]["fsyncs"] <= append["batch"]["fsyncs"] <= append["commit"]["fsyncs"]
    assert results["recovery"]["200"]["records_replayed"] == 201  # + the CREATE

    config = walmod.get_config()
    saved = (config.wal, config.wal_sync, config.wal_batch)
    tmp = Path(tempfile.mkdtemp(prefix="bench_durability_"))
    walmod.configure(wal=True, wal_sync="batch")
    db = build_database(tmp, 20_000)
    counter = iter(range(10_000_000))

    def one_durable_insert() -> None:
        db.execute(f"INSERT INTO t (x, s) VALUES ({next(counter)}, 'city_0001')")

    try:
        benchmark(one_durable_insert)
    finally:
        db.close()
        walmod.configure(wal=saved[0], wal_sync=saved[1], wal_batch=saved[2])
        shutil.rmtree(tmp, ignore_errors=True)


def main() -> int:
    """Entry point."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="small table for CI")
    parser.add_argument("--json", metavar="PATH", help="write results as JSON")
    args = parser.parse_args()
    if args.quick:
        n, appends, lengths = 20_000, 300, (50, 200, 800)
    else:
        n, appends, lengths = N, APPENDS, WAL_LENGTHS
    results = run_experiment(n, appends, lengths)
    print_table(
        f"Durability: WAL cost and recovery ({n:,} rows)",
        ["workload", "ms", "detail", "vs no WAL"],
        result_rows(results),
    )
    if args.json:
        Path(args.json).write_text(json.dumps(results, indent=2) + "\n")
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
