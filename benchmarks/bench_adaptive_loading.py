"""S5 — NoDB: querying raw files without loading ([8]'s headline figure).

A sequence of queries over a wide CSV file, three systems:

- full load: parse everything before query 1;
- raw (NoDB): parse lazily with a positional map, cache parsed columns;
- invisible loading: NoDB behaviour with parsed columns retained as
  engine tables.

Shape assertions: raw's first-query cost is far below the full load; its
repeat queries are near-free; cumulative raw cost for a narrow workload
stays below the one-off full-load cost.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from common import print_table

from repro.engine import Database, write_csv
from repro.loading import InvisibleLoader, full_load
from repro.workloads import sales_table

NUM_ROWS = 20_000


def _make_csv(num_rows: int, directory: str) -> Path:
    path = Path(directory) / "sales.csv"
    write_csv(sales_table(num_rows, seed=0), path)
    return path


QUERIES = [
    "SELECT AVG(price) AS mean_price FROM sales WHERE price > 10",
    "SELECT AVG(price) AS mean_price FROM sales WHERE price > 50",
    "SELECT SUM(quantity) AS q FROM sales WHERE price > 50",
    "SELECT AVG(revenue) AS r FROM sales WHERE quantity >= 5",
    "SELECT AVG(revenue) AS r FROM sales WHERE quantity >= 8",
    "SELECT AVG(price) AS mean_price FROM sales WHERE price > 90",
]


def run_experiment(num_rows: int = NUM_ROWS):
    with tempfile.TemporaryDirectory() as directory:
        path = _make_csv(num_rows, directory)
        # full load comparator
        _, load_cost = full_load(Database(), "sales", path)
        # adaptive loading
        loader = InvisibleLoader(Database(), "sales", path)
        for query in QUERIES:
            loader.query(query)
        rows = []
        cumulative = 0
        for i, cost in enumerate(loader.query_costs):
            cumulative += cost
            rows.append([i + 1, cost, cumulative, load_cost])
        progress = loader.progress()
        return loader, load_cost, rows, progress


def test_bench_adaptive_loading(benchmark) -> None:
    loader, load_cost, rows, progress = run_experiment(num_rows=5_000)
    print_table(
        "S5: per-query parsing+tokenizing cost vs one-off full load",
        ["query", "raw cost", "raw cumulative", "full-load cost"],
        rows,
    )
    costs = loader.query_costs
    assert costs[0] < load_cost / 2, "first raw query far cheaper than full load"
    assert costs[1] < costs[0] / 5, "repeat queries on parsed columns are near-free"
    assert sum(costs) < load_cost, "cumulative raw < full load for a narrow workload"
    assert progress.fraction_loaded < 1.0, "unqueried columns were never parsed"

    with tempfile.TemporaryDirectory() as directory:
        path = _make_csv(2_000, directory)

        def first_query():
            loader = InvisibleLoader(Database(), "sales", path)
            return loader.query(QUERIES[0]).num_rows

        benchmark(first_query)


if __name__ == "__main__":
    _, _, rows, _ = run_experiment()
    print_table(
        "S5: per-query parsing+tokenizing cost vs one-off full load",
        ["query", "raw cost", "raw cumulative", "full-load cost"],
        rows,
    )


def test_bench_speculative_loading(benchmark) -> None:
    """S5b — speculative loading ([15]): background materialisation makes
    follow-up queries' foreground parsing (near-)free."""
    from repro.loading import SpeculativeLoader

    with tempfile.TemporaryDirectory() as directory:
        path = _make_csv(4_000, directory)
        plain_db, spec_db = Database(), Database()
        plain = InvisibleLoader(plain_db, "sales", path)
        speculative = SpeculativeLoader(
            spec_db, "sales", path, speculation_budget=2,
            workload_hint=["quantity", "revenue"],
        )
        queries = [
            "SELECT AVG(price) AS p FROM sales WHERE price > 10",
            "SELECT SUM(quantity) AS q FROM sales WHERE quantity >= 5",
            "SELECT AVG(revenue) AS r FROM sales WHERE revenue > 50",
        ]
        for query in queries:
            plain.query(query)
            speculative.query(query)
        rows = [
            [i + 1, plain.query_costs[i], speculative.foreground_costs[i]]
            for i in range(len(queries))
        ]
        rows.append(["background", 0, speculative.background_cost])
        print_table(
            "S5b: foreground parsing cost, plain NoDB vs speculative loading",
            ["query", "plain NoDB", "speculative"],
            rows,
        )
        # queries 2 and 3 find their columns already materialised
        assert speculative.foreground_costs[1] < plain.query_costs[1] / 5
        assert speculative.foreground_costs[2] < plain.query_costs[2] / 5
        assert speculative.speculative_hits >= 2
        assert speculative.background_cost > 0

        benchmark(lambda: speculative.fraction_loaded)
