"""Scan-path acceleration: dictionary filters, zone skipping, plan cache.

Builds a table with a low-cardinality string column (one rare needle at
<=1% selectivity) and a clustered numeric column, then measures each
accelerator against its switched-off twin on the same data:

- string equality filter with dictionary encoding on vs off;
- clustered range filter with zone maps on vs off;
- the combined predicate with everything on vs everything off;
- repeated ``db.plan()`` with the plan cache on vs off.

Results print as a table and can be dumped as ``BENCH_scan_accel.json``
(``--json``); ``--quick`` shrinks the table for CI.  Every accelerated
result is checked bit-identical to its unaccelerated twin before any
timing is reported.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import numpy as np
from common import print_table

from repro.engine import Database, scanopt

N = 1_000_000
ZONE_ROWS = 16_384
NEEDLE = "city_0042"
STRING_EQ = f"SELECT COUNT(*) AS n, SUM(x) AS sx FROM t WHERE s = '{NEEDLE}'"
RANGE_FILTER = "SELECT COUNT(*) AS n, SUM(x) AS sx FROM t WHERE x >= 900000 AND x < 905000"
COMBINED = (
    f"SELECT COUNT(*) AS n FROM t WHERE x >= 900000 AND x < 950000 AND s = '{NEEDLE}'"
)
PLAN_SQL = (
    "SELECT s, COUNT(*) AS n, SUM(x) AS sx FROM t "
    "WHERE x > 10 AND s <> 'nope' GROUP BY s HAVING COUNT(*) > 1"
)


def build_database(n: int = N, seed: int = 0) -> Database:
    """One clustered int column + a ~200-distinct string column where the
    needle value covers well under 1% of rows."""
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, 200, n)
    strings = [f"city_{int(v):04d}" for v in labels]
    db = Database()
    db.create_table("t", {"x": np.arange(n, dtype=np.int64).tolist(), "s": strings})
    return db


def _best_of(fn, repeats: int = 3) -> tuple[float, object]:
    best, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _identical(a, b) -> bool:
    if a.column_names != b.column_names or a.num_rows != b.num_rows:
        return False
    for name in a.column_names:
        ca, cb = a.column(name), b.column(name)
        va = ca.validity if ca.validity is not None else np.ones(len(ca), bool)
        vb = cb.validity if cb.validity is not None else np.ones(len(cb), bool)
        if not np.array_equal(va, vb):
            return False
        if ca.data.dtype == object:
            if list(ca.data[va]) != list(cb.data[vb]):
                return False
        elif ca.data[va].tobytes() != cb.data[vb].tobytes():
            return False
    return True


def _compare(db: Database, sql: str, accel: dict, baseline: dict) -> dict:
    """Time one query under two scanopt configurations (results must match)."""
    scanopt.configure(**baseline)
    slow_s, slow = _best_of(lambda: db.sql(sql))
    scanopt.configure(**accel)
    fast_s, fast = _best_of(lambda: db.sql(sql))
    assert _identical(fast, slow), f"accelerated result drifted on: {sql}"
    return {"off_ms": slow_s * 1e3, "on_ms": fast_s * 1e3, "speedup": slow_s / fast_s}


def _plan_overhead(db: Database, repeats: int = 200) -> dict:
    def planning(enabled: bool) -> float:
        scanopt.configure(plan_cache=enabled)
        db.plan(PLAN_SQL)  # warm (or prove cold planning works)
        start = time.perf_counter()
        for _ in range(repeats):
            db.plan(PLAN_SQL)
        return (time.perf_counter() - start) / repeats

    off_s = planning(False)
    on_s = planning(True)
    return {"off_ms": off_s * 1e3, "on_ms": on_s * 1e3, "speedup": off_s / on_s}


def run_experiment(n: int = N) -> dict:
    db = build_database(n)
    on = {"dict_encode": True, "zone_rows": ZONE_ROWS, "plan_cache": True}
    off = {"dict_encode": False, "zone_rows": 0, "plan_cache": False}
    try:
        results = {
            "rows": n,
            "zone_rows": ZONE_ROWS,
            "string_eq": _compare(
                db, STRING_EQ, {**off, "dict_encode": True}, off
            ),
            "zone_range": _compare(
                db, RANGE_FILTER, {**off, "zone_rows": ZONE_ROWS}, off
            ),
            "combined": _compare(db, COMBINED, on, off),
            "plan_cache": _plan_overhead(db),
        }
    finally:
        scanopt.configure(
            dict_encode=True,
            zone_rows=scanopt.DEFAULT_ZONE_ROWS,
            plan_cache=True,
            plan_cache_size=scanopt.DEFAULT_PLAN_CACHE_SIZE,
        )
    return results


def result_rows(results: dict) -> list[list]:
    rows = []
    for key, label in (
        ("string_eq", "string = (dictionary)"),
        ("zone_range", "clustered range (zones)"),
        ("combined", "combined predicate (all)"),
        ("plan_cache", "repeat plan (cache)"),
    ):
        r = results[key]
        rows.append([label, f"{r['off_ms']:.3f}", f"{r['on_ms']:.3f}", f"{r['speedup']:.1f}x"])
    return rows


def test_bench_scan_accel(benchmark) -> None:
    results = run_experiment(n=100_000)
    print_table(
        "Scan acceleration: off vs on",
        ["workload", "off ms", "on ms", "speedup"],
        result_rows(results),
    )
    # envelopes are deliberately loose (CI machines are noisy); the full
    # 1M-row __main__ run is where the 3x/5x acceptance numbers come from
    assert results["string_eq"]["speedup"] > 1.5
    assert results["plan_cache"]["speedup"] > 2.0

    db = build_database(100_000)
    try:
        benchmark(lambda: db.sql(STRING_EQ))
    finally:
        scanopt.configure(dict_encode=True, zone_rows=scanopt.DEFAULT_ZONE_ROWS)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="small table for CI")
    parser.add_argument("--json", metavar="PATH", help="write results as JSON")
    args = parser.parse_args()
    n = 100_000 if args.quick else N
    results = run_experiment(n)
    print_table(
        f"Scan acceleration: off vs on ({n:,} rows)",
        ["workload", "off ms", "on ms", "speedup"],
        result_rows(results),
    )
    if args.json:
        Path(args.json).write_text(json.dumps(results, indent=2) + "\n")
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
