"""T1 — the paper's Table 1, validated against the implementation.

Prints the taxonomy with the modules covering each cluster and asserts
full coverage: every cluster of the paper's Table 1 maps to at least one
importable repro module.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from common import print_table

from repro.core.taxonomy import TAXONOMY, validate_coverage


def run_experiment() -> list[list]:
    """One row per Table 1 cluster."""
    rows = []
    for cluster in TAXONOMY:
        rows.append(
            [
                cluster.layer,
                f"{cluster.area} / {cluster.sub_area}",
                len(cluster.paper_refs),
                len(cluster.modules),
            ]
        )
    return rows


def test_bench_taxonomy_coverage(benchmark) -> None:
    report = benchmark(validate_coverage)
    rows = run_experiment()
    print_table(
        "T1: Table 1 taxonomy coverage",
        ["layer", "cluster", "papers", "modules"],
        rows,
    )
    assert report.complete
    assert report.clusters_covered == len(TAXONOMY)
    benchmark.extra_info["clusters"] = report.clusters_total


if __name__ == "__main__":
    run_experiment()
    report = validate_coverage()
    print_table(
        "T1: Table 1 taxonomy coverage",
        ["layer", "cluster", "papers", "modules"],
        run_experiment(),
    )
    print(f"coverage: {report.clusters_covered}/{report.clusters_total}")
