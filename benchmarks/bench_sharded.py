"""Sharded execution: scatter-gather speedup, skew sensitivity, shard pruning.

Measures what hash/range partitioning buys on top of the morsel engine:

- aggregate speedup vs shard count: a filter + GROUP BY corpus over a
  >= 1M-row table, serial unsharded baseline vs hash-sharded
  scatter-gather on the worker *process* pool at 2 and 4 shards.  Shards
  ship to workers once per catalog epoch, so the timed steady-state
  queries send only plan fragments and receive only partial aggregates;
- skew sensitivity: the same aggregate over a table whose shard key is
  70% one value — ``hash(k)`` concentrates those rows in one straggler
  shard while ``range(id)`` splits them evenly; the gap between the two
  is the price of a bad partitioning key (``shard.skew_ratio`` reports
  it without running anything);
- shard pruning: a ``range(id)``-partitioned durable table reopened in
  mmap mode; a one-shard predicate must prune the other shards at
  schedule time (``shard.shards_pruned`` = N-1) and read at most one
  shard's bytes at the I/O level, because pruned extents are never
  sliced out of the mapping.

Results print as a table and can be dumped as ``BENCH_sharded.json``
(``--json``); ``--quick`` shrinks the table for CI.  Every sharded run
is verified against the serial unsharded result (order-insensitive:
re-clustering permutes rows; the aggregated values are exact because
``v`` is integer-valued, so float sums are order-independent).

Wall-clock speedup (and the skew latency gap) requires real cores: on a
1-core container every process-pool run degenerates to serial compute
plus dispatch, so the speedup assertion in ``main()`` is gated on
``cores >= 4`` and the JSON records the core count.  What *is*
observable on any hardware: scatter overhead (sharded wall must stay
within 1.35x of serial even with zero parallelism available), the skew
ratio, and the pruning byte counts.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

from common import print_table

from repro.engine import Database, Table
from repro.engine import parallel, scanopt
from repro.engine import shards as shardsmod
from repro.obs import get_registry
from repro.storage import layouts

ROWS = 1_048_576
SHARD_COUNTS = (2, 4)
PRUNE_ROWS = 262_144
ZONE_ROWS = 2_048

# exact-partial aggregates only (COUNT / int SUM / MIN / MAX): workers
# return one small partial per group.  A float SUM is gather-mode — the
# merge re-runs the serial kernel to keep pairwise summation order — so
# it measures shipping, not scatter-gather.
AGG_SQL = (
    "SELECT k, COUNT(*) AS c, SUM(id) AS s, MIN(v) AS lo, MAX(v) AS hi "
    "FROM t WHERE v > 0.0 GROUP BY k"
)


def _snapshot_config() -> tuple:
    cfg = shardsmod.get_config()
    return (
        cfg.shards,
        cfg.shard_by,
        cfg.shard_min_rows,
        cfg.shard_index,
        layouts.get_config().storage,
        scanopt.get_config().zone_rows,
        parallel.get_config().pool_kind,
    )


def _restore_config(saved: tuple) -> None:
    shardsmod.configure(
        shards=saved[0], shard_by=saved[1], shard_min_rows=saved[2],
        shard_index=saved[3],
    )
    layouts.configure(storage=saved[4])
    scanopt.configure(zone_rows=saved[5])
    parallel.configure(
        threads=0, morsel_rows=parallel.DEFAULT_MORSEL_ROWS, pool_kind=saved[6]
    )


def build_table(rows: int, skewed: bool = False) -> Database:
    """An in-memory db with t(k, v, id); ``v`` integer-valued (exact sums)."""
    i = np.arange(rows, dtype=np.int64)
    if skewed:
        # 70% of rows share one key: hash(k) sends them to a single shard
        k = np.where(i % 10 < 7, 0, i % 64)
    else:
        k = i % 64
    db = Database()
    db.create_table(
        "t",
        Table.from_dict(
            {
                "k": k,
                "v": ((i * 7) % 1009).astype(np.float64) - 500.0,
                "id": i,
            }
        ),
    )
    return db


def _fingerprint(table) -> tuple:
    """Order-insensitive content digest for sharded-vs-serial verification."""
    rows = sorted(
        tuple(table.column(name)[i] for name in table.column_names)
        for i in range(table.num_rows)
    )
    return (table.num_rows, tuple(rows[:100]), tuple(rows[-100:]))


def _timed(db: Database, sql: str, repeats: int = 3) -> tuple[float, object]:
    best, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = db.execute(sql)
        best = min(best, time.perf_counter() - start)
    return best, result


def bench_speedup(rows: int, shard_counts: tuple[int, ...]) -> dict:
    """Steady-state aggregate latency, serial vs scatter-gather."""
    db = build_table(rows)
    try:
        parallel.configure(threads=0)
        serial_s, result = _timed(db, AGG_SQL)
        baseline = _fingerprint(result)
        out: dict[str, dict] = {
            "serial (unsharded)": {"shards": 0, "seconds": serial_s, "speedup": 1.0}
        }
        for count in shard_counts:
            db.apply_sharding("t", count, shard_by="hash(k)")
            parallel.configure(
                threads=count, min_parallel_rows=1, pool_kind="process"
            )
            db.execute(AGG_SQL)  # warm-up: spawn the pool, ship the shards
            seconds, result = _timed(db, AGG_SQL)
            assert _fingerprint(result) == baseline, (
                f"sharded aggregate diverged at {count} shards"
            )
            out[f"{count} shards"] = {
                "shards": count,
                "seconds": seconds,
                "speedup": serial_s / seconds,
            }
        return {"rows": rows, "sql": AGG_SQL, "series": out}
    finally:
        parallel.configure(threads=0)
        db.close()


def bench_skew(rows: int) -> dict:
    """hash on a 70%-one-value key vs range on a balanced key, 4 shards."""
    db = build_table(rows, skewed=True)
    skew_gauge = get_registry().gauge("shard.skew_ratio")
    try:
        parallel.configure(threads=0)
        _, result = _timed(db, AGG_SQL)
        baseline = _fingerprint(result)
        out: dict[str, dict] = {}
        for label, spec in (
            ("hash(k), skewed key", "hash(k)"),
            ("range(id), balanced", "range(id)"),
        ):
            db.apply_sharding("t", 4, shard_by=spec)
            layout = db.shard_layout("t")
            parallel.configure(threads=4, min_parallel_rows=1, pool_kind="process")
            db.execute(AGG_SQL)  # warm-up
            seconds, result = _timed(db, AGG_SQL)
            assert _fingerprint(result) == baseline, f"diverged under {label}"
            out[label] = {
                "seconds": seconds,
                "skew_ratio": skew_gauge.value,
                "rows_max": max(
                    layout.shard_rows(s) for s in range(layout.num_shards)
                ),
            }
        hash_s = out["hash(k), skewed key"]["seconds"]
        range_s = out["range(id), balanced"]["seconds"]
        return {"rows": rows, "series": out, "skew_penalty": hash_s / range_s}
    finally:
        parallel.configure(threads=0)
        db.close()


def bench_pruning(root: Path, rows: int, zone_rows: int) -> dict:
    """One-shard predicate over a range-sharded table in mmap mode."""
    scanopt.configure(zone_rows=zone_rows)
    shardsmod.configure(shard_index=False)  # measure the scatter path itself
    i = np.arange(rows, dtype=np.int64)
    with Database(path=root) as db:
        db.create_table(
            "t",
            Table.from_dict(
                {"id": i, "v": ((i * 7) % 1009).astype(np.float64) - 500.0}
            ),
        )
        db.apply_sharding("t", 4, shard_by="range(id)")
        db.checkpoint()
    layouts.configure(storage="mmap")
    bytes_read = get_registry().counter("io.bytes_read")
    pruned = get_registry().counter("shard.shards_pruned")
    with Database(path=root) as db:
        layout = db.shard_layout("t")
        shard_bytes = 16 * max(
            layout.shard_rows(s) for s in range(layout.num_shards)
        )
        out: dict[str, dict] = {}
        for label, sql in (
            ("full scan", "SELECT SUM(v) AS s FROM t WHERE v > -1000.0"),
            (
                "one shard",
                f"SELECT SUM(v) AS s FROM t "
                f"WHERE id >= {rows // 8} AND id < {rows // 8 + rows // 16}",
            ),
        ):
            read_before, pruned_before = bytes_read.value, pruned.value
            start = time.perf_counter()
            db.execute(sql)
            seconds = time.perf_counter() - start
            out[label] = {
                "seconds": seconds,
                "bytes_read": bytes_read.value - read_before,
                "shards_pruned": pruned.value - pruned_before,
            }
    layouts.configure(storage="memory")
    return {
        "rows": rows,
        "zone_rows": zone_rows,
        "shard_bytes": shard_bytes,
        "series": out,
    }


def run_experiment(
    rows: int = ROWS,
    shard_counts: tuple[int, ...] = SHARD_COUNTS,
    prune_rows: int = PRUNE_ROWS,
    zone_rows: int = ZONE_ROWS,
) -> dict:
    """All three experiments; restores the ambient config afterwards."""
    saved = _snapshot_config()
    tmp = Path(tempfile.mkdtemp(prefix="bench_sharded_"))
    try:
        shardsmod.configure(shards=0, shard_min_rows=64, shard_index=True)
        layouts.configure(storage="memory")
        speedup = bench_speedup(rows, shard_counts)
        skew = bench_skew(rows)
        pruning = bench_pruning(tmp / "db", prune_rows, zone_rows)
        return {
            "rows": rows,
            "cores": len(os.sched_getaffinity(0)),
            "speedup": speedup,
            "skew": skew,
            "pruning": pruning,
        }
    finally:
        _restore_config(saved)
        shutil.rmtree(tmp, ignore_errors=True)


def result_rows(results: dict) -> list[list]:
    """Flatten the result dict into printable table rows."""
    rows = []
    for label, r in results["speedup"]["series"].items():
        rows.append(
            [
                f"aggregate ({label})",
                f"{r['seconds'] * 1e3:.1f}",
                f"{results['speedup']['rows']:,} rows",
                f"{r['speedup']:.2f}x",
            ]
        )
    for label, r in results["skew"]["series"].items():
        rows.append(
            [
                f"skew ({label})",
                f"{r['seconds'] * 1e3:.1f}",
                f"skew_ratio {r['skew_ratio']:.2f}, "
                f"largest shard {r['rows_max']:,} rows",
                "",
            ]
        )
    for label, r in results["pruning"]["series"].items():
        rows.append(
            [
                f"pruning ({label})",
                f"{r['seconds'] * 1e3:.1f}",
                f"{r['bytes_read']:,} B read, "
                f"{r['shards_pruned']} shards pruned",
                "",
            ]
        )
    return rows


def test_bench_sharded(benchmark) -> None:
    """CI leg: small-scale run, shape asserts, one timed scatter aggregate."""
    results = run_experiment(
        rows=65_536, shard_counts=(2, 4), prune_rows=65_536, zone_rows=512
    )
    print_table(
        "Sharded execution: scatter-gather and pruning",
        ["workload", "ms", "detail", "vs serial"],
        result_rows(results),
    )
    # shape claims only at this scale: parallel speedup needs the full run
    prune = results["pruning"]["series"]["one shard"]
    assert prune["shards_pruned"] == 3
    assert 0 < prune["bytes_read"] <= results["pruning"]["shard_bytes"]
    full = results["pruning"]["series"]["full scan"]
    assert full["bytes_read"] > prune["bytes_read"]
    assert results["skew"]["series"]["hash(k), skewed key"]["skew_ratio"] > 2.0

    saved = _snapshot_config()
    shardsmod.configure(shards=0, shard_min_rows=64)
    db = build_table(65_536)
    db.apply_sharding("t", 4, shard_by="hash(k)")
    parallel.configure(threads=4, min_parallel_rows=1, pool_kind="thread")
    db.execute(AGG_SQL)  # warm-up

    def one_scatter_aggregate() -> None:
        db.execute(AGG_SQL)

    try:
        benchmark(one_scatter_aggregate)
    finally:
        db.close()
        _restore_config(saved)


def main() -> int:
    """Entry point."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="small table for CI")
    parser.add_argument("--json", metavar="PATH", help="write results as JSON")
    args = parser.parse_args()
    if args.quick:
        results = run_experiment(
            rows=262_144, shard_counts=(2, 4), prune_rows=65_536, zone_rows=512
        )
    else:
        results = run_experiment()
    print_table(
        f"Sharded execution ({results['rows']:,} rows, process pool)",
        ["workload", "ms", "detail", "vs serial"],
        result_rows(results),
    )
    series = results["speedup"]["series"]
    top = max(series.values(), key=lambda r: r["shards"])
    overhead = top["seconds"] / series["serial (unsharded)"]["seconds"]
    if not args.quick:
        # at >= 1M rows per-query dispatch amortises: even on one core
        # the scatter path must not cost more than a third over serial
        assert overhead <= 1.35, (
            f"scatter-gather overhead too high: sharded is {overhead:.2f}x serial"
        )
    if not args.quick and results["cores"] >= 4:
        assert top["speedup"] >= 2.5, (
            f"expected >= 2.5x at {top['shards']} shards on "
            f"{results['cores']} cores, got {top['speedup']:.2f}x"
        )
    elif results["cores"] < 4:
        print(
            f"note: only {results['cores']} core(s) available — wall-clock "
            "speedup is not observable; overhead bound checked instead"
        )
    if args.json:
        Path(args.json).write_text(json.dumps(results, indent=2) + "\n")
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
