"""S28 — BlinkDB sample selection: workload coverage vs storage budget.

The BlinkDB paper's offline optimisation: given the workload's query
column sets and a storage budget, choose which stratified samples to
build.  Its headline figure plots coverage of the (weighted) workload
against the budget — coverage climbs steeply while the budget admits the
high-frequency column sets, then saturates.

Shape assertions: coverage is non-decreasing in the budget; the most
frequent QCS is admitted first; full budget reaches (near-)full coverage.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from common import print_table

from repro.sampling import WorkloadEntry, choose_samples
from repro.workloads import sales_table

WORKLOAD = [
    WorkloadEntry.make(["region"], frequency=40),
    WorkloadEntry.make(["category"], frequency=25),
    WorkloadEntry.make(["region", "category"], frequency=15),
    WorkloadEntry.make(["product_id"], frequency=5),
    WorkloadEntry.make([], frequency=15),
]


def run_experiment(n: int = 40_000, cap: int = 200):
    table = sales_table(n, seed=0)
    rows = []
    coverages = {}
    first_choice = {}
    for budget in (1_200, 3_000, 8_000, 30_000):
        catalog, report = choose_samples(table, WORKLOAD, budget_rows=budget, cap=cap)
        coverages[budget] = report.workload_coverage
        first_choice[budget] = (
            report.chosen_column_sets[0] if report.chosen_column_sets else ()
        )
        rows.append(
            [
                budget,
                report.rows_used,
                len(report.chosen_column_sets),
                f"{report.workload_coverage:.0%}",
                ", ".join("+".join(c) for c in report.chosen_column_sets) or "(uniform only)",
            ]
        )
    return coverages, first_choice, rows


def test_bench_sample_selection(benchmark) -> None:
    coverages, first_choice, rows = run_experiment(n=15_000)
    print_table(
        "S28: stratified-sample selection under a storage budget",
        ["budget rows", "rows used", "samples", "QCS coverage", "chosen column sets"],
        rows,
    )
    budgets = sorted(coverages)
    for small, large in zip(budgets[:-1], budgets[1:]):
        assert coverages[large] >= coverages[small] - 1e-9, "coverage monotone in budget"
    assert first_choice[budgets[1]] == ("region",), (
        "the most frequent QCS is admitted first"
    )
    assert coverages[budgets[-1]] > 0.9, "ample budgets cover nearly everything"

    table = sales_table(8_000, seed=1)
    benchmark(lambda: choose_samples(table, WORKLOAD, budget_rows=3_000, cap=100)[1])


if __name__ == "__main__":
    *_, rows = run_experiment()
    print_table(
        "S28: stratified-sample selection under a storage budget",
        ["budget rows", "rows used", "samples", "QCS coverage", "chosen column sets"],
        rows,
    )
