"""S16 — sampling with ordering guarantees ([12]).

Bar-chart group means with controlled gaps: the sampler draws per-group
rows only until adjacent bars separate.

Shape assertions: wide-gap charts settle with a tiny fraction of the
rows and the recovered order is correct; shrinking the gaps increases the
required samples (the paper's gap-dependence result).
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import numpy as np
from common import print_table

from repro.viz import OrderedSampler

PER_GROUP = 20_000
NUM_GROUPS = 5


def _sampler(gap: float, seed: int = 0) -> OrderedSampler:
    rng = np.random.default_rng(seed)
    groups, values = [], []
    for i in range(NUM_GROUPS):
        groups.extend([f"g{i}"] * PER_GROUP)
        values.extend(rng.normal(i * gap, 1.0, size=PER_GROUP).tolist())
    return OrderedSampler(groups, np.asarray(values), batch=20, seed=seed)


def run_experiment():
    rows = []
    samples_by_gap = {}
    for gap in (8.0, 2.0, 0.5):
        sampler = _sampler(gap)
        result = sampler.run()
        correct = result.order == sampler.true_order()
        fraction = result.total_samples / (PER_GROUP * NUM_GROUPS)
        samples_by_gap[gap] = result.total_samples
        rows.append([gap, result.total_samples, f"{100 * fraction:.2f}%", correct])
    return samples_by_gap, rows


def test_bench_ordered_sampling(benchmark) -> None:
    samples_by_gap, rows = run_experiment()
    print_table(
        "S16: samples needed for a correct bar ordering vs group-mean gap",
        ["gap", "samples drawn", "fraction of data", "order correct"],
        rows,
    )
    assert samples_by_gap[8.0] < samples_by_gap[0.5], (
        "closer groups need more samples"
    )
    assert samples_by_gap[8.0] < PER_GROUP * NUM_GROUPS * 0.05, (
        "well-separated charts settle with a tiny sample"
    )
    sampler = _sampler(8.0, seed=1)
    assert sampler.run().order == sampler.true_order()

    benchmark(lambda: _sampler(4.0, seed=2).run().total_samples)


if __name__ == "__main__":
    _, rows = run_experiment()
    print_table(
        "S16: samples needed for a correct bar ordering vs group-mean gap",
        ["gap", "samples drawn", "fraction of data", "order correct"],
        rows,
    )
