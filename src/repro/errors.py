"""Exception hierarchy for the :mod:`repro` data exploration engine.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch a single base class.  Subclasses mirror the major
subsystems: the SQL front end, the planner/executor, the catalog, and the
approximation layer.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SQLError(ReproError):
    """Base class for errors raised by the SQL front end."""


class LexerError(SQLError):
    """Raised when the SQL lexer encounters an invalid character sequence."""

    def __init__(self, message: str, position: int) -> None:
        super().__init__(f"{message} (at position {position})")
        self.position = position


class ParseError(SQLError):
    """Raised when the SQL parser cannot build a statement from the tokens."""


class BindError(SQLError):
    """Raised when a name in a query cannot be resolved against the catalog."""


class TypeMismatchError(ReproError):
    """Raised when an expression combines incompatible column types."""


class CatalogError(ReproError):
    """Raised for catalog violations (unknown/duplicate tables or columns)."""


class ExecutionError(ReproError):
    """Raised when a physical plan fails during execution."""


class ApproximationError(ReproError):
    """Raised when an approximate-query request cannot be satisfied.

    For example: asking BlinkDB-style execution for an error bound that no
    available sample can meet within the given time budget.
    """


class ResourceError(ReproError):
    """Base class for query-governor violations (time, cancellation, memory).

    The governor (:mod:`repro.resilience`) raises these at morsel and
    operator boundaries; they deliberately do **not** derive from
    :class:`ExecutionError`, so resource exhaustion is distinguishable
    from a genuinely broken plan.
    """


class QueryTimeoutError(ResourceError):
    """Raised when a query runs past its deadline (``PRAGMA timeout_ms``)."""


class QueryCancelledError(ResourceError):
    """Raised when a query's cancellation token is triggered (shell
    interrupt, explicit :meth:`~repro.resilience.CancellationToken.cancel`)."""


class MemoryBudgetError(ResourceError):
    """Raised when a query's estimated allocations exceed its memory budget."""


class WalError(ReproError):
    """Raised by the durability layer for write-ahead-log misuse (writing
    to a closed log, invalid sync policy, unusable log directory)."""


class RecoveryError(ReproError):
    """Raised when crash recovery finds *mid-log* corruption: a record
    whose CRC fails (or whose frame is malformed) with further bytes
    after it.  A torn **tail** — an incomplete or CRC-invalid final
    record, the signature of a crash during the last append — is never
    an error; recovery discards it and keeps the durable prefix."""


class LoadingError(ReproError):
    """Raised by the adaptive (raw-file) loading layer for malformed input."""


class InterfaceError(ReproError):
    """Raised by the novel-interface layer (gestures, touch, keyword)."""
