"""Graceful degradation: re-route a doomed aggregate through sampling.

When a query hits its deadline or memory budget and the degradation
policy is on (``PRAGMA degrade=1``), the governor checks whether the
plan is a *degradable aggregate* — a grouped or global COUNT/SUM/AVG
over a single base table with an optional pushed-down predicate — and,
if so, answers it from a bounded uniform sample instead of failing.
This is the BlinkDB/online-aggregation posture from the survey's
middleware layer: under resource pressure, a bounded-error answer now
beats an exact answer never.

The approximate answer is a :class:`DegradedTable`: alongside each
aggregate column ``x`` it carries ``x_lo``/``x_hi`` confidence bounds
(closed-form SRS estimators from :mod:`repro.sampling.estimators`), and
the table object itself is tagged with ``degraded=True``, the sampled
row count and the reason, so shells and clients can surface the
approximation honestly.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.engine import expressions as ex
from repro.engine.expressions import truth_mask
from repro.engine.planner import (
    AggregateNode,
    Plan,
    ProjectNode,
    RangeProbe,
    ScanNode,
)
from repro.engine.table import Table
from repro.errors import ApproximationError
from repro.obs.tracing import trace
from repro.sampling.estimators import Estimate, srs_estimate

_SUPPORTED = ("COUNT", "SUM", "AVG")


class DegradedTable(Table):
    """A result table produced by degradation rather than exact execution.

    Behaves exactly like a :class:`~repro.engine.table.Table`; the extra
    attributes describe the approximation so callers can tell (and show)
    that the answer is not exact.
    """

    degraded = True
    reason = ""
    sample_rows = 0
    total_rows = 0
    confidence = 0.95


def degradable(plan: Plan) -> bool:
    """True when the plan can be answered approximately by sampling."""
    return _analyse(plan) is not None


def _analyse(plan: Plan) -> tuple[AggregateNode, ScanNode, list[str]] | None:
    """Decompose a degradable plan; None when the shape is unsupported.

    Supported shape: ``[Project] -> Aggregate -> Scan`` where the project
    only passes columns through, every group key is a plain column
    reference, and every aggregate is a non-DISTINCT COUNT/SUM/AVG.
    HAVING, ORDER BY, LIMIT, DISTINCT aggregates and joins are rejected:
    their sampled semantics are not a drop-in for the exact answer.
    """
    node = plan.root
    output: list[str] | None = None
    if isinstance(node, ProjectNode):
        items = node.items
        if any(
            item.star or not isinstance(item.expression, ex.ColumnRef)
            for item in items
        ):
            return None
        output = [item.output_name() for item in items]
        node = node.child
    if not isinstance(node, AggregateNode):
        return None
    scan = node.child
    if not isinstance(scan, ScanNode):
        return None
    if any(not isinstance(expr, ex.ColumnRef) for expr in node.group_exprs):
        return None
    agg_names = {name for name, _ in node.aggregates}
    for name, call in node.aggregates:
        if call.distinct or call.function not in _SUPPORTED:
            return None
    if output is None:
        output = list(node.group_names) + [name for name, _ in node.aggregates]
    known = set(node.group_names) | agg_names
    if any(name not in known for name in output):
        return None
    return node, scan, output


def _probe_predicate(probe: RangeProbe) -> ex.Expression:
    """Rebuild the filter an index probe stands for, for sampled evaluation."""
    conjuncts: list[ex.Expression] = []
    if probe.low is not None:
        op = ">=" if probe.low_inclusive else ">"
        conjuncts.append(
            ex.Comparison(op, ex.ColumnRef(probe.column), ex.Literal(probe.low))
        )
    if probe.high is not None:
        op = "<=" if probe.high_inclusive else "<"
        conjuncts.append(
            ex.Comparison(op, ex.ColumnRef(probe.column), ex.Literal(probe.high))
        )
    result = conjuncts[0]
    for conj in conjuncts[1:]:
        result = ex.And(result, conj)
    return result


def degraded_answer(
    plan: Plan,
    database: Any,
    max_rows: int = 10_000,
    confidence: float = 0.95,
    seed: int = 0,
    reason: str = "",
) -> DegradedTable:
    """Answer a degradable aggregate plan from a bounded uniform sample.

    Args:
        plan: a plan for which :func:`degradable` is True.
        database: catalog resolving the scanned table.
        max_rows: sample-size budget (the whole table when smaller).
        confidence: CI level of the per-cell bounds.
        seed: RNG seed of the uniform sample (deterministic by default).
        reason: human-readable trigger, recorded on the result.

    Raises:
        ApproximationError: when the plan shape is not degradable.
    """
    analysed = _analyse(plan)
    if analysed is None:
        raise ApproximationError("plan is not a degradable aggregate")
    agg_node, scan, output = analysed

    base = database.get_table(scan.table)
    n_population = base.num_rows
    sample_size = min(n_population, max_rows)
    with trace(
        "resilience.degrade",
        table=scan.table,
        sample_rows=sample_size,
        total_rows=n_population,
        reason=reason,
    ):
        if sample_size == 0:
            rows_idx = np.empty(0, dtype=np.int64)
        else:
            rng = np.random.default_rng(seed)
            rows_idx = np.sort(
                rng.choice(n_population, size=sample_size, replace=False)
            )
        subset = base.take(rows_idx)

        predicate = scan.predicate
        if scan.probe is not None:
            probe_pred = _probe_predicate(scan.probe)
            predicate = (
                probe_pred if predicate is None else ex.And(probe_pred, predicate)
            )
        keep = (
            truth_mask(predicate, subset)
            if predicate is not None
            else np.ones(sample_size, dtype=bool)
        )

        key_columns = [expr.evaluate(subset) for expr in agg_node.group_exprs]
        arg_cache: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        for i, (_, call) in enumerate(agg_node.aggregates):
            if call.argument is not None:
                column = call.argument.evaluate(subset)
                valid = ~column.is_null_mask()
                if call.function == "COUNT":
                    values = np.zeros(sample_size, dtype=np.float64)
                else:
                    values = np.where(
                        valid, column.data.astype(np.float64, copy=False), 0.0
                    )
                arg_cache[i] = (values, valid)

        if agg_node.group_exprs:
            groups = _sample_groups(key_columns, keep)
        else:
            groups = [((), np.ones(sample_size, dtype=bool))]

        estimates: list[tuple[tuple, list[Estimate | None]]] = []
        for key, in_group in groups:
            cells: list[Estimate | None] = []
            for i, (_, call) in enumerate(agg_node.aggregates):
                cells.append(
                    _estimate_cell(
                        call.function,
                        call.argument is None,
                        arg_cache.get(i),
                        keep & in_group,
                        sample_size,
                        n_population,
                        confidence,
                    )
                )
            estimates.append((key, cells))

        rows, names = _render(agg_node, output, estimates)
        result = DegradedTable.from_rows(rows, names)
        result.reason = reason or "resource budget exhausted"
        result.sample_rows = int(sample_size)
        result.total_rows = int(n_population)
        result.confidence = confidence
        return result


def _sample_groups(
    key_columns: list, keep: np.ndarray
) -> list[tuple[tuple, np.ndarray]]:
    """Group membership masks over the sample, first-appearance order.

    Only rows satisfying the predicate define groups (like the exact
    aggregate, which groups post-WHERE rows).
    """
    order: list[tuple] = []
    masks: dict[tuple, np.ndarray] = {}
    n = len(keep)
    for row in range(n):
        if not keep[row]:
            continue
        key = tuple(column[row] for column in key_columns)
        mask = masks.get(key)
        if mask is None:
            mask = np.zeros(n, dtype=bool)
            masks[key] = mask
            order.append(key)
        mask[row] = True
    return [(key, masks[key]) for key in order]


def _estimate_cell(
    function: str,
    is_star: bool,
    arg: tuple[np.ndarray, np.ndarray] | None,
    member: np.ndarray,
    sample_size: int,
    n_population: int,
    confidence: float,
) -> Estimate | None:
    """SRS estimate of one aggregate cell from the full sample.

    COUNT and SUM are estimated via per-row indicators/contributions over
    the *entire* sample (scaled by N), so group shares and predicate
    selectivity are part of the estimate; AVG averages the qualifying
    values against an estimated group population.
    """
    if sample_size == 0:
        return None
    if function == "COUNT":
        indicator = member.astype(np.float64)
        if not is_star:
            assert arg is not None
            indicator = indicator * arg[1].astype(np.float64)
        return srs_estimate(indicator, n_population, "count", confidence)
    assert arg is not None
    values, valid = arg
    qualifying = member & valid
    if function == "SUM":
        contributions = np.where(qualifying, values, 0.0)
        return srs_estimate(contributions, n_population, "sum", confidence)
    # AVG: mean of qualifying values against the estimated group population
    picked = values[qualifying]
    if len(picked) == 0:
        return None
    share = len(picked) / sample_size
    est_population = max(len(picked), int(round(n_population * share)))
    return srs_estimate(picked, est_population, "avg", confidence)


def _render(
    agg_node: AggregateNode,
    output: list[str],
    estimates: list[tuple[tuple, list[Estimate | None]]],
) -> tuple[list[tuple], list[str]]:
    """Lay out result rows following the plan's projected column order.

    Each aggregate column ``x`` is followed by ``x_lo``/``x_hi`` bounds.
    """
    group_pos = {name: i for i, name in enumerate(agg_node.group_names)}
    agg_pos = {name: i for i, (name, _) in enumerate(agg_node.aggregates)}
    names: list[str] = []
    for name in output:
        names.append(name)
        if name in agg_pos:
            names.extend((f"{name}_lo", f"{name}_hi"))
    rows: list[tuple] = []
    for key, cells in estimates:
        row: list[Any] = []
        for name in output:
            if name in group_pos:
                row.append(key[group_pos[name]])
                continue
            cell = cells[agg_pos[name]]
            if cell is None:
                row.extend((None, None, None))
            else:
                row.extend((cell.value, cell.low, cell.high))
        rows.append(tuple(row))
    return rows, names
