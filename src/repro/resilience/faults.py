"""Deterministic fault injection for resilience testing.

Faults are configured by a spec string (``REPRO_FAULTS`` environment
variable or ``PRAGMA faults=...``) naming one or more fault points with a
firing probability and an optional numeric parameter::

    worker_crash:0.05,slow_morsel:0.1:20

=======================  ==============================================  =========
Point                    Effect                                          Parameter
=======================  ==============================================  =========
``worker_crash``         a morsel task raises :class:`InjectedFault`     —
``slow_morsel``          a morsel task sleeps before running             sleep ms
``malformed_row``        a CSV row is treated as unparseable             —
``alloc_spike``          a memory charge is inflated                     multiplier
``wal_pre_fsync``        process dies after append, before fsync         —
``wal_post_append``      process dies after append (and policy fsync)    —
``wal_torn_write``       process dies mid-append, half a record on disk  —
``crash_mid_checkpoint`` process dies between checkpoint dir and swap    —
``crash_mid_merge``      process dies after the merge marker is logged   —
=======================  ==============================================  =========

The five ``wal_*``/``crash_*`` points simulate *process death* for the
durability layer (:mod:`repro.engine.wal`): the site raises
:class:`SimulatedCrashError` after emulating what a power loss leaves on
disk (everything past the last fsync is gone; a torn write persists a
prefix of the final record).  They only ever fire inside a durable
(``Database(path=...)``) session — an in-memory database never reaches
these sites, so enabling them process-wide is safe for ordinary tests.

Whether a given site fires is decided by hashing ``(seed, point, key)``
into a uniform value and comparing against the probability — the same
run therefore injects the same faults every time, which is what makes
retry/degradation behaviour unit-testable.  Injection only happens on
the *first* attempt of a pool task (retries call the kernel directly),
so an injected ``worker_crash`` behaves like a transient fault: the
serial retry succeeds and the query's result is unchanged.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass
from typing import Any, Mapping

FAULT_POINTS = (
    "worker_crash",
    "slow_morsel",
    "malformed_row",
    "alloc_spike",
    "wal_pre_fsync",
    "wal_post_append",
    "wal_torn_write",
    "crash_mid_checkpoint",
    "crash_mid_merge",
)

#: the fault points that simulate process death for the durability layer
CRASH_POINTS = (
    "wal_pre_fsync",
    "wal_post_append",
    "wal_torn_write",
    "crash_mid_checkpoint",
    "crash_mid_merge",
)

_DEFAULT_SLOW_MS = 20.0
_DEFAULT_ALLOC_MULTIPLIER = 8.0


class InjectedFault(RuntimeError):
    """The exception an injected ``worker_crash`` raises inside a task.

    Deliberately **not** a :class:`~repro.errors.ReproError`: to the
    retry machinery it must look exactly like an unexpected worker crash.
    """


class SimulatedCrashError(RuntimeError):
    """Raised by an injected durability crash point, standing in for the
    process dying at that instant.

    Not a :class:`~repro.errors.ReproError` on purpose: nothing in the
    engine may catch and recover from it — the test harness abandons the
    database object (the "dead process") and re-opens from disk.  By the
    time it is raised the WAL has already been truncated to exactly what
    a power loss would have left durable.
    """


@dataclass(frozen=True)
class FaultSpec:
    """One configured fault point."""

    point: str
    probability: float
    param: float | None = None


def parse_faults(text: str) -> dict[str, FaultSpec]:
    """Parse a spec string into per-point :class:`FaultSpec` entries.

    Raises:
        ValueError: for unknown points, bad probabilities or malformed
            entries.  An empty/whitespace string parses to no faults.
    """
    specs: dict[str, FaultSpec] = {}
    for entry in text.split(","):
        entry = entry.strip()
        if not entry:
            continue
        parts = entry.split(":")
        if len(parts) not in (2, 3):
            raise ValueError(
                f"bad fault entry {entry!r}; expected point:probability[:param]"
            )
        point = parts[0].strip().lower()
        if point not in FAULT_POINTS:
            raise ValueError(
                f"unknown fault point {point!r}; expected one of {list(FAULT_POINTS)}"
            )
        try:
            probability = float(parts[1])
        except ValueError:
            raise ValueError(f"bad probability {parts[1]!r} in {entry!r}") from None
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability}")
        param: float | None = None
        if len(parts) == 3:
            try:
                param = float(parts[2])
            except ValueError:
                raise ValueError(f"bad parameter {parts[2]!r} in {entry!r}") from None
        specs[point] = FaultSpec(point, probability, param)
    return specs


class FaultInjector:
    """Decides, deterministically, whether a fault fires at a given site."""

    __slots__ = ("specs", "seed")

    def __init__(self, specs: Mapping[str, FaultSpec], seed: int = 0) -> None:
        self.specs = dict(specs)
        self.seed = seed

    def decide(self, point: str, key: Any) -> FaultSpec | None:
        """The spec that fires at ``(point, key)``, or None.

        The decision hashes ``(seed, point, key)`` to a uniform draw, so
        it is a pure function of the site — rerunning the same batch
        injects the same faults.
        """
        spec = self.specs.get(point)
        if spec is None or spec.probability <= 0.0:
            return None
        if spec.probability >= 1.0:
            return spec
        digest = hashlib.sha256(f"{self.seed}|{point}|{key}".encode()).digest()
        draw = int.from_bytes(digest[:8], "big") / 2**64
        return spec if draw < spec.probability else None

    def fires(self, point: str, key: Any) -> bool:
        """True when the fault at ``(point, key)`` fires (durability
        crash points and other sites that act on the decision inline)."""
        return self.decide(point, key) is not None

    # -- per-point helpers, named after their effect --------------------------------

    def maybe_crash(self, key: Any) -> None:
        """Raise :class:`InjectedFault` when ``worker_crash`` fires."""
        if self.decide("worker_crash", key) is not None:
            raise InjectedFault(f"injected worker crash at morsel {key}")

    def maybe_slow(self, key: Any) -> None:
        """Sleep for the configured duration when ``slow_morsel`` fires."""
        spec = self.decide("slow_morsel", key)
        if spec is not None:
            time.sleep((spec.param or _DEFAULT_SLOW_MS) / 1000.0)

    def malformed_row(self, key: Any) -> bool:
        """True when a loader should treat this row as malformed."""
        return self.decide("malformed_row", key) is not None

    def alloc_multiplier(self, key: Any) -> float:
        """Inflation factor for a memory charge (1.0 when not firing)."""
        spec = self.decide("alloc_spike", key)
        if spec is None:
            return 1.0
        return spec.param or _DEFAULT_ALLOC_MULTIPLIER


_cache: tuple[tuple[str, int], FaultInjector | None] | None = None


def get_injector() -> FaultInjector | None:
    """The injector for the current configuration (None when disabled).

    Rebuilt automatically when ``faults``/``fault_seed`` change; the spec
    was validated at configure time, so a stale unparsable environment
    value degrades to "no injection" rather than failing queries.
    """
    from repro.resilience.context import get_config

    global _cache
    config = get_config()
    signature = (config.faults, config.fault_seed)
    if _cache is None or _cache[0] != signature:
        try:
            specs = parse_faults(config.faults)
        except ValueError:
            specs = {}
        injector = FaultInjector(specs, config.fault_seed) if specs else None
        _cache = (signature, injector)
    return _cache[1]
