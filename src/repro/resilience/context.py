"""Per-query governance: deadlines, cancellation tokens, memory budgets.

A :class:`QueryContext` is created when a query starts (from the
process-wide :class:`ResilienceConfig`, tuned via ``PRAGMA timeout_ms``
and friends) and installed in a thread-local slot for the duration of
execution.  The executor calls :meth:`QueryContext.check` between plan
operators and the morsel pool calls it at morsel boundaries, so a
deadline or cancellation surfaces within roughly one morsel's work (see
DESIGN.md for the latency model).

Memory is governed by *estimated allocation accounting*: every operator
output is charged against the budget via :meth:`QueryContext.charge`
(cumulative intermediate bytes, a conservative over-estimate of peak
footprint), and exceeding the budget raises
:class:`~repro.errors.MemoryBudgetError` instead of letting the process
OOM.
"""

from __future__ import annotations

import os
import threading
import time

from repro.errors import MemoryBudgetError, QueryCancelledError, QueryTimeoutError


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, "") or default)
    except ValueError:
        return default


class ResilienceConfig:
    """Tunables of the query governor (one process-wide instance).

    Attributes:
        timeout_ms: per-query deadline in milliseconds; 0 means none.
        memory_budget_kb: per-query budget for estimated intermediate
            allocations, in KiB; 0 means unlimited.
        degrade: when truthy, a query that hits its deadline or memory
            budget and is a degradable aggregate returns an approximate
            answer with confidence bounds instead of failing.
        degrade_rows: row budget of the uniform sample a degraded answer
            is computed from.
        max_retries: serial retries of a morsel whose worker crashed.
        retry_backoff_s: base backoff before the second retry (doubles).
        faults: fault-injection spec, e.g. ``"worker_crash:0.05,slow_morsel:0.1:20"``
            (see :mod:`repro.resilience.faults`); empty disables injection.
        fault_seed: seed of the deterministic injection hash.
    """

    __slots__ = (
        "timeout_ms",
        "memory_budget_kb",
        "degrade",
        "degrade_rows",
        "max_retries",
        "retry_backoff_s",
        "faults",
        "fault_seed",
    )

    def __init__(self) -> None:
        self.timeout_ms = max(0, _env_int("REPRO_TIMEOUT_MS", 0))
        self.memory_budget_kb = max(0, _env_int("REPRO_MEMORY_BUDGET_KB", 0))
        self.degrade = bool(_env_int("REPRO_DEGRADE", 0))
        self.degrade_rows = max(1, _env_int("REPRO_DEGRADE_ROWS", 10_000))
        self.max_retries = max(0, _env_int("REPRO_MAX_RETRIES", 2))
        self.retry_backoff_s = 0.001
        self.faults = os.environ.get("REPRO_FAULTS", "")
        self.fault_seed = _env_int("REPRO_FAULT_SEED", 0)


_config = ResilienceConfig()


def get_config() -> ResilienceConfig:
    """The process-wide governor configuration."""
    return _config


def configure(
    timeout_ms: int | None = None,
    memory_budget_kb: int | None = None,
    degrade: int | bool | None = None,
    degrade_rows: int | None = None,
    max_retries: int | None = None,
    faults: str | None = None,
    fault_seed: int | None = None,
) -> ResilienceConfig:
    """Update the governor configuration; omitted fields keep their value.

    ``faults`` accepts a spec string (validated immediately), or any of
    ``""``/``"off"``/``"none"`` to disable injection.
    """
    if timeout_ms is not None:
        if timeout_ms < 0:
            raise ValueError("timeout_ms must be >= 0 (0 = no deadline)")
        _config.timeout_ms = timeout_ms
    if memory_budget_kb is not None:
        if memory_budget_kb < 0:
            raise ValueError("memory_budget_kb must be >= 0 (0 = unlimited)")
        _config.memory_budget_kb = memory_budget_kb
    if degrade is not None:
        _config.degrade = bool(degrade)
    if degrade_rows is not None:
        if degrade_rows < 1:
            raise ValueError("degrade_rows must be >= 1")
        _config.degrade_rows = degrade_rows
    if max_retries is not None:
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        _config.max_retries = max_retries
    if faults is not None:
        from repro.resilience.faults import parse_faults

        if faults.strip().lower() in ("off", "none"):
            faults = ""
        parse_faults(faults)  # validate eagerly; raises ValueError
        _config.faults = faults
    if fault_seed is not None:
        _config.fault_seed = fault_seed
    return _config


class CancellationToken:
    """A thread-safe one-way cancellation flag shared with the query."""

    __slots__ = ("_event",)

    def __init__(self) -> None:
        self._event = threading.Event()

    def cancel(self) -> None:
        """Request cancellation; every subsequent checkpoint raises."""
        self._event.set()

    @property
    def cancelled(self) -> bool:
        """True once :meth:`cancel` was called."""
        return self._event.is_set()


class QueryContext:
    """The governance state of one running query.

    Args:
        timeout_ms: deadline relative to construction time; None disables.
        memory_budget_bytes: allocation budget; None disables.
        token: cancellation token; one is created when omitted.
    """

    def __init__(
        self,
        timeout_ms: int | None = None,
        memory_budget_bytes: int | None = None,
        token: CancellationToken | None = None,
    ) -> None:
        self.timeout_ms = timeout_ms
        self.deadline_s = (
            time.monotonic() + timeout_ms / 1000.0 if timeout_ms else None
        )
        self.memory_budget_bytes = memory_budget_bytes or None
        self.token = token if token is not None else CancellationToken()
        self.bytes_charged = 0
        self.peak_bytes = 0
        self._charge_seq = 0

    # -- checkpoints -------------------------------------------------------------

    def cancel(self) -> None:
        """Cancel the query (checked at the next checkpoint)."""
        self.token.cancel()

    @property
    def cancelled(self) -> bool:
        """True once cancellation was requested."""
        return self.token.cancelled

    def remaining_s(self) -> float | None:
        """Seconds until the deadline (None without one; may be negative)."""
        if self.deadline_s is None:
            return None
        return self.deadline_s - time.monotonic()

    def check(self) -> None:
        """Raise if the query was cancelled or ran past its deadline.

        Called between plan operators and at morsel boundaries; the cost
        of the happy path is one Event check plus one clock read.
        """
        if self.token.cancelled:
            raise QueryCancelledError("query cancelled")
        if self.deadline_s is not None and time.monotonic() > self.deadline_s:
            raise QueryTimeoutError(
                f"query exceeded its {self.timeout_ms} ms deadline"
            )

    # -- memory accounting ---------------------------------------------------------

    def charge(self, nbytes: int, what: str = "") -> None:
        """Register an estimated allocation against the budget.

        Raises:
            MemoryBudgetError: when the cumulative estimate exceeds the
                budget.  The charge is still recorded, so diagnostics can
                report how far over the query went.
        """
        from repro.resilience.faults import get_injector

        injector = get_injector()
        if injector is not None:
            nbytes = int(nbytes * injector.alloc_multiplier(("alloc", self._charge_seq)))
        self._charge_seq += 1
        self.bytes_charged += int(nbytes)
        if self.bytes_charged > self.peak_bytes:
            self.peak_bytes = self.bytes_charged
        if (
            self.memory_budget_bytes is not None
            and self.bytes_charged > self.memory_budget_bytes
        ):
            suffix = f" (at {what})" if what else ""
            raise MemoryBudgetError(
                f"estimated allocations {self.bytes_charged} B exceed the "
                f"{self.memory_budget_bytes} B budget{suffix}"
            )

    def release(self, nbytes: int) -> None:
        """Return previously charged bytes to the budget."""
        self.bytes_charged = max(0, self.bytes_charged - int(nbytes))


def context_from_config(config: ResilienceConfig | None = None) -> QueryContext:
    """A fresh :class:`QueryContext` initialised from the configuration."""
    config = config if config is not None else _config
    return QueryContext(
        timeout_ms=config.timeout_ms or None,
        memory_budget_bytes=config.memory_budget_kb * 1024 or None,
    )


# -- the active context --------------------------------------------------------------

_active = threading.local()


def current_context() -> QueryContext | None:
    """The calling thread's active query context, if any."""
    return getattr(_active, "context", None)


class _Activation:
    """Context manager installing a query context on the calling thread."""

    __slots__ = ("_context", "_previous")

    def __init__(self, context: QueryContext) -> None:
        self._context = context
        self._previous: QueryContext | None = None

    def __enter__(self) -> QueryContext:
        self._previous = current_context()
        _active.context = self._context
        return self._context

    def __exit__(self, *exc: object) -> None:
        _active.context = self._previous


def activate(context: QueryContext) -> _Activation:
    """``with activate(ctx): ...`` governs the enclosed execution."""
    return _Activation(context)
