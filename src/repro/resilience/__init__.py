"""Query governance and fault tolerance.

The survey's middleware layer keeps exploration interactive under
resource pressure — BlinkDB bounds time by accepting bounded error,
online aggregation degrades to a running estimate instead of blocking.
This package is the substrate beneath those behaviours for our engine:

- :mod:`repro.resilience.context` — per-query deadlines, cancellation
  tokens and memory budgets, checked at operator and morsel boundaries;
- :mod:`repro.resilience.faults` — a deterministic fault-injection
  harness (worker crashes, slow morsels, malformed rows, allocation
  spikes) driven by ``REPRO_FAULTS`` / ``PRAGMA faults=...``;
- :mod:`repro.resilience.degrade` — the graceful-degradation policy:
  a doomed aggregate re-routes through a bounded uniform sample and
  returns an answer tagged with confidence bounds.

Everything reports through :mod:`repro.obs` as the ``resilience.*``
metrics family (timeouts, cancellations, degradations, retries) and
``resilience.*`` spans.

The degradation module is imported lazily (``repro.resilience.degrade``)
because it pulls in the sampling estimators; the context and fault
surfaces below are dependency-light and safe to import from the engine.
"""

from repro.resilience.context import (
    CancellationToken,
    QueryContext,
    ResilienceConfig,
    activate,
    configure,
    context_from_config,
    current_context,
    get_config,
)
from repro.resilience.faults import (
    CRASH_POINTS,
    FAULT_POINTS,
    FaultInjector,
    FaultSpec,
    InjectedFault,
    SimulatedCrashError,
    get_injector,
    parse_faults,
)

__all__ = [
    "CRASH_POINTS",
    "CancellationToken",
    "FAULT_POINTS",
    "FaultInjector",
    "FaultSpec",
    "InjectedFault",
    "QueryContext",
    "ResilienceConfig",
    "SimulatedCrashError",
    "activate",
    "configure",
    "context_from_config",
    "current_context",
    "get_config",
    "get_injector",
    "parse_faults",
]
