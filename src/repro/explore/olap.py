"""Discovery-driven exploration of OLAP cubes (Sarawagi et al. [54, 55]).

Instead of making the analyst drill into every corner of a data cube,
i3/discovery-driven exploration precomputes *surprise* indicators: each
cell's value is compared to what an additive model (grand effect + row
effect + column effect) predicts, and cells whose residuals are large —
standardised as in the papers — are flagged as **exceptions**.  Drill
paths are then ranked by the exceptions hiding beneath them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.engine.table import Table


@dataclass
class CubeCell:
    """One cell of the 2-D cube view with its surprise score."""

    row_value: Any
    column_value: Any
    actual: float
    expected: float
    surprise: float

    @property
    def is_exception(self) -> bool:
        """Flagged when the standardised residual exceeds 2.5."""
        return self.surprise > 2.5


class CubeExplorer:
    """Surprise analysis over one (row dim, column dim, measure) view.

    Args:
        table: the fact table.
        row_dim, column_dim: categorical dimensions.
        measure: numeric measure, aggregated by mean per cell.
    """

    def __init__(
        self, table: Table, row_dim: str, column_dim: str, measure: str
    ) -> None:
        self.table = table
        self.row_dim = row_dim
        self.column_dim = column_dim
        self.measure = measure
        rows = np.asarray(table.column(row_dim).to_list(), dtype=object)
        columns = np.asarray(table.column(column_dim).to_list(), dtype=object)
        values = np.asarray(table.column(measure).data, dtype=np.float64)
        self.row_values = sorted(set(rows.tolist()), key=str)
        self.column_values = sorted(set(columns.tolist()), key=str)
        r = len(self.row_values)
        c = len(self.column_values)
        self._matrix = np.full((r, c), np.nan)
        self._counts = np.zeros((r, c), dtype=np.int64)
        row_index = {v: i for i, v in enumerate(self.row_values)}
        column_index = {v: i for i, v in enumerate(self.column_values)}
        sums = np.zeros((r, c))
        for row, column, value in zip(rows, columns, values):
            i, j = row_index[row], column_index[column]
            sums[i, j] += value
            self._counts[i, j] += 1
        mask = self._counts > 0
        self._matrix[mask] = sums[mask] / self._counts[mask]

    # -- the additive model ----------------------------------------------------------

    def _fit(self) -> tuple[np.ndarray, float]:
        """Expected cell values and residual scale under the additive model.

        The scale is a robust one (scaled median absolute deviation), as in
        the exception papers: a single gross outlier must not inflate the
        yardstick it is judged against.
        """
        actual = self._matrix
        present = ~np.isnan(actual)
        grand = float(np.nanmean(actual))
        row_effect = np.nanmean(actual, axis=1) - grand
        column_effect = np.nanmean(actual, axis=0) - grand
        expected = grand + row_effect[:, None] + column_effect[None, :]
        residuals = (actual - expected)[present]
        if residuals.size:
            mad = float(np.median(np.abs(residuals - np.median(residuals))))
            scale = 1.4826 * mad  # normal-consistent MAD
        else:
            scale = 1.0
        # floor the scale at a small fraction of the data's magnitude so
        # views with near-zero residuals do not standardise noise upward
        floor = 0.01 * max(1e-9, abs(grand))
        return expected, max(scale, floor, 1e-9)

    def cells(self) -> list[CubeCell]:
        """Every populated cell with its surprise score."""
        expected, scale = self._fit()
        result = []
        for i, row_value in enumerate(self.row_values):
            for j, column_value in enumerate(self.column_values):
                actual = self._matrix[i, j]
                if np.isnan(actual):
                    continue
                surprise = abs(actual - expected[i, j]) / scale
                result.append(
                    CubeCell(
                        row_value=row_value,
                        column_value=column_value,
                        actual=float(actual),
                        expected=float(expected[i, j]),
                        surprise=float(surprise),
                    )
                )
        return result

    def exceptions(self, threshold: float = 2.5) -> list[CubeCell]:
        """Cells whose surprise exceeds the threshold, most surprising first."""
        flagged = [cell for cell in self.cells() if cell.surprise > threshold]
        flagged.sort(key=lambda cell: -cell.surprise)
        return flagged

    def drill_path_scores(self) -> dict[Any, float]:
        """Rank row-dimension values by the total surprise beneath them —
        the "where should I drill next?" indicator of the papers."""
        scores: dict[Any, float] = {value: 0.0 for value in self.row_values}
        for cell in self.cells():
            scores[cell.row_value] += max(0.0, cell.surprise - 1.0)
        return scores


def best_views_by_exceptions(
    table: Table,
    dimensions: Sequence[str],
    measure: str,
    top_k: int = 3,
) -> list[tuple[str, str, float]]:
    """Rank all (row dim, column dim) cube views by their exception mass.

    The discovery-driven entry point: which 2-D views of the cube contain
    the most surprising structure?
    """
    ranked = []
    for i, row_dim in enumerate(dimensions):
        for column_dim in dimensions[i + 1 :]:
            explorer = CubeExplorer(table, row_dim, column_dim, measure)
            mass = sum(cell.surprise for cell in explorer.cells() if cell.surprise > 1.0)
            ranked.append((row_dim, column_dim, float(mass)))
    ranked.sort(key=lambda item: -item[2])
    return ranked[:top_k]
