"""Query-result diversification ([65], DivIDE [41]).

Returning the k *most relevant* rows often returns k near-duplicates;
exploration benefits from results that are relevant **and** spread out.
Implemented:

- :func:`mmr_diversify` — Maximal Marginal Relevance greedy selection:
  each pick maximises ``λ·relevance − (1−λ)·max similarity to picked``.
- :func:`swap_diversify` — the classic swap heuristic: start from the
  top-k by relevance, then swap in far-away candidates while the
  diversity objective improves.
- :func:`diversity_score` — the standard max-sum-of-distances objective
  used to compare methods in the S13 benchmark.
"""

from __future__ import annotations

import numpy as np


def _pairwise_distances(points: np.ndarray) -> np.ndarray:
    diff = points[:, None, :] - points[None, :, :]
    return np.sqrt(np.sum(diff**2, axis=-1))


def diversity_score(points: np.ndarray, selected: np.ndarray) -> float:
    """Sum of pairwise distances among the selected points."""
    chosen = points[selected]
    if len(chosen) < 2:
        return 0.0
    distances = _pairwise_distances(chosen)
    return float(distances[np.triu_indices(len(chosen), k=1)].sum())


def relevance_score(relevance: np.ndarray, selected: np.ndarray) -> float:
    """Sum of relevance over the selected points."""
    return float(relevance[selected].sum())


def mmr_diversify(
    points: np.ndarray,
    relevance: np.ndarray,
    k: int,
    trade_off: float = 0.5,
) -> np.ndarray:
    """Greedy MMR selection of ``k`` indices.

    Runs in O(k·n·d) time and O(n) extra space: the max-similarity-to-
    selected penalty is maintained incrementally, so no n×n distance
    matrix is ever materialised (exploration result sets can be large).

    Args:
        points: (n, d) item coordinates (for the similarity term).
        relevance: per-item relevance, higher is better.
        k: items to select.
        trade_off: λ in [0, 1]; 1 = pure relevance, 0 = pure diversity.

    Returns:
        Selected indices in pick order.
    """
    points = np.atleast_2d(np.asarray(points, dtype=np.float64))
    relevance = np.asarray(relevance, dtype=np.float64)
    n = len(points)
    k = min(k, n)
    if k == 0:
        return np.empty(0, dtype=np.int64)
    # normalise both signals to [0, 1] so λ is meaningful; the similarity
    # scale is the bounding-box diagonal (an upper bound on any distance)
    rel = relevance - relevance.min()
    if rel.max() > 0:
        rel = rel / rel.max()
    span = points.max(axis=0) - points.min(axis=0)
    diagonal = float(np.sqrt(np.sum(span**2)))
    scale = diagonal if diagonal > 0 else 1.0

    selected = [int(np.argmax(rel))]
    taken = np.zeros(n, dtype=bool)
    taken[selected[0]] = True
    # max similarity of each candidate to the selected set, updated per pick
    max_similarity = 1.0 - np.sqrt(
        np.sum((points - points[selected[0]]) ** 2, axis=1)
    ) / scale
    while len(selected) < k:
        value = trade_off * rel - (1.0 - trade_off) * max_similarity
        value[taken] = -np.inf
        best_index = int(np.argmax(value))
        selected.append(best_index)
        taken[best_index] = True
        similarity = 1.0 - np.sqrt(
            np.sum((points - points[best_index]) ** 2, axis=1)
        ) / scale
        max_similarity = np.maximum(max_similarity, similarity)
    return np.asarray(selected, dtype=np.int64)


def swap_diversify(
    points: np.ndarray,
    relevance: np.ndarray,
    k: int,
    min_relevance_fraction: float = 0.5,
    max_swaps: int = 200,
) -> np.ndarray:
    """Swap-based diversification.

    Starts from the top-k most relevant items and greedily swaps in
    outside candidates that raise the diversity objective, never letting
    total relevance drop below ``min_relevance_fraction`` of the initial
    top-k relevance.
    """
    points = np.atleast_2d(np.asarray(points, dtype=np.float64))
    relevance = np.asarray(relevance, dtype=np.float64)
    n = len(points)
    k = min(k, n)
    if k == 0:
        return np.empty(0, dtype=np.int64)
    order = np.argsort(-relevance, kind="stable")
    selected = list(order[:k])
    floor = relevance[selected].sum() * min_relevance_fraction
    candidates = list(order[k:])
    swaps = 0
    improved = True
    while improved and swaps < max_swaps:
        improved = False
        current_score = diversity_score(points, np.asarray(selected))
        for candidate in candidates:
            for position, incumbent in enumerate(selected):
                trial = list(selected)
                trial[position] = candidate
                trial_arr = np.asarray(trial)
                if relevance[trial_arr].sum() < floor:
                    continue
                trial_score = diversity_score(points, trial_arr)
                if trial_score > current_score:
                    selected = trial
                    candidates[candidates.index(candidate)] = incumbent
                    current_score = trial_score
                    swaps += 1
                    improved = True
                    break
            if improved:
                break
    return np.asarray(selected, dtype=np.int64)


def topk_relevance(relevance: np.ndarray, k: int) -> np.ndarray:
    """The no-diversification baseline: top-k by relevance alone."""
    relevance = np.asarray(relevance, dtype=np.float64)
    return np.argsort(-relevance, kind="stable")[: min(k, len(relevance))]


def cached_diversify(
    points: np.ndarray,
    relevance: np.ndarray,
    cached: np.ndarray,
    k: int,
    trade_off: float = 0.5,
    fetch_penalty: float = 0.3,
) -> np.ndarray:
    """DivIDE-style diversification aware of the result cache ([41]).

    Diversifying a result set is expensive when the diverse candidates are
    *not* in the cache: each fresh item costs a fetch.  DivIDE's insight is
    to treat that cost as part of the objective — prefer cached items when
    they buy (almost) the same relevance/diversity, and pay the fetch only
    when a fresh item is clearly better.

    Args:
        points: (n, d) item coordinates.
        relevance: per-item relevance.
        cached: boolean mask, True where the item is already cached.
        k: items to select.
        trade_off: λ of the underlying MMR objective.
        fetch_penalty: score deduction for selecting an uncached item;
            0 recovers plain MMR, large values force cache-only answers.

    Returns:
        Selected indices in pick order.
    """
    points = np.atleast_2d(np.asarray(points, dtype=np.float64))
    relevance = np.asarray(relevance, dtype=np.float64)
    cached = np.asarray(cached, dtype=bool)
    n = len(points)
    k = min(k, n)
    if k == 0:
        return np.empty(0, dtype=np.int64)
    rel = relevance - relevance.min()
    if rel.max() > 0:
        rel = rel / rel.max()
    span = points.max(axis=0) - points.min(axis=0)
    scale = float(np.sqrt(np.sum(span**2))) or 1.0
    penalty = np.where(cached, 0.0, fetch_penalty)

    first_scores = trade_off * rel - penalty
    selected = [int(np.argmax(first_scores))]
    taken = np.zeros(n, dtype=bool)
    taken[selected[0]] = True
    max_similarity = 1.0 - np.sqrt(
        np.sum((points - points[selected[0]]) ** 2, axis=1)
    ) / scale
    while len(selected) < k:
        value = trade_off * rel - (1.0 - trade_off) * max_similarity - penalty
        value[taken] = -np.inf
        best = int(np.argmax(value))
        selected.append(best)
        taken[best] = True
        similarity = 1.0 - np.sqrt(
            np.sum((points - points[best]) ** 2, axis=1)
        ) / scale
        max_similarity = np.maximum(max_similarity, similarity)
    return np.asarray(selected, dtype=np.int64)
