"""Data-space segmentation ("Meet Charles", [57]).

Charles proposes *segmentations* of a column — partitions of its value
range into contiguous segments that are internally homogeneous — as
starting points for exploration ("your sensor readings split naturally
into these four regimes").  The classical optimal 1-D segmentation
criterion is minimum within-segment variance (Fisher/Jenks natural
breaks), solved exactly here by dynamic programming over a quantised
value grid.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class Segmentation:
    """One proposed segmentation of a column."""

    boundaries: list[float]  # k+1 edges, ascending
    counts: list[int]
    means: list[float]
    within_variance: float

    @property
    def num_segments(self) -> int:
        """Number of segments."""
        return len(self.counts)

    def describe(self) -> list[str]:
        """Human-readable segment summaries."""
        return [
            f"[{self.boundaries[i]:g}, {self.boundaries[i + 1]:g}): "
            f"{self.counts[i]} rows, mean {self.means[i]:g}"
            for i in range(self.num_segments)
        ]


def segment_column(
    values: np.ndarray,
    num_segments: int,
    grid: int = 256,
) -> Segmentation:
    """Optimal (Jenks/Fisher) segmentation of a numeric column.

    Args:
        values: column payload.
        num_segments: k, segments wanted.
        grid: quantisation resolution the DP runs on (keeps the DP
            O(grid² · k) regardless of data size).

    Returns:
        The within-variance-minimising segmentation.
    """
    values = np.asarray(values, dtype=np.float64)
    if len(values) == 0:
        raise ValueError("cannot segment an empty column")
    if num_segments < 1:
        raise ValueError("num_segments must be at least 1")
    lo, hi = float(values.min()), float(values.max())
    if hi == lo:
        return Segmentation([lo, lo + 1.0], [len(values)], [lo], 0.0)
    counts, edges = np.histogram(values, bins=grid, range=(lo, hi))
    centers = (edges[:-1] + edges[1:]) / 2.0

    # prefix sums over the histogram for O(1) segment statistics
    w = counts.astype(np.float64)
    wx = w * centers
    wxx = w * centers**2
    cum_w = np.concatenate([[0.0], np.cumsum(w)])
    cum_wx = np.concatenate([[0.0], np.cumsum(wx)])
    cum_wxx = np.concatenate([[0.0], np.cumsum(wxx)])

    def segment_cost(i: int, j: int) -> float:
        """Within-variance (sum of squared deviations) of cells [i, j)."""
        weight = cum_w[j] - cum_w[i]
        if weight <= 0:
            return 0.0
        total = cum_wx[j] - cum_wx[i]
        total_sq = cum_wxx[j] - cum_wxx[i]
        return float(total_sq - total * total / weight)

    k = min(num_segments, grid)
    infinity = float("inf")
    # dp[s][j] = best cost splitting cells [0, j) into s segments
    dp = np.full((k + 1, grid + 1), infinity)
    back = np.zeros((k + 1, grid + 1), dtype=np.int64)
    dp[0][0] = 0.0
    for s in range(1, k + 1):
        for j in range(s, grid + 1):
            best = infinity
            best_i = s - 1
            for i in range(s - 1, j):
                if dp[s - 1][i] == infinity:
                    continue
                cost = dp[s - 1][i] + segment_cost(i, j)
                if cost < best:
                    best = cost
                    best_i = i
            dp[s][j] = best
            back[s][j] = best_i

    # reconstruct boundaries
    cuts = [grid]
    j = grid
    for s in range(k, 0, -1):
        j = int(back[s][j])
        cuts.append(j)
    cuts.reverse()

    boundaries = [float(edges[c]) for c in cuts]
    boundaries[-1] = hi
    segment_counts: list[int] = []
    means: list[float] = []
    for a, b in zip(cuts[:-1], cuts[1:]):
        weight = cum_w[b] - cum_w[a]
        segment_counts.append(int(weight))
        means.append(float((cum_wx[b] - cum_wx[a]) / weight) if weight else 0.0)
    return Segmentation(
        boundaries=boundaries,
        counts=segment_counts,
        means=means,
        within_variance=float(dp[k][grid]),
    )


def suggest_segmentations(
    values: np.ndarray,
    max_segments: int = 6,
    grid: int = 256,
) -> list[Segmentation]:
    """Segmentations for k = 2..max_segments, best (elbow) first.

    Charles proposes several candidate views; ordering here follows the
    marginal-gain elbow: segmentations whose extra segment buys the
    largest variance reduction rank first.
    """
    candidates = [
        segment_column(values, k, grid=grid) for k in range(2, max_segments + 1)
    ]
    gains = []
    previous = segment_column(values, 1, grid=grid).within_variance
    for candidate in candidates:
        gains.append(previous - candidate.within_variance)
        previous = candidate.within_variance
    order = np.argsort(-np.asarray(gains), kind="stable")
    return [candidates[i] for i in order]
