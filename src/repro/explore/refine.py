"""User-driven refinement of imprecise queries ([52]).

An analyst often knows *roughly* what they want ("magnitude around 5-ish,
depth shallow-ish, about a hundred results") but not exact predicate
constants.  The refiner takes an imprecise conjunctive range query and
adjusts the ranges — uniformly scaling them around their centres — until
the result cardinality lands in the user's target band, and can also
expand minimally to cover must-include example tuples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.engine.table import Table

#: An imprecise predicate: column -> (low, high) initial guess.
Ranges = dict[str, tuple[float, float]]


@dataclass
class RefinementResult:
    """Outcome of a refinement run."""

    ranges: Ranges
    cardinality: int
    scale: float
    iterations: int

    def to_sql(self) -> str:
        """The refined predicate as SQL text."""
        parts = [
            f"{column} BETWEEN {low:g} AND {high:g}"
            for column, (low, high) in sorted(self.ranges.items())
        ]
        return " AND ".join(parts)


class ImpreciseQueryRefiner:
    """Refines imprecise range predicates against a table.

    Args:
        table: the data.
    """

    def __init__(self, table: Table) -> None:
        self.table = table

    def _columns_matrix(self, columns: Sequence[str]) -> np.ndarray:
        return np.column_stack(
            [np.asarray(self.table.column(c).data, dtype=np.float64) for c in columns]
        )

    def _cardinality(self, matrix: np.ndarray, ranges: Sequence[tuple[float, float]]) -> int:
        mask = np.ones(len(matrix), dtype=bool)
        for i, (low, high) in enumerate(ranges):
            mask &= (matrix[:, i] >= low) & (matrix[:, i] <= high)
        return int(mask.sum())

    @staticmethod
    def _scaled(base: Ranges, scale: float) -> list[tuple[float, float]]:
        result = []
        for low, high in base.values():
            center = (low + high) / 2.0
            half = (high - low) / 2.0 * scale
            result.append((center - half, center + half))
        return result

    def refine_to_cardinality(
        self,
        ranges: Mapping[str, tuple[float, float]],
        target: tuple[int, int],
        max_iterations: int = 40,
    ) -> RefinementResult:
        """Scale the ranges so the result size falls inside ``target``.

        Uses bisection on a single scale factor (the paper's
        one-dimensional refinement mode).  If even a 1000x expansion or a
        near-zero contraction cannot reach the band, the closest endpoint
        is returned.
        """
        base: Ranges = {c: (float(lo), float(hi)) for c, (lo, hi) in ranges.items()}
        columns = list(base)
        matrix = self._columns_matrix(columns)
        lo_target, hi_target = target
        if lo_target > hi_target:
            raise ValueError("target band is empty")

        def cardinality_at(scale: float) -> int:
            return self._cardinality(matrix, self._scaled(base, scale))

        scale_lo, scale_hi = 1e-3, 1.0
        # grow the upper bracket until it overshoots the band (or caps out)
        while cardinality_at(scale_hi) < lo_target and scale_hi < 1000.0:
            scale_hi *= 2.0
        iterations = 0
        best_scale = scale_hi
        for _ in range(max_iterations):
            iterations += 1
            mid = (scale_lo + scale_hi) / 2.0
            cardinality = cardinality_at(mid)
            if lo_target <= cardinality <= hi_target:
                best_scale = mid
                break
            if cardinality < lo_target:
                scale_lo = mid
            else:
                scale_hi = mid
            best_scale = mid
        final_ranges = dict(zip(columns, self._scaled(base, best_scale)))
        return RefinementResult(
            ranges=final_ranges,
            cardinality=self._cardinality(matrix, list(final_ranges.values())),
            scale=best_scale,
            iterations=iterations,
        )

    def expand_to_include(
        self,
        ranges: Mapping[str, tuple[float, float]],
        required_rows: Sequence[int],
    ) -> RefinementResult:
        """Minimally expand the ranges so the required rows qualify."""
        base: Ranges = {c: (float(lo), float(hi)) for c, (lo, hi) in ranges.items()}
        columns = list(base)
        matrix = self._columns_matrix(columns)
        expanded: Ranges = {}
        for i, column in enumerate(columns):
            low, high = base[column]
            needed = matrix[np.asarray(required_rows, dtype=np.int64), i]
            expanded[column] = (min(low, float(needed.min())), max(high, float(needed.max())))
        return RefinementResult(
            ranges=expanded,
            cardinality=self._cardinality(matrix, list(expanded.values())),
            scale=1.0,
            iterations=1,
        )
