"""Interactive SQL query suggestion from query logs ([21]).

SnipSuggest-style session-based recommendation: past sessions are mined
for *query fragments* (tables, predicate columns, grouping columns,
aggregates); given the live session's fragments so far, the system ranks
candidate next fragments (or whole past queries) by smoothed conditional
probability.  The S19 benchmark measures hit-rate@k of predicting the
analyst's actual next query on held-out synthetic sessions.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Sequence

from repro.engine.sql.parser import parse
from repro.errors import SQLError


def query_fragments(sql: str) -> frozenset[str]:
    """Decompose a query into its characteristic fragments.

    Fragments: ``table:X``, ``where:col``, ``group:col``, ``agg:F(col)``,
    ``select:col``.  Unparseable queries yield an empty set.
    """
    try:
        statement = parse(sql)
    except SQLError:
        return frozenset()
    fragments: set[str] = {f"table:{statement.table}"}
    for item in statement.items:
        if item.aggregate is not None:
            arg = (
                item.aggregate.argument.to_sql()
                if item.aggregate.argument is not None
                else "*"
            )
            fragments.add(f"agg:{item.aggregate.function}({arg})")
        elif item.expression is not None:
            for column in item.expression.referenced_columns():
                fragments.add(f"select:{column}")
    if statement.where is not None:
        for column in statement.where.referenced_columns():
            fragments.add(f"where:{column}")
    for expr in statement.group_by:
        for column in expr.referenced_columns():
            fragments.add(f"group:{column}")
    return frozenset(fragments)


@dataclass
class Suggestion:
    """One ranked suggestion."""

    query: str
    score: float


class QuerySuggester:
    """Learns from logged sessions; suggests likely next queries.

    Args:
        smoothing: additive smoothing for fragment co-occurrence.
    """

    def __init__(self, smoothing: float = 0.1) -> None:
        self.smoothing = smoothing
        # fragment -> Counter of next-query texts
        self._next_query: dict[str, Counter] = defaultdict(Counter)
        self._query_popularity: Counter = Counter()
        self.sessions_observed = 0

    def observe_session(self, queries: Sequence[str]) -> None:
        """Train on one completed session (ordered query texts)."""
        for i, query in enumerate(queries):
            self._query_popularity[query] += 1
            if i == 0:
                continue
            previous_fragments = query_fragments(queries[i - 1])
            for fragment in previous_fragments:
                self._next_query[fragment][query] += 1
        self.sessions_observed += 1

    def suggest(self, session_so_far: Sequence[str], k: int = 3) -> list[Suggestion]:
        """Rank likely next queries given the live session.

        Votes from the current query's fragments are combined; cold-start
        sessions fall back to global query popularity.
        """
        votes: Counter = Counter()
        if session_so_far:
            fragments = query_fragments(session_so_far[-1])
            for fragment in fragments:
                for query, count in self._next_query.get(fragment, {}).items():
                    votes[query] += count
        if not votes:
            votes = Counter(self._query_popularity)
        seen = set(session_so_far)
        total = sum(votes.values()) + self.smoothing * max(1, len(votes))
        ranked = [
            Suggestion(query, (count + self.smoothing) / total)
            for query, count in votes.items()
            if query not in seen
        ]
        ranked.sort(key=lambda s: (-s.score, s.query))
        return ranked[:k]

    def hit_rate(
        self, sessions: Sequence[Sequence[str]], k: int = 3
    ) -> float:
        """Fraction of held-out transitions whose true next query is in
        the top-k suggestions."""
        hits = 0
        total = 0
        for session in sessions:
            for i in range(1, len(session)):
                suggestions = self.suggest(session[:i], k=k)
                if any(s.query == session[i] for s in suggestions):
                    hits += 1
                total += 1
        return hits / total if total else 0.0
