"""YmalDB-style result-driven recommendations ("You May Also Like", [20]).

After a query, the system inspects the result set for *interesting facet
values*: attribute values significantly over-represented in the result
relative to the whole database.  Those values are then used to recommend
additional tuples (sharing the interesting facets but outside the
original result) — steering the user toward related data they did not
ask for.

Interestingness of value ``v`` of attribute ``A`` is the relevance ratio
``P(v | result) / P(v | database)``, the measure used by YmalDB.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.engine.expressions import Expression, truth_mask
from repro.engine.table import Table


@dataclass
class InterestingFacet:
    """One over-represented attribute value."""

    attribute: str
    value: Any
    relevance_ratio: float
    support_in_result: int


class FacetRecommender:
    """Finds interesting facets of a query result and recommends tuples.

    Args:
        table: the full table.
        facet_columns: candidate categorical columns; defaults to every
            low-cardinality non-numeric column.
        max_cardinality: cardinality cutoff for automatic facet columns.
    """

    def __init__(
        self,
        table: Table,
        facet_columns: Sequence[str] | None = None,
        max_cardinality: int = 50,
    ) -> None:
        self.table = table
        if facet_columns is None:
            facet_columns = [
                name
                for name in table.column_names
                if not table.column(name).dtype.is_numeric
                and table.column(name).distinct_count() <= max_cardinality
            ]
        self.facet_columns = list(facet_columns)

    def interesting_facets(
        self,
        predicate: Expression,
        min_ratio: float = 1.5,
        min_support: int = 2,
    ) -> list[InterestingFacet]:
        """Facet values over-represented in the predicate's result.

        Args:
            predicate: the user's query.
            min_ratio: minimum relevance ratio to report.
            min_support: minimum occurrences inside the result.
        """
        mask = truth_mask(predicate, self.table)
        result_size = int(mask.sum())
        if result_size == 0:
            return []
        n = self.table.num_rows
        facets: list[InterestingFacet] = []
        for attribute in self.facet_columns:
            values = np.asarray(self.table.column(attribute).to_list(), dtype=object)
            in_result = values[mask]
            for value in set(in_result.tolist()):
                support = int(np.sum(in_result == value))
                if support < min_support:
                    continue
                p_result = support / result_size
                p_database = float(np.sum(values == value)) / n
                if p_database == 0:
                    continue
                ratio = p_result / p_database
                if ratio >= min_ratio:
                    facets.append(
                        InterestingFacet(attribute, value, float(ratio), support)
                    )
        facets.sort(key=lambda f: -f.relevance_ratio)
        return facets

    def recommend_tuples(
        self,
        predicate: Expression,
        k: int = 10,
        min_ratio: float = 1.5,
    ) -> Table:
        """Rows *outside* the result that share its interesting facets.

        Rows are scored by the summed relevance ratios of the interesting
        facet values they carry; the top-k are returned.
        """
        facets = self.interesting_facets(predicate, min_ratio=min_ratio)
        mask = truth_mask(predicate, self.table)
        scores = np.zeros(self.table.num_rows)
        for facet in facets:
            values = np.asarray(
                self.table.column(facet.attribute).to_list(), dtype=object
            )
            scores += np.where(values == facet.value, facet.relevance_ratio, 0.0)
        scores[mask] = -np.inf  # only recommend rows the user has not seen
        order = np.argsort(-scores, kind="stable")
        chosen = [int(i) for i in order[:k] if np.isfinite(scores[i]) and scores[i] > 0]
        if not chosen:
            return self.table.slice(0, 0)
        return self.table.take(np.asarray(chosen, dtype=np.int64))
