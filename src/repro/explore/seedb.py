"""SeeDB: deviation-based visualization recommendation ([49]).

Given a *target* subset of a table (e.g. ``WHERE region = 'north'``) the
system searches all (dimension, measure, aggregate) views for the ones
whose target distribution deviates most from the reference (the rest of
the data) — those are the "interesting" bar charts to show first.

Both of the paper's optimisation families are implemented:

- **shared scans** — all candidate views over the same dimension are
  computed from a single grouping pass;
- **confidence-interval pruning** — the data is consumed in phases, each
  view keeps a running utility estimate with a Hoeffding-style interval,
  and views whose upper bound falls below the current top-k's lower bound
  are dropped without reading the remaining phases.

The S9 benchmark reproduces the headline result: pruning cuts the views
fully evaluated by a large factor while preserving the true top-k.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from repro.engine.expressions import Expression, truth_mask
from repro.engine.table import Table

AGGREGATES = ("avg", "sum", "count")


@dataclass(frozen=True)
class ViewSpec:
    """One candidate view: GROUP BY dimension, aggregate(measure)."""

    dimension: str
    measure: str
    aggregate: str

    def describe(self) -> str:
        """Human-readable label."""
        return f"{self.aggregate}({self.measure}) GROUP BY {self.dimension}"


@dataclass
class ViewRecommendation:
    """A ranked view with its final utility."""

    spec: ViewSpec
    utility: float
    target_distribution: dict[Any, float] = field(default_factory=dict)
    reference_distribution: dict[Any, float] = field(default_factory=dict)


def _aggregate_by_group(
    keys: np.ndarray, values: np.ndarray, aggregate: str
) -> dict[Any, float]:
    result: dict[Any, float] = {}
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    sorted_values = values[order]
    boundaries = np.flatnonzero(sorted_keys[1:] != sorted_keys[:-1]) + 1
    starts = np.concatenate([[0], boundaries])
    ends = np.concatenate([boundaries, [len(sorted_keys)]])
    for start, end in zip(starts, ends):
        if start >= end:
            continue
        key = sorted_keys[start]
        chunk = sorted_values[start:end]
        if aggregate == "avg":
            result[key] = float(chunk.mean())
        elif aggregate == "sum":
            result[key] = float(chunk.sum())
        else:  # count
            result[key] = float(end - start)
    return result


def _normalise(distribution: dict[Any, float], keys: Sequence[Any]) -> np.ndarray:
    values = np.asarray([max(0.0, distribution.get(k, 0.0)) for k in keys])
    total = values.sum()
    if total <= 0:
        return np.full(len(keys), 1.0 / max(1, len(keys)))
    return values / total


def kl_divergence(p: np.ndarray, q: np.ndarray, epsilon: float = 1e-9) -> float:
    """KL(p || q) with epsilon smoothing — SeeDB's default utility."""
    p = np.clip(p, epsilon, None)
    q = np.clip(q, epsilon, None)
    p = p / p.sum()
    q = q / q.sum()
    return float(np.sum(p * np.log(p / q)))


class SeeDB:
    """The view recommender.

    Args:
        table: the data.
        dimensions: candidate GROUP BY columns (categorical).
        measures: candidate aggregation columns (numeric).
        aggregates: aggregate functions considered.
    """

    def __init__(
        self,
        table: Table,
        dimensions: Sequence[str],
        measures: Sequence[str],
        aggregates: Sequence[str] = AGGREGATES,
    ) -> None:
        self.table = table
        self.dimensions = list(dimensions)
        self.measures = list(measures)
        self.aggregates = list(aggregates)
        self.views_evaluated_fully = 0
        self.views_pruned = 0
        self.phases_executed = 0

    def candidate_views(self) -> list[ViewSpec]:
        """The full candidate space."""
        return [
            ViewSpec(dimension, measure, aggregate)
            for dimension in self.dimensions
            for measure in self.measures
            for aggregate in self.aggregates
        ]

    # -- exact evaluation (shared scans, no pruning) --------------------------------------

    def _view_utility(
        self,
        spec: ViewSpec,
        target_rows: np.ndarray,
        reference_rows: np.ndarray,
    ) -> tuple[float, dict[Any, float], dict[Any, float]]:
        keys = np.asarray(self.table.column(spec.dimension).to_list(), dtype=object)
        values = np.asarray(self.table.column(spec.measure).data, dtype=np.float64)
        target = _aggregate_by_group(keys[target_rows], values[target_rows], spec.aggregate)
        reference = _aggregate_by_group(
            keys[reference_rows], values[reference_rows], spec.aggregate
        )
        all_keys = sorted(set(target) | set(reference), key=str)
        utility = kl_divergence(
            _normalise(target, all_keys), _normalise(reference, all_keys)
        )
        return utility, target, reference

    def recommend(
        self,
        target_predicate: Expression,
        k: int = 5,
        prune: bool = True,
        num_phases: int = 10,
        confidence: float = 0.95,
    ) -> list[ViewRecommendation]:
        """Top-k most deviating views for the target subset.

        Args:
            target_predicate: defines the target rows; the reference is
                the complement.
            k: views returned.
            prune: enable confidence-interval pruning.
            num_phases: data partitions used by the pruning scheme.
            confidence: pruning interval confidence.
        """
        mask = truth_mask(target_predicate, self.table)
        target_rows = np.flatnonzero(mask)
        reference_rows = np.flatnonzero(~mask)
        if len(target_rows) == 0 or len(reference_rows) == 0:
            raise ValueError("target predicate must split the table non-trivially")
        if not prune:
            return self._recommend_exact(target_rows, reference_rows, k)
        return self._recommend_pruned(
            target_rows, reference_rows, k, num_phases, confidence
        )

    def _recommend_exact(
        self, target_rows: np.ndarray, reference_rows: np.ndarray, k: int
    ) -> list[ViewRecommendation]:
        recommendations = []
        for spec in self.candidate_views():
            utility, target, reference = self._view_utility(
                spec, target_rows, reference_rows
            )
            self.views_evaluated_fully += 1
            recommendations.append(
                ViewRecommendation(spec, utility, target, reference)
            )
        recommendations.sort(key=lambda r: -r.utility)
        return recommendations[:k]

    # -- phased evaluation with pruning ---------------------------------------------------

    def _recommend_pruned(
        self,
        target_rows: np.ndarray,
        reference_rows: np.ndarray,
        k: int,
        num_phases: int,
        confidence: float,
    ) -> list[ViewRecommendation]:
        rng = np.random.default_rng(0)
        target_perm = rng.permutation(target_rows)
        reference_perm = rng.permutation(reference_rows)
        target_phases = np.array_split(target_perm, num_phases)
        reference_phases = np.array_split(reference_perm, num_phases)

        alive = self.candidate_views()
        utilities: dict[ViewSpec, list[float]] = {spec: [] for spec in alive}
        delta = 1.0 - confidence
        seen_target = np.empty(0, dtype=np.int64)
        seen_reference = np.empty(0, dtype=np.int64)

        for phase in range(num_phases):
            self.phases_executed += 1
            seen_target = np.concatenate([seen_target, target_phases[phase]])
            seen_reference = np.concatenate([seen_reference, reference_phases[phase]])
            for spec in alive:
                utility, _, _ = self._view_utility(spec, seen_target, seen_reference)
                utilities[spec].append(utility)
            if phase < 1 or len(alive) <= k:
                continue
            # Hoeffding-style running interval on the utility estimates
            m = phase + 1
            epsilon = math.sqrt(math.log(2.0 / delta) / (2.0 * m))
            bounds = {
                spec: (history[-1] - epsilon, history[-1] + epsilon)
                for spec, history in utilities.items()
                if spec in set(alive)
            }
            lower_topk = sorted((lo for lo, _ in bounds.values()), reverse=True)[k - 1]
            survivors = [spec for spec in alive if bounds[spec][1] >= lower_topk]
            self.views_pruned += len(alive) - len(survivors)
            alive = survivors

        self.views_evaluated_fully += len(alive)
        final = []
        for spec in alive:
            utility, target, reference = self._view_utility(
                spec, target_rows, reference_rows
            )
            final.append(ViewRecommendation(spec, utility, target, reference))
        final.sort(key=lambda r: -r.utility)
        return final[:k]
