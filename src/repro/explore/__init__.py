"""User-interaction layer: automatic exploration, assisted query
formulation, view recommendation, diversification (paper §2.1).

- :class:`DecisionTreeClassifier` — a from-scratch CART learner, the
  substrate AIDE and query-by-output build on (no sklearn offline).
- :class:`AideExplorer` — Explore-by-Example ([18]): learns the user's
  interest region from relevance feedback and steers sampling toward it.
- :class:`QueryByOutput` — reverse-engineers selection predicates from
  example output tuples ([64, 58]).
- :class:`SeeDB` — deviation-based visualization recommendation with
  shared scans and confidence pruning ([49]).
- :class:`VizDeck` — statistical ranking of candidate visualizations [40].
- :mod:`repro.explore.diversify` — MMR / swap-based result
  diversification ([65, 41]).
- :class:`FacetRecommender` — YmalDB-style "you may also like" faceted
  recommendations ([20]).
- :class:`QuerySuggester` — session-based SQL autocompletion from query
  logs ([21]).
- :class:`SemanticWindowExplorer` — online search for grid windows with
  content constraints ([36]).
- :class:`ImpreciseQueryRefiner` — user-driven refinement of imprecise
  predicates ([52]).
- :func:`segment_column` — Charles-style data-space segmentation ([57]).
"""

from repro.explore.classifier import DecisionTreeClassifier
from repro.explore.aide import AideExplorer, AideResult
from repro.explore.qbo import QueryByOutput
from repro.explore.seedb import SeeDB, ViewRecommendation
from repro.explore.vizrec import VizDeck, VizCandidate
from repro.explore.diversify import (
    cached_diversify,
    diversity_score,
    mmr_diversify,
    swap_diversify,
)
from repro.explore.facets import FacetRecommender
from repro.explore.suggest import QuerySuggester
from repro.explore.windows import SemanticWindowExplorer, Window
from repro.explore.refine import ImpreciseQueryRefiner
from repro.explore.segment import segment_column
from repro.explore.olap import CubeExplorer, best_views_by_exceptions
from repro.explore.join_inference import JoinCandidate, JoinInferencer

__all__ = [
    "AideExplorer",
    "CubeExplorer",
    "best_views_by_exceptions",
    "AideResult",
    "DecisionTreeClassifier",
    "FacetRecommender",
    "ImpreciseQueryRefiner",
    "JoinCandidate",
    "JoinInferencer",
    "QueryByOutput",
    "QuerySuggester",
    "SeeDB",
    "SemanticWindowExplorer",
    "VizCandidate",
    "VizDeck",
    "ViewRecommendation",
    "Window",
    "cached_diversify",
    "diversity_score",
    "mmr_diversify",
    "segment_column",
    "swap_diversify",
]
