"""VizDeck: self-organising dashboards ([40]).

VizDeck enumerates candidate visualizations of a table and ranks them by
statistical "interestingness" heuristics, so the dashboard assembles
itself with the most promising charts on top.  The heuristics implemented
mirror the paper's feature set:

- histograms of numeric columns scored by deviation from uniformity
  (entropy deficit) and by skew;
- bar charts of categorical columns scored by balance of group sizes;
- scatter plots of numeric pairs scored by |Pearson correlation|.

Feedback ("vote up/down this chart") nudges the per-chart-type weights —
the paper's personalisation mechanism.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.engine.table import Table


@dataclass
class VizCandidate:
    """One ranked visualization candidate."""

    kind: str  # "histogram" | "bar" | "scatter"
    columns: tuple[str, ...]
    score: float

    def describe(self) -> str:
        """Human-readable label."""
        return f"{self.kind}({', '.join(self.columns)})"


def _entropy_deficit(values: np.ndarray, bins: int = 16) -> float:
    """1 − normalised entropy of the histogram: 0 = uniform, 1 = point mass."""
    counts, _ = np.histogram(values, bins=bins)
    total = counts.sum()
    if total == 0:
        return 0.0
    p = counts[counts > 0] / total
    entropy = -np.sum(p * np.log(p))
    max_entropy = math.log(bins)
    return float(1.0 - entropy / max_entropy) if max_entropy > 0 else 0.0


def _abs_skewness(values: np.ndarray) -> float:
    std = values.std()
    if std == 0:
        return 0.0
    return float(abs(np.mean(((values - values.mean()) / std) ** 3)))


class VizDeck:
    """Ranks candidate visualizations of a table.

    Args:
        table: the data.
        max_scatter_pairs: cap on numeric-pair enumeration.
    """

    def __init__(self, table: Table, max_scatter_pairs: int = 50) -> None:
        self.table = table
        self.max_scatter_pairs = max_scatter_pairs
        self._weights = {"histogram": 1.0, "bar": 1.0, "scatter": 1.0}

    def _numeric_columns(self) -> list[str]:
        return [
            name
            for name in self.table.column_names
            if self.table.column(name).dtype.is_numeric
        ]

    def _categorical_columns(self, max_cardinality: int = 30) -> list[str]:
        result = []
        for name in self.table.column_names:
            column = self.table.column(name)
            if not column.dtype.is_numeric and column.distinct_count() <= max_cardinality:
                result.append(name)
        return result

    def candidates(self) -> list[VizCandidate]:
        """Score every candidate visualization (unsorted)."""
        result: list[VizCandidate] = []
        numeric = self._numeric_columns()
        for name in numeric:
            values = np.asarray(self.table.column(name).data, dtype=np.float64)
            score = 0.5 * _entropy_deficit(values) + 0.5 * min(
                1.0, _abs_skewness(values) / 3.0
            )
            result.append(VizCandidate("histogram", (name,), score))
        for name in self._categorical_columns():
            labels = self.table.column(name).to_list()
            counts = np.asarray(
                [labels.count(v) for v in set(labels)], dtype=np.float64
            )
            p = counts / counts.sum()
            entropy = float(-np.sum(p * np.log(p)))
            max_entropy = math.log(len(counts)) if len(counts) > 1 else 1.0
            # interesting bar charts are neither flat nor degenerate
            balance = entropy / max_entropy if max_entropy else 0.0
            score = 1.0 - abs(balance - 0.6)
            result.append(VizCandidate("bar", (name,), score))
        pairs = 0
        for i, a in enumerate(numeric):
            for b in numeric[i + 1 :]:
                if pairs >= self.max_scatter_pairs:
                    break
                x = np.asarray(self.table.column(a).data, dtype=np.float64)
                y = np.asarray(self.table.column(b).data, dtype=np.float64)
                if x.std() == 0 or y.std() == 0:
                    continue
                score = float(abs(np.corrcoef(x, y)[0, 1]))
                result.append(VizCandidate("scatter", (a, b), score))
                pairs += 1
        return result

    def rank(self, k: int = 10) -> list[VizCandidate]:
        """Top-k candidates under the current personalised weights."""
        scored = [
            VizCandidate(c.kind, c.columns, c.score * self._weights[c.kind])
            for c in self.candidates()
        ]
        scored.sort(key=lambda c: (-c.score, c.describe()))
        return scored[:k]

    def feedback(self, kind: str, positive: bool, rate: float = 0.2) -> None:
        """Vote a chart type up or down, shifting future rankings."""
        if kind not in self._weights:
            raise ValueError(f"unknown chart kind {kind!r}")
        factor = (1.0 + rate) if positive else 1.0 / (1.0 + rate)
        self._weights[kind] *= factor
