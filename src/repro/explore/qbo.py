"""Query by Output: reverse-engineering selection queries ([64, 58, 51]).

Given a table and a set of *example output rows* (identified by row id),
recover a selection predicate whose result matches the examples.  The
instance-equivalent-query problem of Tran et al. reduces, for conjunctive
selection queries, to building a classifier that separates example rows
from the rest and reading the predicate off its structure — here, the
same CART substrate AIDE uses, restricted to the most selective positive
box when the user asks for a conjunctive (single-box) answer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.engine.table import Table
from repro.explore.classifier import Box, DecisionTreeClassifier


@dataclass
class RecoveredQuery:
    """The outcome of query discovery."""

    where_sql: str
    boxes: list[Box]
    precision: float
    recall: float
    feature_names: list[str]

    @property
    def f1(self) -> float:
        """F1 of the recovered query against the examples."""
        if self.precision + self.recall == 0:
            return 0.0
        return 2 * self.precision * self.recall / (self.precision + self.recall)


class QueryByOutput:
    """Discovers selection predicates from example output rows.

    Args:
        table: the queried table.
        columns: candidate predicate columns (numeric); defaults to all
            numeric columns.
        max_depth: classifier depth — bounds predicate complexity.
    """

    def __init__(
        self,
        table: Table,
        columns: Sequence[str] | None = None,
        max_depth: int = 6,
    ) -> None:
        self.table = table
        if columns is None:
            columns = [
                name
                for name in table.column_names
                if table.column(name).dtype.is_numeric
            ]
        if not columns:
            raise ValueError("query-by-output needs at least one numeric column")
        self.columns = list(columns)
        self.max_depth = max_depth
        self._features = np.column_stack(
            [np.asarray(table.column(c).data, dtype=np.float64) for c in self.columns]
        )

    def discover(
        self, example_rows: Sequence[int], conjunctive_only: bool = False
    ) -> RecoveredQuery:
        """Recover a predicate matching the example rows.

        Args:
            example_rows: indices of rows the target query returns.
            conjunctive_only: restrict the answer to a single conjunctive
                box (the Tran et al. "at-most-one-selection" setting)
                instead of a disjunction of boxes.
        """
        examples = set(int(r) for r in example_rows)
        if not examples:
            raise ValueError("need at least one example row")
        n = self.table.num_rows
        labels = np.asarray([1 if i in examples else 0 for i in range(n)])
        classifier = DecisionTreeClassifier(max_depth=self.max_depth, min_leaf=1)
        classifier.fit(self._features, labels)
        boxes = classifier.positive_boxes()
        if conjunctive_only and len(boxes) > 1:
            boxes = [self._best_box(boxes, labels)]
        predicted = self._rows_matching(boxes)
        tp = len(predicted & examples)
        precision = tp / len(predicted) if predicted else 0.0
        recall = tp / len(examples)
        return RecoveredQuery(
            where_sql=self._boxes_to_sql(boxes),
            boxes=boxes,
            precision=precision,
            recall=recall,
            feature_names=list(self.columns),
        )

    # -- helpers ------------------------------------------------------------------------

    def _rows_matching(self, boxes: list[Box]) -> set[int]:
        matched: set[int] = set()
        for box in boxes:
            mask = np.ones(len(self._features), dtype=bool)
            for feature, (low, high) in box.items():
                if low is not None:
                    mask &= self._features[:, feature] > low
                if high is not None:
                    mask &= self._features[:, feature] <= high
            matched.update(np.flatnonzero(mask).tolist())
        return matched

    def _best_box(self, boxes: list[Box], labels: np.ndarray) -> Box:
        """The single box with the highest F1 against the examples."""
        best_box = boxes[0]
        best_f1 = -1.0
        total_pos = int(labels.sum())
        for box in boxes:
            rows = self._rows_matching([box])
            tp = int(sum(labels[r] for r in rows))
            precision = tp / len(rows) if rows else 0.0
            recall = tp / total_pos if total_pos else 0.0
            f1 = (
                2 * precision * recall / (precision + recall)
                if precision + recall
                else 0.0
            )
            if f1 > best_f1:
                best_f1 = f1
                best_box = box
        return best_box

    def _boxes_to_sql(self, boxes: list[Box]) -> str:
        if not boxes:
            return "FALSE"
        clauses = []
        for box in boxes:
            parts = []
            for feature, (low, high) in sorted(box.items()):
                name = self.columns[feature]
                if low is not None:
                    parts.append(f"{name} > {low:g}")
                if high is not None:
                    parts.append(f"{name} <= {high:g}")
            clauses.append("(" + " AND ".join(parts) + ")" if parts else "TRUE")
        return " OR ".join(clauses)
