"""A from-scratch CART decision-tree classifier.

AIDE ([18]) characterises the user's interest region with decision-tree
classifiers because their axis-aligned splits translate directly into SQL
range predicates.  sklearn is unavailable offline, so this is a compact
but complete CART implementation: binary gini splits on numeric features,
depth / leaf-size stopping, and extraction of the positive-leaf regions as
conjunctive range predicates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass
class _Node:
    feature: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None
    prediction: int = 0
    probability: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.left is None


#: A conjunctive box predicate: feature index -> (low, high) with None for
#: an unbounded side.
Box = dict[int, tuple[float | None, float | None]]


class DecisionTreeClassifier:
    """Binary CART classifier over numeric features.

    Args:
        max_depth: maximum tree depth.
        min_leaf: minimum samples in a leaf.
        min_gain: minimum gini improvement to accept a split.
    """

    def __init__(self, max_depth: int = 6, min_leaf: int = 3, min_gain: float = 1e-7) -> None:
        self.max_depth = max_depth
        self.min_leaf = min_leaf
        self.min_gain = min_gain
        self._root: _Node | None = None
        self.num_features = 0

    # -- training ----------------------------------------------------------------------

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "DecisionTreeClassifier":
        """Fit on a (n, d) feature matrix and 0/1 labels."""
        features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        labels = np.asarray(labels, dtype=np.int64)
        if len(features) != len(labels):
            raise ValueError("features and labels must have equal length")
        if len(features) == 0:
            raise ValueError("cannot fit on an empty training set")
        self.num_features = features.shape[1]
        self._root = self._build(features, labels, depth=0)
        return self

    @staticmethod
    def _gini(labels: np.ndarray) -> float:
        if len(labels) == 0:
            return 0.0
        p = labels.mean()
        return 2.0 * p * (1.0 - p)

    def _build(self, features: np.ndarray, labels: np.ndarray, depth: int) -> _Node:
        node = _Node(
            prediction=int(labels.mean() >= 0.5),
            probability=float(labels.mean()),
        )
        if (
            depth >= self.max_depth
            or len(labels) < 2 * self.min_leaf
            or labels.min() == labels.max()
        ):
            return node
        best = self._best_split(features, labels)
        if best is None:
            return node
        feature, threshold, _ = best
        mask = features[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(features[mask], labels[mask], depth + 1)
        node.right = self._build(features[~mask], labels[~mask], depth + 1)
        return node

    def _best_split(
        self, features: np.ndarray, labels: np.ndarray
    ) -> tuple[int, float, float] | None:
        n, d = features.shape
        parent_gini = self._gini(labels)
        best: tuple[int, float, float] | None = None
        for feature in range(d):
            order = np.argsort(features[:, feature], kind="stable")
            sorted_values = features[order, feature]
            sorted_labels = labels[order]
            positives = np.cumsum(sorted_labels)
            total_pos = positives[-1]
            for i in range(self.min_leaf, n - self.min_leaf + 1):
                if i < n and sorted_values[i - 1] == sorted_values[i]:
                    continue  # cannot split between equal values
                if i >= n:
                    break
                left_n, right_n = i, n - i
                left_pos = positives[i - 1]
                right_pos = total_pos - left_pos
                p_left = left_pos / left_n
                p_right = right_pos / right_n
                gini = (
                    left_n / n * 2.0 * p_left * (1.0 - p_left)
                    + right_n / n * 2.0 * p_right * (1.0 - p_right)
                )
                gain = parent_gini - gini
                if gain > self.min_gain and (best is None or gain > best[2]):
                    threshold = (sorted_values[i - 1] + sorted_values[i]) / 2.0
                    best = (feature, float(threshold), float(gain))
        return best

    # -- prediction --------------------------------------------------------------------

    def _descend(self, row: np.ndarray) -> _Node:
        assert self._root is not None
        node = self._root
        while not node.is_leaf:
            node = node.left if row[node.feature] <= node.threshold else node.right  # type: ignore[assignment]
        return node

    def predict(self, features: np.ndarray) -> np.ndarray:
        """0/1 predictions for a (n, d) feature matrix."""
        if self._root is None:
            raise ValueError("classifier is not fitted")
        features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        return np.asarray([self._descend(row).prediction for row in features])

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """P(label = 1) per row."""
        if self._root is None:
            raise ValueError("classifier is not fitted")
        features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        return np.asarray([self._descend(row).probability for row in features])

    # -- introspection ------------------------------------------------------------------

    def depth(self) -> int:
        """Actual depth of the fitted tree."""

        def walk(node: _Node | None) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self._root)

    def positive_boxes(self) -> list[Box]:
        """The axis-aligned boxes of all positive leaves.

        Each box is a conjunctive predicate over feature ranges — exactly
        the shape AIDE turns into SQL range queries.
        """
        if self._root is None:
            raise ValueError("classifier is not fitted")
        boxes: list[Box] = []

        def walk(node: _Node, box: Box) -> None:
            if node.is_leaf:
                if node.prediction == 1:
                    boxes.append(dict(box))
                return
            low, high = box.get(node.feature, (None, None))
            left_box = dict(box)
            left_box[node.feature] = (low, node.threshold)
            walk(node.left, left_box)  # type: ignore[arg-type]
            right_box = dict(box)
            right_box[node.feature] = (node.threshold, high)
            walk(node.right, right_box)  # type: ignore[arg-type]

        walk(self._root, {})
        return boxes

    def to_sql(self, feature_names: Sequence[str]) -> str:
        """Render the positive region as a SQL WHERE disjunction of boxes."""
        boxes = self.positive_boxes()
        if not boxes:
            return "FALSE"
        clauses = []
        for box in boxes:
            parts = []
            for feature, (low, high) in sorted(box.items()):
                name = feature_names[feature]
                if low is not None:
                    parts.append(f"{name} > {low:g}")
                if high is not None:
                    parts.append(f"{name} <= {high:g}")
            clauses.append("(" + " AND ".join(parts) + ")" if parts else "TRUE")
        return " OR ".join(clauses)
