"""Interactive inference of join queries (Bonifati et al. [13]).

The user cannot write the join, but they can *recognise* it: shown a
candidate pair of tuples (one from each table), they say whether the pair
belongs in the result.  The inference engine maintains the version space
of candidate equi-join predicates (all type-compatible column pairs) and:

1. eliminates candidates inconsistent with each label —
   a positive pair must satisfy the predicate, a negative must not;
2. picks the next pair to ask about by **maximum disagreement** among the
   surviving candidates (halving), so every answer eliminates as many
   candidates as possible.

The loop ends when one candidate remains (or the label budget runs out),
and emits the inferred join as SQL.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.engine.catalog import Database
from repro.errors import ReproError


@dataclass(frozen=True)
class JoinCandidate:
    """One candidate equi-join predicate."""

    left_column: str
    right_column: str

    def to_sql(self, left_table: str, right_table: str) -> str:
        """Render as an ON clause."""
        return (
            f"{left_table}.{self.left_column} = {right_table}.{self.right_column}"
        )


@dataclass
class InferenceResult:
    """Outcome of a join-inference session."""

    candidates_remaining: list[JoinCandidate]
    labels_used: int
    questions: list[tuple[int, int, bool]]  # (left row, right row, answer)

    @property
    def resolved(self) -> bool:
        """True when exactly one join predicate survives."""
        return len(self.candidates_remaining) == 1

    @property
    def join(self) -> JoinCandidate:
        """The inferred join (requires :attr:`resolved`)."""
        if not self.resolved:
            raise ReproError("join not uniquely resolved yet")
        return self.candidates_remaining[0]


class JoinInferencer:
    """Infers the intended equi-join between two tables from labels.

    Args:
        db: the database.
        left_table, right_table: tables being joined.
        oracle: the simulated user — maps (left row id, right row id) to
            True/False membership in the intended join result.
        seed: RNG seed for probe-pair selection tie-breaking.
    """

    def __init__(
        self,
        db: Database,
        left_table: str,
        right_table: str,
        oracle: Callable[[int, int], bool],
        seed: int = 0,
    ) -> None:
        self.db = db
        self.left_table = left_table
        self.right_table = right_table
        self.oracle = oracle
        self._rng = np.random.default_rng(seed)
        self._left = db.get_table(left_table)
        self._right = db.get_table(right_table)
        self.candidates = self._enumerate_candidates()
        if not self.candidates:
            raise ReproError("no type-compatible column pairs to join on")

    def _enumerate_candidates(self) -> list[JoinCandidate]:
        result = []
        for left_name in self._left.column_names:
            left_type = self._left.schema.type_of(left_name)
            for right_name in self._right.column_names:
                if self._right.schema.type_of(right_name) == left_type:
                    result.append(JoinCandidate(left_name, right_name))
        return result

    # -- consistency ------------------------------------------------------------------

    def _pair_satisfies(self, candidate: JoinCandidate, left_row: int, right_row: int) -> bool:
        left_value = self._left.column(candidate.left_column)[left_row]
        right_value = self._right.column(candidate.right_column)[right_row]
        return left_value is not None and left_value == right_value

    def _consistent(self, candidate: JoinCandidate, left_row: int, right_row: int, label: bool) -> bool:
        return self._pair_satisfies(candidate, left_row, right_row) == label

    # -- probe selection ---------------------------------------------------------------

    def _best_probe(self, candidates: list[JoinCandidate], budget: int = 400) -> tuple[int, int] | None:
        """The pair on which the surviving candidates disagree the most."""
        n_left = self._left.num_rows
        n_right = self._right.num_rows
        best_pair = None
        best_balance = -1.0
        for _ in range(budget):
            left_row = int(self._rng.integers(0, n_left))
            right_row = int(self._rng.integers(0, n_right))
            yes = sum(
                self._pair_satisfies(c, left_row, right_row) for c in candidates
            )
            if 0 < yes < len(candidates):
                balance = min(yes, len(candidates) - yes) / len(candidates)
                if balance > best_balance:
                    best_balance = balance
                    best_pair = (left_row, right_row)
                    if balance >= 0.5:
                        return best_pair
        return best_pair

    # -- the interactive loop -------------------------------------------------------------

    def run(self, max_labels: int = 30) -> InferenceResult:
        """Ask the oracle about discriminating pairs until resolved."""
        candidates = list(self.candidates)
        questions: list[tuple[int, int, bool]] = []
        while len(candidates) > 1 and len(questions) < max_labels:
            probe = self._best_probe(candidates)
            if probe is None:
                break  # remaining candidates are indistinguishable on this data
            left_row, right_row = probe
            answer = bool(self.oracle(left_row, right_row))
            questions.append((left_row, right_row, answer))
            candidates = [
                c for c in candidates
                if self._consistent(c, left_row, right_row, answer)
            ]
            if not candidates:
                raise ReproError(
                    "labels are inconsistent with every candidate equi-join"
                )
        return InferenceResult(
            candidates_remaining=candidates,
            labels_used=len(questions),
            questions=questions,
        )

    def inferred_sql(self, result: InferenceResult, projection: str = "*") -> str:
        """The full SELECT for a resolved inference."""
        join = result.join
        return (
            f"SELECT {projection} FROM {self.left_table} "
            f"JOIN {self.right_table} ON "
            f"{join.to_sql(self.left_table, self.right_table)}"
        )
