"""AIDE: Explore-by-Example, automatic query steering ([18, 14]).

The user never writes a predicate.  Instead the system shows sample
tuples, the user labels them *relevant* / *irrelevant*, and AIDE:

1. fits a decision-tree classifier to the labelled set,
2. translates the tree's positive leaves into range-query *boxes*,
3. steers the next sampling round — a mix of **exploitation** (sampling
   inside and around the current boxes, to refine their boundaries) and
   **exploration** (grid/random sampling elsewhere, to find undiscovered
   relevant areas),
4. repeats until the classifier stabilises, then emits the final query.

The S10 benchmark reproduces the paper's headline curve: F1 of the
discovered region versus number of labelled samples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.explore.classifier import Box, DecisionTreeClassifier


@dataclass
class AideResult:
    """Final state of an exploration run."""

    classifier: DecisionTreeClassifier
    boxes: list[Box]
    labeled_indices: list[int]
    labels: list[int]
    iterations: int
    f1_history: list[float] = field(default_factory=list)

    @property
    def samples_labeled(self) -> int:
        """Total labelling effort spent."""
        return len(self.labeled_indices)

    def predicate_sql(self, feature_names: Sequence[str]) -> str:
        """The discovered region as a SQL WHERE clause."""
        return self.classifier.to_sql(feature_names)


class AideExplorer:
    """Runs the explore-by-example loop against an oracle user.

    Args:
        features: (n, d) numeric matrix of the explorable attributes.
        oracle: the simulated user — maps a row index to a 0/1 relevance
            label.  (With a real user this is the UI feedback callback.)
        samples_per_round: labels requested per iteration.
        exploration_fraction: share of each round spent on random
            exploration rather than boundary exploitation.
        seed: RNG seed.
    """

    def __init__(
        self,
        features: np.ndarray,
        oracle: Callable[[int], int],
        samples_per_round: int = 20,
        exploration_fraction: float = 0.4,
        max_depth: int = 8,
        seed: int = 0,
    ) -> None:
        self.features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        self.oracle = oracle
        self.samples_per_round = samples_per_round
        self.exploration_fraction = exploration_fraction
        self.max_depth = max_depth
        self._rng = np.random.default_rng(seed)
        self._labeled: dict[int, int] = {}

    # -- the steering loop -------------------------------------------------------------

    def run(
        self,
        max_iterations: int = 15,
        truth: np.ndarray | None = None,
        stop_f1: float | None = None,
    ) -> AideResult:
        """Run the loop.

        Args:
            max_iterations: iteration budget.
            truth: optional full ground-truth labels, only used to record
                the F1 learning curve (the algorithm never reads it).
            stop_f1: stop early when the recorded F1 reaches this value
                (requires ``truth``).
        """
        n = len(self.features)
        classifier = DecisionTreeClassifier(max_depth=self.max_depth)
        f1_history: list[float] = []
        iterations = 0
        for iteration in range(max_iterations):
            iterations = iteration + 1
            candidates = self._next_sample_batch(classifier if self._labeled else None)
            for index in candidates:
                if index not in self._labeled:
                    self._labeled[index] = int(self.oracle(index))
            indices = np.asarray(sorted(self._labeled))
            labels = np.asarray([self._labeled[i] for i in indices])
            if labels.min() == labels.max():
                # all one class so far: keep exploring
                if truth is not None:
                    f1_history.append(0.0)
                continue
            classifier = DecisionTreeClassifier(max_depth=self.max_depth)
            classifier.fit(self.features[indices], labels)
            if truth is not None:
                f1 = self._f1(classifier, truth)
                f1_history.append(f1)
                if stop_f1 is not None and f1 >= stop_f1:
                    break
        boxes = classifier.positive_boxes() if classifier._root is not None else []
        indices = sorted(self._labeled)
        return AideResult(
            classifier=classifier,
            boxes=boxes,
            labeled_indices=list(indices),
            labels=[self._labeled[i] for i in indices],
            iterations=iterations,
            f1_history=f1_history,
        )

    def _f1(self, classifier: DecisionTreeClassifier, truth: np.ndarray) -> float:
        predictions = classifier.predict(self.features)
        tp = int(np.sum((predictions == 1) & (truth == 1)))
        fp = int(np.sum((predictions == 1) & (truth == 0)))
        fn = int(np.sum((predictions == 0) & (truth == 1)))
        if tp == 0:
            return 0.0
        precision = tp / (tp + fp)
        recall = tp / (tp + fn)
        return 2 * precision * recall / (precision + recall)

    # -- sample selection ----------------------------------------------------------------

    def _next_sample_batch(
        self, classifier: DecisionTreeClassifier | None
    ) -> list[int]:
        n = len(self.features)
        budget = self.samples_per_round
        unlabeled = np.asarray(
            [i for i in range(n) if i not in self._labeled], dtype=np.int64
        )
        if len(unlabeled) == 0:
            return []
        if classifier is None or classifier._root is None:
            # bootstrap: stratified random grid over the space
            size = min(budget, len(unlabeled))
            return self._rng.choice(unlabeled, size=size, replace=False).tolist()
        explore_budget = max(1, int(budget * self.exploration_fraction))
        exploit_budget = budget - explore_budget
        chosen: list[int] = []
        # exploitation: sample near the decision boundary — rows whose
        # predicted probability is most uncertain
        if exploit_budget > 0:
            probabilities = classifier.predict_proba(self.features[unlabeled])
            uncertainty = np.abs(probabilities - 0.5)
            order = np.argsort(uncertainty, kind="stable")
            chosen.extend(unlabeled[order[:exploit_budget]].tolist())
        # exploration: uniform random over what remains
        remaining = np.asarray([i for i in unlabeled if i not in set(chosen)])
        if len(remaining) and explore_budget > 0:
            size = min(explore_budget, len(remaining))
            chosen.extend(self._rng.choice(remaining, size=size, replace=False).tolist())
        return chosen
