"""Semantic windows: interactive search for interesting grid regions ([36]).

A *semantic window* is a ``w × w`` sub-grid whose content satisfies a
predicate — here, average cell value above a threshold (the hotspot
search of the paper's astronomy motivation).  Two search strategies:

- **exhaustive** — scan windows in row-major order; results arrive in
  grid order, so a hotspot in the bottom-right is found last.
- **online** — sample probe windows across the grid, then greedily expand
  around the most promising probes (best-first on observed averages), so
  the first qualifying windows surface after inspecting a small fraction
  of the space.

``windows_inspected`` counts evaluation work; the S11 benchmark plots
results-found versus windows-inspected for both strategies.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.engine.table import Table


@dataclass(frozen=True)
class Window:
    """One qualifying window (top-left cell plus score)."""

    x: int
    y: int
    size: int
    average: float


class SemanticWindowExplorer:
    """Searches a 2-D grid for windows with high average value.

    Args:
        table: a grid table with integer ``x``/``y`` cells and a ``value``
            column (as produced by :func:`repro.workloads.grid_table`).
        window_size: w, the window side length in cells.
        threshold: qualifying average value.
    """

    def __init__(self, table: Table, window_size: int, threshold: float) -> None:
        xs = np.asarray(table.column("x").data, dtype=np.int64)
        ys = np.asarray(table.column("y").data, dtype=np.int64)
        values = np.asarray(table.column("value").data, dtype=np.float64)
        side = int(max(xs.max(), ys.max())) + 1
        grid = np.zeros((side, side))
        counts = np.zeros((side, side))
        np.add.at(grid, (xs, ys), values)
        np.add.at(counts, (xs, ys), 1.0)
        counts[counts == 0] = 1.0
        self._grid = grid / counts
        self.side = side
        self.window_size = window_size
        self.threshold = threshold
        # summed-area table for O(1) window sums
        self._sat = np.cumsum(np.cumsum(self._grid, axis=0), axis=1)
        self.windows_inspected = 0

    @property
    def num_windows(self) -> int:
        """Total candidate windows on the grid."""
        extent = self.side - self.window_size + 1
        return max(0, extent * extent)

    def window_average(self, x: int, y: int) -> float:
        """Average cell value of the window anchored at (x, y)."""
        w = self.window_size
        sat = self._sat
        total = sat[x + w - 1, y + w - 1]
        if x > 0:
            total -= sat[x - 1, y + w - 1]
        if y > 0:
            total -= sat[x + w - 1, y - 1]
        if x > 0 and y > 0:
            total += sat[x - 1, y - 1]
        self.windows_inspected += 1
        return float(total / (w * w))

    # -- strategies ---------------------------------------------------------------------

    def find_exhaustive(self, k: int | None = None) -> list[Window]:
        """Row-major scan of every window; stop after ``k`` results."""
        results: list[Window] = []
        extent = self.side - self.window_size + 1
        for x in range(extent):
            for y in range(extent):
                average = self.window_average(x, y)
                if average >= self.threshold:
                    results.append(Window(x, y, self.window_size, average))
                    if k is not None and len(results) >= k:
                        return results
        return results

    def find_online(
        self,
        k: int | None = None,
        num_probes: int = 64,
        seed: int = 0,
    ) -> list[Window]:
        """Probe-then-expand best-first search; stop after ``k`` results.

        Args:
            k: results wanted (None = run to frontier exhaustion).
            num_probes: initial random probe windows.
            seed: RNG seed for probe placement.
        """
        rng = np.random.default_rng(seed)
        extent = self.side - self.window_size + 1
        if extent <= 0:
            return []
        visited: set[tuple[int, int]] = set()
        frontier: list[tuple[float, int, int]] = []  # (-avg, x, y)
        results: list[Window] = []

        def visit(x: int, y: int) -> None:
            if (x, y) in visited or not (0 <= x < extent and 0 <= y < extent):
                return
            visited.add((x, y))
            average = self.window_average(x, y)
            if average >= self.threshold:
                results.append(Window(x, y, self.window_size, average))
            heapq.heappush(frontier, (-average, x, y))

        probes_x = rng.integers(0, extent, size=num_probes)
        probes_y = rng.integers(0, extent, size=num_probes)
        for x, y in zip(probes_x, probes_y):
            visit(int(x), int(y))
            if k is not None and len(results) >= k:
                return results[:k]

        step = max(1, self.window_size // 2)
        while frontier:
            if k is not None and len(results) >= k:
                break
            neg_average, x, y = heapq.heappop(frontier)
            # only expand around promising windows
            if -neg_average < self.threshold * 0.5:
                continue
            for dx, dy in (
                (step, 0), (-step, 0), (0, step), (0, -step),
                (1, 0), (-1, 0), (0, 1), (0, -1),
            ):
                visit(x + dx, y + dy)
                if k is not None and len(results) >= k:
                    break
        return results if k is None else results[:k]

    def reset_counters(self) -> None:
        """Zero the inspection counter."""
        self.windows_inspected = 0
