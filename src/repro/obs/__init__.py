"""Unified observability: metrics, span tracing, profiled execution.

One import point for the three measurement surfaces the system exposes:

- :mod:`repro.obs.metrics` — the process-wide :class:`MetricsRegistry`
  of counters/gauges/timers plus weakly-registered component stats;
- :mod:`repro.obs.tracing` — nestable spans with a near-zero-cost
  disabled path (``with trace("hash_join", rows=n): ...``);
- :mod:`repro.obs.profile` — per-plan-node profiling behind the
  executor, rendered as an ``EXPLAIN ANALYZE`` report.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    MetricsRegistry,
    Timer,
    get_registry,
    register_stats_source,
    set_registry,
)
from repro.obs.profile import ExplainAnalyzeReport, NodeProfile, PlanProfiler, table_nbytes
from repro.obs.tracing import (
    Span,
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "Timer",
    "get_registry",
    "register_stats_source",
    "set_registry",
    "ExplainAnalyzeReport",
    "NodeProfile",
    "PlanProfiler",
    "table_nbytes",
    "Span",
    "Tracer",
    "disable_tracing",
    "enable_tracing",
    "get_tracer",
    "trace",
]
