"""A process-wide metrics registry: counters, gauges, timers, stat sources.

The registry is the single sink for everything the system measures.  Three
primitive instrument kinds cover the usual needs:

- :class:`Counter` — monotonically increasing event counts;
- :class:`Gauge` — last-write-wins point-in-time values;
- :class:`Timer` — wall-time accumulators with count/total/min/max.

Components that already keep their own statistics objects (cache hit
rates, cracking convergence counters, adaptive-store events, …) register
themselves as *stat sources*: any object with a ``metrics() -> dict``
method, held by weak reference so registration never extends a lifetime.
``MetricsRegistry.snapshot()`` folds instruments, live sources and
recorded benchmark tables into one JSON-serialisable dict.
"""

from __future__ import annotations

import json
import threading
import time
import weakref
from typing import Any, Callable, Sequence


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (must be non-negative) to the count."""
        if n < 0:
            raise ValueError("counters only go up; use a Gauge instead")
        self._value += n

    @property
    def value(self) -> int:
        """Current count."""
        return self._value


class Gauge:
    """A point-in-time value; the last write wins."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value: float = 0.0

    def set(self, value: float) -> None:
        """Record the current value."""
        self._value = float(value)

    def add(self, delta: float) -> None:
        """Adjust the current value by ``delta`` (either sign)."""
        self._value += float(delta)

    @property
    def value(self) -> float:
        """Most recently recorded value."""
        return self._value


class Timer:
    """Accumulates wall-time observations.

    Use either ``with timer.time(): ...`` or ``timer.observe(seconds)``.
    """

    __slots__ = ("name", "count", "total_s", "min_s", "max_s")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total_s = 0.0
        self.min_s = float("inf")
        self.max_s = 0.0

    def observe(self, seconds: float) -> None:
        """Record one duration in seconds."""
        self.count += 1
        self.total_s += seconds
        if seconds < self.min_s:
            self.min_s = seconds
        if seconds > self.max_s:
            self.max_s = seconds

    def time(self) -> "_TimerContext":
        """Context manager that observes the enclosed block's wall time."""
        return _TimerContext(self)

    @property
    def mean_s(self) -> float:
        """Mean observed duration (0 when nothing was observed)."""
        return self.total_s / self.count if self.count else 0.0

    def as_dict(self) -> dict[str, float]:
        """JSON-ready summary of the observations."""
        return {
            "count": self.count,
            "total_s": self.total_s,
            "mean_s": self.mean_s,
            "min_s": self.min_s if self.count else 0.0,
            "max_s": self.max_s,
        }


class _TimerContext:
    __slots__ = ("_timer", "_start")

    def __init__(self, timer: Timer) -> None:
        self._timer = timer
        self._start = 0.0

    def __enter__(self) -> "_TimerContext":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: Any) -> None:
        self._timer.observe(time.perf_counter() - self._start)


class MetricsRegistry:
    """A named collection of instruments plus weakly-held stat sources."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._timers: dict[str, Timer] = {}
        self._sources: dict[str, Callable[[], Any]] = {}
        self._tables: dict[str, dict[str, Any]] = {}

    # -- instruments -----------------------------------------------------------------

    def counter(self, name: str) -> Counter:
        """The named counter, created on first use."""
        with self._lock:
            if name not in self._counters:
                self._counters[name] = Counter(name)
            return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        """The named gauge, created on first use."""
        with self._lock:
            if name not in self._gauges:
                self._gauges[name] = Gauge(name)
            return self._gauges[name]

    def timer(self, name: str) -> Timer:
        """The named timer, created on first use."""
        with self._lock:
            if name not in self._timers:
                self._timers[name] = Timer(name)
            return self._timers[name]

    # -- stat sources ------------------------------------------------------------------

    def register_source(self, name: str, obj: Any) -> str:
        """Register an object exposing ``metrics() -> dict`` under ``name``.

        The object is held weakly; dead sources disappear from snapshots.
        Name collisions get a ``#<n>`` suffix so repeated construction of
        the same component (benchmark loops, tests) never clobbers
        anything.  Returns the name actually used.
        """
        with self._lock:
            self._prune_locked()
            unique = name
            n = 2
            while unique in self._sources:
                unique = f"{name}#{n}"
                n += 1
            ref = weakref.ref(obj)

            def pull(ref: "weakref.ref[Any]" = ref) -> Any:
                target = ref()
                return None if target is None else target.metrics()

            self._sources[unique] = pull
            return unique

    def unregister_source(self, name: str) -> None:
        """Remove a stat source (no-op when absent)."""
        with self._lock:
            self._sources.pop(name, None)

    def _prune_locked(self) -> None:
        dead = [name for name, pull in self._sources.items() if pull() is None]
        for name in dead:
            del self._sources[name]

    # -- benchmark tables --------------------------------------------------------------

    def record_table(
        self, title: str, headers: Sequence[str], rows: Sequence[Sequence[Any]]
    ) -> None:
        """Store one structured benchmark result table under its title."""
        with self._lock:
            self._tables[title] = {
                "headers": list(headers),
                "rows": [list(row) for row in rows],
            }

    # -- output -----------------------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """One coherent, JSON-serialisable view of everything registered."""
        with self._lock:
            self._prune_locked()
            sources: dict[str, Any] = {}
            for name, pull in self._sources.items():
                data = pull()
                if data is not None:
                    sources[name] = data
            return {
                "counters": {n: c.value for n, c in self._counters.items()},
                "gauges": {n: g.value for n, g in self._gauges.items()},
                "timers": {n: t.as_dict() for n, t in self._timers.items()},
                "sources": sources,
                "benchmarks": {
                    title: dict(table) for title, table in self._tables.items()
                },
            }

    def to_json(self, indent: int | None = None) -> str:
        """The snapshot rendered as a JSON document."""
        return json.dumps(self.snapshot(), indent=indent, default=str)

    def reset(self) -> None:
        """Drop every instrument, source and recorded table."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._timers.clear()
            self._sources.clear()
            self._tables.clear()


_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry (returns the old one); for tests."""
    global _registry
    old = _registry
    _registry = registry
    return old


def register_stats_source(name: str, obj: Any) -> str:
    """Register ``obj`` (with a ``metrics()`` method) on the default registry."""
    return _registry.register_source(name, obj)
