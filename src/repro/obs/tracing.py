"""Lightweight span tracing.

``with trace("hash_join", rows=n): ...`` opens a span; spans nest via a
per-thread stack, so a trace of one query execution comes back as a tree.
Tracing is **off by default** and the disabled path is a single attribute
check returning a shared no-op context manager — cheap enough to leave
``trace()`` calls in hot operators permanently.

Span stacks are thread-local: the morsel-driven parallel executor opens
spans from worker-pool threads, and each worker's spans nest among
themselves and land in :attr:`Tracer.finished` as their own roots
(appending is lock-protected) instead of corrupting another thread's
stack.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Iterator


@dataclass
class Span:
    """One finished (or in-flight) traced region."""

    name: str
    attrs: dict[str, Any]
    start_s: float
    end_s: float = 0.0
    children: list["Span"] = field(default_factory=list)

    @property
    def duration_s(self) -> float:
        """Wall time between enter and exit."""
        return self.end_s - self.start_s

    def walk(self) -> Iterator["Span"]:
        """This span and all descendants, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready rendering of the subtree."""
        return {
            "name": self.name,
            "duration_s": self.duration_s,
            "attrs": self.attrs,
            "children": [c.as_dict() for c in self.children],
        }


class _NoopSpan:
    """Shared do-nothing context manager returned while tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: Any) -> None:
        return None


_NOOP = _NoopSpan()


class _ActiveSpan:
    """Context manager that records one span on the owning tracer."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._stack.append(self._span)
        self._span.start_s = time.perf_counter()
        return self._span

    def __exit__(self, *exc: Any) -> None:
        span = self._span
        span.end_s = time.perf_counter()
        tracer = self._tracer
        stack = tracer._stack
        # tolerate a tracer disabled mid-span: only pop what we pushed
        if stack and stack[-1] is span:
            stack.pop()
        if stack:
            stack[-1].children.append(span)
        else:
            with tracer._finished_lock:
                tracer.finished.append(span)


class Tracer:
    """Collects span trees while enabled.

    Attributes:
        enabled: gate checked by :meth:`span`; flip via
            :meth:`enable`/:meth:`disable`.
        finished: completed *root* spans, oldest first (across threads,
            in completion order).
    """

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self.finished: list[Span] = []
        self._local = threading.local()
        self._finished_lock = threading.Lock()

    @property
    def _stack(self) -> list[Span]:
        """The calling thread's open-span stack."""
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, **attrs: Any):
        """Open a span (or a no-op when disabled); use as a context manager."""
        if not self.enabled:
            return _NOOP
        return _ActiveSpan(self, Span(name=name, attrs=attrs, start_s=0.0))

    def enable(self) -> None:
        """Start recording spans."""
        self.enabled = True

    def disable(self) -> None:
        """Stop recording spans (already-collected spans are kept)."""
        self.enabled = False

    def clear(self) -> None:
        """Drop collected spans and the calling thread's dangling stack."""
        with self._finished_lock:
            self.finished.clear()
        self._stack.clear()

    def open_depth(self) -> int:
        """Number of spans currently open on the calling thread."""
        return len(self._stack)

    def unwind(self, to_depth: int = 0) -> int:
        """Close spans the calling thread abandoned; returns how many.

        An interrupt (e.g. Ctrl-C mid-query) can abandon open spans on
        the thread's stack; recording the depth before risky work and
        unwinding back to it afterwards keeps the tracer consistent.
        Each abandoned span is closed at the current wall time, so the
        partial trace of the interrupted work is preserved.
        """
        stack = self._stack
        closed = 0
        now = time.perf_counter()
        while len(stack) > to_depth:
            span = stack.pop()
            span.end_s = now
            if stack:
                stack[-1].children.append(span)
            else:
                with self._finished_lock:
                    self.finished.append(span)
            closed += 1
        return closed

    def all_spans(self) -> list[Span]:
        """Every finished span, flattened depth-first across roots."""
        return [span for root in self.finished for span in root.walk()]


_tracer = Tracer()


def get_tracer() -> Tracer:
    """The process-wide default tracer."""
    return _tracer


def trace(name: str, **attrs: Any):
    """Open a span on the default tracer (no-op while tracing is disabled)."""
    if not _tracer.enabled:
        return _NOOP
    return _ActiveSpan(_tracer, Span(name=name, attrs=attrs, start_s=0.0))


def enable_tracing() -> None:
    """Turn the default tracer on."""
    _tracer.enable()


def disable_tracing() -> None:
    """Turn the default tracer off."""
    _tracer.disable()
