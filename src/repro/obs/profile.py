"""Profiled plan execution: per-node wall time, row counts, bytes touched.

The executor stays profiling-free by default; when a :class:`PlanProfiler`
is passed in, it brackets every plan node with ``enter``/``exit`` calls
and the profiler assembles a :class:`NodeProfile` tree mirroring the plan.
:class:`ExplainAnalyzeReport` renders that tree the way ``EXPLAIN
ANALYZE`` does in a conventional engine.

This module deliberately knows nothing about the engine's node or table
classes beyond two duck-typed surfaces: nodes answer ``label()`` and
tables answer ``num_rows`` plus ``column(name)``/``column_names`` (used
to estimate payload bytes).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any


def table_nbytes(table: Any) -> int:
    """Estimated payload bytes of a table: data plus validity arrays.

    Object-dtype (string) columns count pointer bytes only — a stable
    lower bound that keeps the estimate cheap.
    """
    total = 0
    for name in table.column_names:
        column = table.column(name)
        total += int(column.data.nbytes)
        if column.validity is not None:
            total += int(column.validity.nbytes)
    return total


@dataclass
class NodeProfile:
    """Measured execution of one plan node.

    ``wall_s`` includes time spent in child nodes; ``self_s`` is the
    node's own work.  ``rows_in``/``bytes_in`` sum over the node's inputs
    (child results plus any base tables it read directly).
    """

    label: str
    wall_s: float
    self_s: float
    rows_in: int
    rows_out: int
    bytes_in: int
    bytes_out: int
    children: list["NodeProfile"] = field(default_factory=list)
    annotations: list[str] = field(default_factory=list)

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready rendering of the subtree."""
        return {
            "label": self.label,
            "wall_s": self.wall_s,
            "self_s": self.self_s,
            "rows_in": self.rows_in,
            "rows_out": self.rows_out,
            "bytes_in": self.bytes_in,
            "bytes_out": self.bytes_out,
            "annotations": list(self.annotations),
            "children": [c.as_dict() for c in self.children],
        }


class _Frame:
    __slots__ = (
        "node", "start_s", "child_wall_s", "rows_in", "bytes_in", "children",
        "annotations",
    )

    def __init__(self, node: Any) -> None:
        self.node = node
        self.start_s = 0.0
        self.child_wall_s = 0.0
        self.rows_in = 0
        self.bytes_in = 0
        self.children: list[NodeProfile] = []
        self.annotations: list[str] = []


class PlanProfiler:
    """Collects a :class:`NodeProfile` tree during one plan execution."""

    def __init__(self) -> None:
        self._stack: list[_Frame] = []
        self.root: NodeProfile | None = None

    def enter(self, node: Any) -> None:
        """Begin measuring ``node`` (children recorded between enter/exit
        nest under it)."""
        frame = _Frame(node)
        self._stack.append(frame)
        frame.start_s = time.perf_counter()

    def exit(self, node: Any, result: Any) -> None:
        """Finish measuring ``node``, which produced ``result``."""
        end_s = time.perf_counter()
        frame = self._stack.pop()
        assert frame.node is node, "profiler enter/exit mismatch"
        wall_s = end_s - frame.start_s
        bytes_out = table_nbytes(result)
        profile = NodeProfile(
            label=node.label(),
            wall_s=wall_s,
            self_s=max(0.0, wall_s - frame.child_wall_s),
            rows_in=frame.rows_in,
            rows_out=result.num_rows,
            bytes_in=frame.bytes_in,
            bytes_out=bytes_out,
            children=frame.children,
            annotations=frame.annotations,
        )
        if self._stack:
            parent = self._stack[-1]
            parent.children.append(profile)
            parent.child_wall_s += wall_s
            parent.rows_in += result.num_rows
            parent.bytes_in += bytes_out
        else:
            self.root = profile

    def note_input(self, rows: int, nbytes: int) -> None:
        """Credit a direct base-table read to the current node (scans and
        the build side of joins, which bypass child plan nodes)."""
        if self._stack:
            frame = self._stack[-1]
            frame.rows_in += rows
            frame.bytes_in += nbytes

    def annotate(self, text: str) -> None:
        """Attach a free-form note to the current node (e.g. the morsel
        fan-out of a parallel operator); rendered after the node's
        measurements in the EXPLAIN ANALYZE report."""
        if self._stack:
            self._stack[-1].annotations.append(text)


@dataclass
class ExplainAnalyzeReport:
    """The result of profiled execution, renderable as text or JSON."""

    root: NodeProfile
    notes: list[str] = field(default_factory=list)

    @property
    def total_s(self) -> float:
        """End-to-end plan wall time."""
        return self.root.wall_s

    def lines(self) -> list[str]:
        """Indented per-node lines, root first."""
        out: list[str] = []

        def walk(profile: NodeProfile, depth: int) -> None:
            suffix = "".join(f" [{a}]" for a in profile.annotations)
            out.append(
                "  " * depth
                + f"{profile.label}  "
                + f"(time={profile.wall_s * 1e3:.3f}ms self={profile.self_s * 1e3:.3f}ms "
                + f"rows={profile.rows_in}->{profile.rows_out} "
                + f"bytes={profile.bytes_in}->{profile.bytes_out})"
                + suffix
            )
            for child in profile.children:
                walk(child, depth + 1)

        walk(self.root, 0)
        for note in self.notes:
            out.append(f"note: {note}")
        out.append(f"total time: {self.total_s * 1e3:.3f}ms")
        return out

    def render(self) -> str:
        """The full report as one newline-joined string."""
        return "\n".join(self.lines())

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready rendering."""
        return {
            "total_s": self.total_s,
            "notes": list(self.notes),
            "plan": self.root.as_dict(),
        }
