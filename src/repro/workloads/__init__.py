"""Synthetic data and workload generators.

The surveyed systems were evaluated on proprietary scientific archives and
user traces we cannot ship.  Per DESIGN.md, these generators produce the
closest synthetic equivalents: the algorithms under study react to
distributional properties (skew, clustering, selectivity, trajectory
locality), all of which are explicit knobs here.
"""

from repro.workloads.generators import (
    clustered_column,
    correlated_columns,
    grid_table,
    normal_column,
    random_walk_series,
    sales_table,
    uniform_column,
    zipfian_column,
)
from repro.workloads.queries import (
    RangeQuery,
    random_range_queries,
    sequential_range_queries,
    shifting_focus_queries,
    zoom_in_queries,
)
from repro.workloads.sessions import (
    CubeSessionGenerator,
    ExplorationStep,
    SessionConfig,
    generate_sessions,
)

__all__ = [
    "CubeSessionGenerator",
    "ExplorationStep",
    "RangeQuery",
    "SessionConfig",
    "clustered_column",
    "correlated_columns",
    "generate_sessions",
    "grid_table",
    "normal_column",
    "random_range_queries",
    "random_walk_series",
    "sales_table",
    "sequential_range_queries",
    "shifting_focus_queries",
    "uniform_column",
    "zipfian_column",
]
