"""Range-query workload generators for the adaptive-indexing experiments.

The cracking literature characterises workloads by the *pattern* of query
predicates over time; the patterns below are the standard ones:

- **random** — independent uniform ranges; cracking's best case.
- **sequential** — ranges sweep left-to-right; the pathological case for
  query-bound cracking that stochastic cracking ([23]) fixes.
- **shifting focus** — the workload concentrates on one region then jumps;
  models an analyst moving between areas of interest.
- **zoom-in** — progressively narrower ranges around a target; models
  drill-down exploration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np


@dataclass(frozen=True)
class RangeQuery:
    """A half-open range predicate ``low <= value < high``."""

    low: int
    high: int

    def __post_init__(self) -> None:
        if self.high < self.low:
            raise ValueError(f"empty range: [{self.low}, {self.high})")

    @property
    def width(self) -> int:
        """Range width."""
        return self.high - self.low

    def to_sql(self, column: str = "value", table: str = "t") -> str:
        """Render as a SELECT counting qualifying rows."""
        return (
            f"SELECT COUNT(*) AS n FROM {table} "
            f"WHERE {column} >= {self.low} AND {column} < {self.high}"
        )


def _rng(seed: int | np.random.Generator) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def random_range_queries(
    count: int,
    domain: tuple[int, int],
    selectivity: float = 0.01,
    seed: int | np.random.Generator = 0,
) -> list[RangeQuery]:
    """Independent uniform ranges covering ``selectivity`` of the domain."""
    rng = _rng(seed)
    lo, hi = domain
    width = max(1, int((hi - lo) * selectivity))
    starts = rng.integers(lo, max(lo + 1, hi - width), size=count)
    return [RangeQuery(int(s), int(s + width)) for s in starts]


def sequential_range_queries(
    count: int,
    domain: tuple[int, int],
    selectivity: float = 0.01,
) -> list[RangeQuery]:
    """Ranges sweeping the domain left to right without overlap."""
    lo, hi = domain
    width = max(1, int((hi - lo) * selectivity))
    queries = []
    position = lo
    for _ in range(count):
        if position + width > hi:
            position = lo
        queries.append(RangeQuery(position, position + width))
        position += width
    return queries


def shifting_focus_queries(
    count: int,
    domain: tuple[int, int],
    selectivity: float = 0.01,
    num_phases: int = 4,
    focus_fraction: float = 0.1,
    seed: int | np.random.Generator = 0,
) -> list[RangeQuery]:
    """Queries clustered in one sub-region per phase, jumping between phases."""
    rng = _rng(seed)
    lo, hi = domain
    width = max(1, int((hi - lo) * selectivity))
    focus_width = max(width + 1, int((hi - lo) * focus_fraction))
    per_phase = max(1, count // num_phases)
    queries: list[RangeQuery] = []
    while len(queries) < count:
        focus_start = int(rng.integers(lo, max(lo + 1, hi - focus_width)))
        for _ in range(per_phase):
            if len(queries) >= count:
                break
            start = int(rng.integers(focus_start, focus_start + focus_width - width))
            queries.append(RangeQuery(start, start + width))
    return queries


def zoom_in_queries(
    count: int,
    domain: tuple[int, int],
    shrink: float = 0.7,
    seed: int | np.random.Generator = 0,
) -> list[RangeQuery]:
    """Progressively narrower ranges homing in on a random target point."""
    rng = _rng(seed)
    lo, hi = domain
    target = int(rng.integers(lo, hi))
    width = hi - lo
    queries: list[RangeQuery] = []
    for _ in range(count):
        width = max(2, int(width * shrink))
        jitter_span = max(1, width // 4)
        center = target + int(rng.integers(-jitter_span, jitter_span + 1))
        start = max(lo, min(center - width // 2, hi - width))
        queries.append(RangeQuery(start, start + width))
    return queries


def query_stream(
    pattern: str,
    count: int,
    domain: tuple[int, int],
    selectivity: float = 0.01,
    seed: int = 0,
) -> Iterator[RangeQuery]:
    """Dispatch by pattern name; useful for parameter sweeps in benchmarks."""
    if pattern == "random":
        yield from random_range_queries(count, domain, selectivity, seed)
    elif pattern == "sequential":
        yield from sequential_range_queries(count, domain, selectivity)
    elif pattern == "shifting":
        yield from shifting_focus_queries(count, domain, selectivity, seed=seed)
    elif pattern == "zoom":
        yield from zoom_in_queries(count, domain, seed=seed)
    else:
        raise ValueError(f"unknown workload pattern {pattern!r}")
