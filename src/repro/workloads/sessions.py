"""Exploration-session simulators.

Prefetching and steering results (paper §2.2) depend on how predictable a
user's navigation is.  These generators produce synthetic sessions over a
data-cube-style navigation space with explicit locality/predictability
knobs, replacing the proprietary user traces of the original studies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

#: The navigation moves of a cube/tile exploration interface, as in
#: ForeCache/DICE: panning in four directions, drilling down, rolling up.
MOVES = ("left", "right", "up", "down", "drill", "roll")


@dataclass(frozen=True)
class ExplorationStep:
    """One step of a session: the region requested and the move that led there.

    ``region`` is an abstract tile key ``(level, x, y)``.
    """

    region: tuple[int, int, int]
    move: str


@dataclass
class SessionConfig:
    """Knobs of the session generator.

    Attributes:
        length: steps per session.
        grid_side: tiles per axis at the deepest level.
        levels: zoom levels (0 = coarsest).
        persistence: probability of repeating the previous move; this is
            the locality knob — 0 gives an unpredictable random walk,
            values near 1 give long straight pans that a Markov prefetcher
            can exploit.
        drill_bias: probability mass shifted toward drill-down moves.
    """

    length: int = 50
    grid_side: int = 32
    levels: int = 4
    persistence: float = 0.7
    drill_bias: float = 0.1


class CubeSessionGenerator:
    """Generates navigation sessions over a tiled multi-resolution grid."""

    def __init__(self, config: SessionConfig, seed: int = 0) -> None:
        self.config = config
        self._rng = np.random.default_rng(seed)

    def session(self) -> list[ExplorationStep]:
        """Generate one session."""
        cfg = self.config
        level = 0
        side = max(1, cfg.grid_side >> (cfg.levels - 1 - level))
        x = int(self._rng.integers(0, side))
        y = int(self._rng.integers(0, side))
        steps = [ExplorationStep(region=(level, x, y), move="start")]
        previous_move: str | None = None
        for _ in range(cfg.length - 1):
            move = self._next_move(previous_move, level)
            level, x, y = self._apply(move, level, x, y)
            steps.append(ExplorationStep(region=(level, x, y), move=move))
            previous_move = move
        return steps

    def _next_move(self, previous: str | None, level: int) -> str:
        persistable = previous in MOVES and not (
            (previous == "drill" and level >= self.config.levels - 1)
            or (previous == "roll" and level == 0)
        )
        if persistable and self._rng.random() < self.config.persistence:
            return previous
        weights = np.ones(len(MOVES))
        drill_idx = MOVES.index("drill")
        roll_idx = MOVES.index("roll")
        weights[drill_idx] += self.config.drill_bias * len(MOVES)
        if level >= self.config.levels - 1:
            weights[drill_idx] = 0.0
        if level == 0:
            weights[roll_idx] = 0.0
        weights /= weights.sum()
        return str(self._rng.choice(MOVES, p=weights))

    def _apply(self, move: str, level: int, x: int, y: int) -> tuple[int, int, int]:
        cfg = self.config
        if move == "drill" and level < cfg.levels - 1:
            level += 1
            x, y = x * 2, y * 2
        elif move == "roll" and level > 0:
            level -= 1
            x, y = x // 2, y // 2
        side = max(1, cfg.grid_side >> (cfg.levels - 1 - level))
        if move == "left":
            x -= 1
        elif move == "right":
            x += 1
        elif move == "up":
            y -= 1
        elif move == "down":
            y += 1
        x = int(np.clip(x, 0, side - 1))
        y = int(np.clip(y, 0, side - 1))
        return level, x, y


def generate_sessions(
    num_sessions: int,
    config: SessionConfig | None = None,
    seed: int = 0,
) -> list[list[ExplorationStep]]:
    """Generate ``num_sessions`` independent sessions."""
    config = config or SessionConfig()
    generator = CubeSessionGenerator(config, seed=seed)
    return [generator.session() for _ in range(num_sessions)]


@dataclass
class QueryLogEntry:
    """One entry of a synthetic SQL query log (used by suggestion, S19)."""

    session_id: int
    query: str
    fragments: frozenset[str] = field(default_factory=frozenset)


def sessions_to_trajectories(
    sessions: Sequence[Sequence[ExplorationStep]],
) -> Iterator[list[tuple[int, int, int]]]:
    """Strip sessions down to their region trajectories."""
    for session in sessions:
        yield [step.region for step in session]
