"""Synthetic column, table and series generators.

All generators take an explicit ``seed`` (or a :class:`numpy.random.Generator`)
so every experiment in the repository is reproducible.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.engine.table import Table


def _rng(seed: int | np.random.Generator) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def uniform_column(n: int, low: int = 0, high: int = 1_000_000, seed: int | np.random.Generator = 0) -> np.ndarray:
    """``n`` int64 values uniform in ``[low, high)``."""
    return _rng(seed).integers(low, high, size=n, dtype=np.int64)


def normal_column(n: int, mean: float = 0.0, std: float = 1.0, seed: int | np.random.Generator = 0) -> np.ndarray:
    """``n`` float64 values from a normal distribution."""
    return _rng(seed).normal(mean, std, size=n)


def zipfian_column(
    n: int,
    num_values: int = 1000,
    skew: float = 1.1,
    seed: int | np.random.Generator = 0,
) -> np.ndarray:
    """``n`` int64 values in ``[0, num_values)`` with zipfian frequencies.

    Rank 0 is the most frequent value.  ``skew`` > 1 controls the tail; the
    classical zipf exponent.
    """
    rng = _rng(seed)
    ranks = np.arange(1, num_values + 1, dtype=np.float64)
    weights = ranks ** (-skew)
    weights /= weights.sum()
    return rng.choice(num_values, size=n, p=weights).astype(np.int64)


def clustered_column(
    n: int,
    num_clusters: int = 10,
    cluster_std: float = 1000.0,
    value_range: tuple[int, int] = (0, 1_000_000),
    seed: int | np.random.Generator = 0,
) -> np.ndarray:
    """``n`` int64 values drawn around ``num_clusters`` random centers.

    Models the clustered value distributions of scientific archives (e.g.
    sky surveys), where interesting objects concentrate in small regions.
    """
    rng = _rng(seed)
    lo, hi = value_range
    centers = rng.integers(lo, hi, size=num_clusters)
    assignment = rng.integers(0, num_clusters, size=n)
    noise = rng.normal(0.0, cluster_std, size=n)
    values = centers[assignment] + noise
    return np.clip(values, lo, hi - 1).astype(np.int64)


def correlated_columns(
    n: int,
    correlation: float = 0.8,
    seed: int | np.random.Generator = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Two float64 columns with the given Pearson correlation."""
    rng = _rng(seed)
    x = rng.normal(size=n)
    noise = rng.normal(size=n)
    y = correlation * x + np.sqrt(max(0.0, 1.0 - correlation**2)) * noise
    return x, y


def random_walk_series(
    num_series: int,
    length: int,
    step_std: float = 1.0,
    seed: int | np.random.Generator = 0,
) -> np.ndarray:
    """``num_series`` random-walk time series of the given length.

    The standard data-series benchmark generator used by the iSAX line of
    work ([68] and predecessors): cumulative sums of gaussian steps,
    z-normalised per series.
    """
    rng = _rng(seed)
    steps = rng.normal(0.0, step_std, size=(num_series, length))
    series = np.cumsum(steps, axis=1)
    means = series.mean(axis=1, keepdims=True)
    stds = series.std(axis=1, keepdims=True)
    stds[stds == 0] = 1.0
    return (series - means) / stds


def grid_table(
    side: int,
    value_fn: str = "hotspots",
    num_hotspots: int = 5,
    seed: int | np.random.Generator = 0,
) -> Table:
    """A ``side x side`` 2-D grid with x, y and a value column.

    ``value_fn`` selects the surface shape:

    - ``"hotspots"``: gaussian bumps at random centers on low background —
      the semantic-windows workload (regions with high average value).
    - ``"gradient"``: a smooth diagonal ramp.
    - ``"noise"``: iid gaussian noise.
    """
    rng = _rng(seed)
    xs, ys = np.meshgrid(np.arange(side), np.arange(side), indexing="ij")
    xs = xs.ravel()
    ys = ys.ravel()
    if value_fn == "hotspots":
        values = rng.normal(0.0, 0.2, size=side * side)
        for _ in range(num_hotspots):
            cx, cy = rng.integers(0, side, size=2)
            amplitude = rng.uniform(3.0, 6.0)
            width = rng.uniform(side * 0.02, side * 0.08) + 1.0
            values += amplitude * np.exp(
                -((xs - cx) ** 2 + (ys - cy) ** 2) / (2 * width**2)
            )
    elif value_fn == "gradient":
        values = (xs + ys) / (2.0 * side)
    elif value_fn == "noise":
        values = rng.normal(size=side * side)
    else:
        raise ValueError(f"unknown value_fn {value_fn!r}")
    return Table.from_dict(
        {"x": xs.astype(np.int64), "y": ys.astype(np.int64), "value": values}
    )


_REGIONS = ("north", "south", "east", "west", "central")
_CATEGORIES = ("tools", "toys", "food", "books", "garden", "auto", "music", "sports")


def sales_table(
    n: int,
    num_products: int = 200,
    group_skew: float = 1.2,
    seed: int | np.random.Generator = 0,
) -> Table:
    """A synthetic sales fact table used across the AQP and SeeDB experiments.

    Columns: ``region`` and ``category`` (categorical, zipfian-skewed so
    some groups are rare — the BlinkDB stratified-sampling stress case),
    ``product_id``, ``price``, ``quantity``, ``revenue``, ``discount``.
    """
    rng = _rng(seed)
    region_idx = zipfian_column(n, num_values=len(_REGIONS), skew=group_skew, seed=rng)
    category_idx = zipfian_column(n, num_values=len(_CATEGORIES), skew=group_skew, seed=rng)
    product_id = rng.integers(0, num_products, size=n, dtype=np.int64)
    base_price = rng.lognormal(mean=3.0, sigma=0.6, size=n)
    quantity = rng.integers(1, 10, size=n, dtype=np.int64)
    discount = np.round(rng.choice([0.0, 0.05, 0.1, 0.2], size=n), 2)
    # regions have systematically different price levels so that per-group
    # aggregates genuinely differ (needed by SeeDB-style deviation search)
    region_factor = 1.0 + 0.25 * region_idx
    price = np.round(base_price * region_factor, 2)
    revenue = np.round(price * quantity * (1.0 - discount), 2)
    return Table.from_dict(
        {
            "region": [_REGIONS[i] for i in region_idx],
            "category": [_CATEGORIES[i] for i in category_idx],
            "product_id": product_id,
            "price": price,
            "quantity": quantity,
            "discount": discount,
            "revenue": revenue,
        }
    )
