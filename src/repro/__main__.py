"""An interactive exploration shell: ``python -m repro``.

Accepts both plain SQL (SELECT / CREATE / INSERT / UPDATE / DELETE / DROP
/ EXPLAIN [ANALYZE]) and the declarative exploration language (EXPLORE /
STEER / FACETS / RECOMMEND VIEWS / SEGMENT / APPROX / DIVERSIFY), plus a
few shell meta-commands:

=================  ===================================================
``\\tables``        list tables
``\\demo [n]``      load the synthetic sales demo table (default 20k rows)
``\\load f AS t``   NoDB-load a CSV file as table ``t`` (lazy, adaptive)
``\\explain q``     show the plan for a SELECT
``\\threads [n]``   show or set the parallel worker count (0 = serial)
``\\timeout [ms]``  show or set the per-query deadline (0 = off)
``\\delta [rows]``  show per-table delta-store state; set the merge threshold
``\\metrics``       dump the metrics-registry snapshot as JSON
``\\pragma``        list every setting with its source (default/env/pragma)
``\\shards``        show per-table shard layout, rows per shard and skew
``\\wal``           show durability status (WAL file, records, sync policy)
``\\checkpoint``    write an atomic checkpoint and retire the WAL
``\\help``          this text
``\\quit``          exit
=================  ===================================================

``PRAGMA threads=N`` / ``PRAGMA morsel_rows=N`` tune the morsel-driven
parallel executor from SQL; ``\\threads`` is the shell shorthand.
``PRAGMA timeout_ms/memory_budget_kb/degrade/faults=...`` tune the query
governor; ``\\timeout`` is the shorthand for the deadline.  With ``PRAGMA
degrade=1`` a query that blows its budget returns an approximate answer
(flagged under the result) instead of an error.  Ctrl-C cancels the
running query and returns to the prompt; the session stays usable.
``PRAGMA dict_encode/zone_rows/plan_cache/plan_cache_size=...`` tune the
scan accelerators (dictionary-encoded strings, zone-map data skipping,
the catalog-versioned plan cache) and ``PRAGMA optimizer=0/1`` toggles
the rule-based plan optimizer (constant folding, predicate pushdown,
probe merging, projection pruning, join reordering, filter+aggregate
fusion) — all on by default and bit-identical to the plain path.
``PRAGMA delta_rows=N`` tunes the batched write path: INSERT appends to
a per-table delta store and DELETE marks tombstones, with a merge into
the columnar main once pending writes reach N (0 = merge on every
write); ``\\delta`` shows each table's pending state.
``PRAGMA storage=memory|mmap`` (env ``REPRO_STORAGE``) selects how
durable databases open checkpointed columns: ``mmap`` maps them as
read-only views so cold tables never materialise in RAM, zone-map
pruning skips the disk read itself (watch ``io.bytes_read``,
``io.zones_skipped_io`` and ``io.morsels_streamed`` in ``\\metrics`` or
``EXPLAIN ANALYZE``), and a checkpoint re-homes the session onto the
new files.

``EXPLAIN ANALYZE SELECT ...`` runs the query under the profiler and
prints per-plan-node wall time, row counts and bytes touched.

``python -m repro --db <dir>`` opens a *durable* session: every write
goes through a CRC-checksummed write-ahead log under ``<dir>`` and the
session's tables are recovered on the next open — kill the process at
any point and committed statements survive.  ``\\checkpoint`` compacts
the log into an atomic snapshot; ``PRAGMA wal_sync=off|commit|batch``
trades fsync cost against the size of the window a crash can lose.  The
database is closed cleanly (WAL flushed) on exit and on interrupt.

Non-interactive use: pipe commands on stdin, or pass a single command
with ``python -m repro -c "<command>"`` (combinable with ``--db``).
"""

from __future__ import annotations

import sys

from repro.core import ExplorationLanguage, ExplorationSession
from repro.engine.table import Table
from repro.errors import ReproError

_LANGUAGE_HEADS = (
    "EXPLORE", "STEER", "FACETS", "RECOMMEND", "SEGMENT", "APPROX", "DIVERSIFY",
)
_SQL_HEADS = (
    "SELECT", "CREATE", "INSERT", "UPDATE", "DELETE", "DROP", "EXPLAIN", "PRAGMA",
)


class Shell:
    """The REPL state: one session plus the command dispatcher."""

    def __init__(self, db_path: str | None = None) -> None:
        db = None
        if db_path is not None:
            from repro.engine.catalog import Database

            db = Database(path=db_path)
        self.session = ExplorationSession(db)
        self.language = ExplorationLanguage(self.session)

    def close(self) -> None:
        """Close the underlying database (flushes the WAL); idempotent."""
        self.session.db.close()

    # -- meta commands ---------------------------------------------------------------

    def _meta(self, line: str) -> str:
        parts = line[1:].split()
        command = parts[0].lower() if parts else "help"
        if command == "tables":
            names = self.session.db.table_names()
            if not names:
                return "(no tables; try \\demo)"
            lines = []
            for name in names:
                table = self.session.db.get_table(name)
                lines.append(
                    f"{name}: {table.num_rows} rows "
                    f"({', '.join(table.column_names)})"
                )
            return "\n".join(lines)
        if command == "demo":
            from repro.workloads import sales_table

            n = int(parts[1]) if len(parts) > 1 else 20_000
            if self.session.db.has_table("sales"):
                return "table 'sales' already exists"
            self.session.load_table("sales", sales_table(n, seed=0))
            return f"loaded demo table 'sales' with {n} rows"
        if command == "load":
            if len(parts) < 4 or parts[2].upper() != "AS":
                return "usage: \\load <file.csv> AS <table>"
            from repro.loading import RawTable

            raw = RawTable(parts[1])
            table = raw.to_table()
            self.session.load_table(parts[3], table)
            return f"loaded {parts[1]} as '{parts[3]}' ({table.num_rows} rows)"
        if command == "explain":
            sql = line[1:].split(None, 1)[1]
            return self.session.db.explain(sql)
        if command == "threads":
            from repro.engine import parallel

            if len(parts) > 1:
                try:
                    parallel.set_threads(int(parts[1]))
                except ValueError:
                    return "usage: \\threads [n]   (n >= 0; 0 = serial)"
            config = parallel.get_config()
            mode = "serial" if config.threads < 2 else "parallel"
            return (
                f"threads = {config.threads} ({mode}), "
                f"morsel_rows = {config.morsel_rows}, "
                f"min_parallel_rows = {config.min_parallel_rows}"
            )
        if command == "timeout":
            from repro import resilience

            if len(parts) > 1:
                try:
                    resilience.configure(timeout_ms=int(parts[1]))
                except ValueError:
                    return "usage: \\timeout [ms]   (ms >= 0; 0 = no deadline)"
            timeout_ms = resilience.get_config().timeout_ms
            return f"timeout = {f'{timeout_ms} ms' if timeout_ms else 'off'}"
        if command == "delta":
            from repro.engine import delta as deltamod

            db = self.session.db
            if len(parts) > 1:
                try:
                    db.execute(f"PRAGMA delta_rows={int(parts[1])}")
                except ValueError:
                    return "usage: \\delta [rows]   (rows >= 0; 0 = merge on every write)"
            lines = [f"delta_rows = {deltamod.get_config().delta_rows}"]
            for name in db.table_names():
                store = db.delta_store_if_dirty(name)
                if store is None:
                    continue
                lines.append(
                    f"{name}: {store.pending_inserts} pending rows, "
                    f"{store.main_tombstones + len(store.dead_delta)} tombstones"
                )
            if len(lines) == 1:
                lines.append("(all tables merged)")
            return "\n".join(lines)
        if command == "metrics":
            from repro.obs import get_registry

            return get_registry().to_json(indent=2)
        if command == "pragma":
            table = self.session.db.execute("PRAGMA")
            assert isinstance(table, Table)
            return table.pretty(limit=table.num_rows)
        if command == "shards":
            from repro.engine import shards as shardsmod

            db = self.session.db
            config = shardsmod.get_config()
            lines = [
                f"shards = {config.shards}, shard_by = {config.shard_by}, "
                f"shard_min_rows = {config.shard_min_rows}, "
                f"shard_index = {int(config.shard_index)}"
            ]
            for name in db.table_names():
                layout = db.shard_layout(name)
                if layout is None:
                    lines.append(f"{name}: unsharded")
                    continue
                rows = [layout.shard_rows(s) for s in range(layout.num_shards)]
                avg = layout.total_rows / layout.num_shards if layout.num_shards else 0
                skew = (max(rows) / avg) if avg else 0.0
                lines.append(
                    f"{name}: {layout.num_shards} shards by "
                    f"{layout.mode}({layout.key}), rows {rows} "
                    f"(skew {skew:.2f})"
                )
            if len(lines) == 1:
                lines.append("(no tables)")
            return "\n".join(lines)
        if command == "wal":
            manager = self.session.db.durability
            if manager is None:
                return "in-memory session (restart with --db <dir> for durability)"
            status = manager.status()
            return (
                f"root = {status['root']}\n"
                f"wal file = {status['wal_file']} "
                f"({status['records_logged']} records this session, "
                f"{status['durable_records']} durable; "
                f"{status['wal_bytes']} bytes, {status['durable_bytes']} synced)\n"
                f"checkpoint = {status['checkpoint_id']}, "
                f"sync policy = {status['sync_policy']}, "
                f"logging = {'on' if status['logging'] else 'off'}"
            )
        if command == "checkpoint":
            if self.session.db.durability is None:
                return "in-memory session (restart with --db <dir> for durability)"
            return f"checkpoint written: {self.session.db.checkpoint()}"
        if command in ("quit", "exit", "q"):
            raise EOFError
        return __doc__ or ""

    # -- dispatch ---------------------------------------------------------------------

    def execute(self, line: str) -> str:
        """Execute one input line; returns the rendered response."""
        stripped = line.strip()
        if not stripped:
            return ""
        if stripped.startswith("\\"):
            return self._meta(stripped)
        head = stripped.split(None, 1)[0].upper()
        if head in _LANGUAGE_HEADS:
            return self.language.run(stripped).text
        if head in _SQL_HEADS:
            if head == "SELECT":
                result = self.session.sql(stripped)
                footer = f"({result.num_rows} rows)"
                if getattr(result, "degraded", False):
                    footer += (
                        f"\n(approximate: sampled {result.sample_rows} of "
                        f"{result.total_rows} rows at "
                        f"{result.confidence:.0%} confidence — {result.reason})"
                    )
                return result.pretty() + "\n" + footer
            if head == "EXPLAIN":
                plan = self.session.db.execute(stripped)
                assert isinstance(plan, Table)
                return "\n".join(str(v) for v in plan.column("plan").to_list())
            affected = self.session.db.execute(stripped)
            if isinstance(affected, Table):  # e.g. the PRAGMA read form
                return affected.pretty()
            if head == "PRAGMA":
                return "ok"
            return f"ok ({affected} rows affected)"
        return (
            f"unrecognised command {head!r}; enter SQL, an exploration "
            "command, or \\help"
        )

    def run(self, stream, interactive: bool) -> None:
        """Main loop over an input stream."""
        if interactive:
            print("repro exploration shell — \\help for help, \\demo for data")
        while True:
            if interactive:
                sys.stdout.write("repro> ")
                sys.stdout.flush()
            line = stream.readline()
            if not line:
                break
            try:
                output = self.execute(line)
            except EOFError:
                break
            except KeyboardInterrupt:
                # Ctrl-C mid-query: the engine normally converts this to
                # QueryCancelledError (a ReproError), but an interrupt
                # outside governed execution can still land here.  Close
                # any spans the interrupt abandoned and keep the session.
                from repro.obs.tracing import get_tracer

                get_tracer().unwind()
                output = "(cancelled)"
            except ReproError as exc:
                output = f"error: {exc}"
            if output:
                print(output)


def main(argv: list[str] | None = None) -> int:
    """Entry point."""
    argv = list(sys.argv[1:] if argv is None else argv)
    db_path: str | None = None
    if "--db" in argv:
        position = argv.index("--db")
        if position + 1 >= len(argv):
            print("usage: python -m repro [--db <dir>] [-c '<command>']", file=sys.stderr)
            return 2
        db_path = argv[position + 1]
        del argv[position : position + 2]
    try:
        shell = Shell(db_path=db_path)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    # close on every exit path — including Ctrl-C at the prompt — so a
    # durable session's WAL tail is always flushed
    try:
        if argv[:1] == ["-c"]:
            if len(argv) < 2:
                print("usage: python -m repro -c '<command>'", file=sys.stderr)
                return 2
            try:
                print(shell.execute(argv[1]))
            except ReproError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 1
            return 0
        try:
            shell.run(sys.stdin, interactive=sys.stdin.isatty())
        except KeyboardInterrupt:
            print("(interrupted)")
        return 0
    finally:
        shell.close()


if __name__ == "__main__":
    raise SystemExit(main())
