"""Data synopses: samples, histograms, wavelets, sketches ([16, 5]).

The four classical synopsis families the tutorial's approximate-processing
discussion builds on, each answering queries from a small-space summary:

- :mod:`repro.synopses.histogram` — equi-width, equi-depth and max-diff
  bucket histograms for range counts/selectivities.
- :mod:`repro.synopses.wavelet` — Haar wavelet synopses with largest-B
  coefficient thresholding.
- :mod:`repro.synopses.sketches` — Count-Min (point frequency), AMS
  (second moment / self-join size), HyperLogLog (distinct count) and
  Bloom filters (membership).
- :mod:`repro.synopses.samples` — the sample-as-synopsis baseline.

All expose a common surface: build from a value array, report their
``size_bytes``, and estimate the query family they support; the S8
benchmark sweeps accuracy against space across all of them.
"""

from repro.synopses.histogram import (
    EquiDepthHistogram,
    EquiWidthHistogram,
    MaxDiffHistogram,
)
from repro.synopses.wavelet import HaarWaveletSynopsis
from repro.synopses.sketches import (
    AMSSketch,
    BloomFilter,
    CountMinSketch,
    GKQuantileSketch,
    HyperLogLog,
)
from repro.synopses.samples import SampleSynopsis

__all__ = [
    "AMSSketch",
    "BloomFilter",
    "CountMinSketch",
    "EquiDepthHistogram",
    "GKQuantileSketch",
    "EquiWidthHistogram",
    "HaarWaveletSynopsis",
    "HyperLogLog",
    "MaxDiffHistogram",
    "SampleSynopsis",
]
