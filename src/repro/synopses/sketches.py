"""Streaming sketches: Count-Min, AMS, HyperLogLog, Bloom.

All four are implemented over simple salted-hash families (Python's
``hash`` is randomised per process, so an explicit multiply-shift family
keyed by seeds is used instead — deterministic and portable).
"""

from __future__ import annotations

import hashlib
import math
from typing import Any, Iterable

import numpy as np


def _hash64(item: Any, seed: int) -> int:
    """A deterministic (cross-process) 64-bit salted hash of any item.

    Python's built-in ``hash`` is randomised per process for strings, so
    sketches keyed on it would not be reproducible; blake2b with the seed
    as key is deterministic and well mixed.
    """
    key = (seed & 0xFFFFFFFFFFFFFFFF).to_bytes(8, "little")
    digest = hashlib.blake2b(repr(item).encode(), digest_size=8, key=key).digest()
    return int.from_bytes(digest, "little")


class CountMinSketch:
    """Count-Min sketch for point-frequency estimation (overestimates).

    Args:
        epsilon: additive error factor (width = ceil(e / epsilon)).
        delta: failure probability (depth = ceil(ln 1/delta)).
    """

    def __init__(self, epsilon: float = 0.001, delta: float = 0.01) -> None:
        if not (0 < epsilon < 1 and 0 < delta < 1):
            raise ValueError("epsilon and delta must be in (0, 1)")
        self.width = max(1, math.ceil(math.e / epsilon))
        self.depth = max(1, math.ceil(math.log(1.0 / delta)))
        self._table = np.zeros((self.depth, self.width), dtype=np.int64)
        self.items_added = 0

    @property
    def size_bytes(self) -> int:
        """Approximate storage footprint."""
        return int(self._table.nbytes)

    def add(self, item: Any, count: int = 1) -> None:
        """Record ``count`` occurrences of ``item``."""
        for row in range(self.depth):
            self._table[row, _hash64(item, row) % self.width] += count
        self.items_added += count

    def extend(self, items: Iterable[Any]) -> None:
        """Record each element of an iterable once."""
        for item in items:
            self.add(item)

    def estimate(self, item: Any) -> int:
        """Estimated frequency of ``item`` (never underestimates)."""
        return int(
            min(
                self._table[row, _hash64(item, row) % self.width]
                for row in range(self.depth)
            )
        )

    def merge(self, other: "CountMinSketch") -> "CountMinSketch":
        """Merge two identically shaped sketches."""
        if (self.width, self.depth) != (other.width, other.depth):
            raise ValueError("can only merge sketches of identical shape")
        merged = CountMinSketch.__new__(CountMinSketch)
        merged.width = self.width
        merged.depth = self.depth
        merged._table = self._table + other._table
        merged.items_added = self.items_added + other.items_added
        return merged


class AMSSketch:
    """AMS (tug-of-war) sketch estimating the second frequency moment F2.

    F2 equals the self-join size of the attribute — the classical
    join-size estimator of the synopses survey.
    """

    def __init__(self, num_counters: int = 256, seed: int = 0) -> None:
        if num_counters <= 0:
            raise ValueError("num_counters must be positive")
        self.num_counters = num_counters
        self._seed = seed
        self._counters = np.zeros(num_counters, dtype=np.float64)

    @property
    def size_bytes(self) -> int:
        """Approximate storage footprint."""
        return int(self._counters.nbytes)

    def _sign(self, item: Any, counter: int) -> int:
        return 1 if _hash64(item, (self._seed << 16) ^ counter) & 1 else -1

    def add(self, item: Any, count: int = 1) -> None:
        """Record ``count`` occurrences of ``item``."""
        for counter in range(self.num_counters):
            self._counters[counter] += count * self._sign(item, counter)

    def extend(self, items: Iterable[Any]) -> None:
        """Record each element of an iterable once."""
        for item in items:
            self.add(item)

    def estimate_f2(self) -> float:
        """Median-of-means estimate of F2."""
        squares = self._counters**2
        groups = np.array_split(squares, max(1, self.num_counters // 16))
        means = [float(group.mean()) for group in groups if len(group)]
        return float(np.median(means))


class HyperLogLog:
    """HyperLogLog distinct-count estimator.

    Args:
        precision: p; 2**p registers (4..16).
    """

    def __init__(self, precision: int = 12) -> None:
        if not 4 <= precision <= 16:
            raise ValueError("precision must be in [4, 16]")
        self.precision = precision
        self.num_registers = 1 << precision
        self._registers = np.zeros(self.num_registers, dtype=np.int8)

    @property
    def size_bytes(self) -> int:
        """Approximate storage footprint."""
        return int(self._registers.nbytes)

    def add(self, item: Any) -> None:
        """Record one item."""
        h = _hash64(item, 0xBEEF)
        register = h >> (64 - self.precision)
        remainder = h & ((1 << (64 - self.precision)) - 1)
        rank = (64 - self.precision) - remainder.bit_length() + 1
        if rank > self._registers[register]:
            self._registers[register] = rank

    def extend(self, items: Iterable[Any]) -> None:
        """Record each element of an iterable."""
        for item in items:
            self.add(item)

    def estimate(self) -> float:
        """Estimated number of distinct items seen."""
        m = self.num_registers
        alpha = 0.7213 / (1.0 + 1.079 / m)
        harmonic = float(np.sum(2.0 ** (-self._registers.astype(np.float64))))
        raw = alpha * m * m / harmonic
        zeros = int(np.count_nonzero(self._registers == 0))
        if raw <= 2.5 * m and zeros > 0:
            return float(m * math.log(m / zeros))  # linear counting
        return float(raw)

    def merge(self, other: "HyperLogLog") -> "HyperLogLog":
        """Merge two sketches of identical precision."""
        if self.precision != other.precision:
            raise ValueError("can only merge HLLs of identical precision")
        merged = HyperLogLog(self.precision)
        merged._registers = np.maximum(self._registers, other._registers)
        return merged


class BloomFilter:
    """Bloom filter for approximate set membership (no false negatives).

    Args:
        capacity: expected number of distinct items.
        false_positive_rate: target FP rate at capacity.
    """

    def __init__(self, capacity: int = 10_000, false_positive_rate: float = 0.01) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0 < false_positive_rate < 1:
            raise ValueError("false_positive_rate must be in (0, 1)")
        ln2 = math.log(2.0)
        self.num_bits = max(8, math.ceil(-capacity * math.log(false_positive_rate) / (ln2 * ln2)))
        self.num_hashes = max(1, round(self.num_bits / capacity * ln2))
        self._bits = np.zeros(self.num_bits, dtype=bool)
        self.items_added = 0

    @property
    def size_bytes(self) -> int:
        """Approximate storage footprint (1 bit per slot, rounded up)."""
        return (self.num_bits + 7) // 8

    def add(self, item: Any) -> None:
        """Insert one item."""
        for seed in range(self.num_hashes):
            self._bits[_hash64(item, seed) % self.num_bits] = True
        self.items_added += 1

    def extend(self, items: Iterable[Any]) -> None:
        """Insert each element of an iterable."""
        for item in items:
            self.add(item)

    def __contains__(self, item: Any) -> bool:
        return all(
            self._bits[_hash64(item, seed) % self.num_bits]
            for seed in range(self.num_hashes)
        )


class GKQuantileSketch:
    """Greenwald–Khanna ε-approximate quantile summary.

    Maintains a compressed list of tuples ``(value, g, Δ)`` guaranteeing
    that any quantile query is answered within ``epsilon * n`` rank error
    using O((1/ε)·log(εn)) space — the classical streaming quantile
    synopsis of the survey.
    """

    def __init__(self, epsilon: float = 0.01) -> None:
        if not 0 < epsilon < 1:
            raise ValueError("epsilon must be in (0, 1)")
        self.epsilon = epsilon
        # entries: (value, g, delta)
        self._entries: list[tuple[float, int, int]] = []
        self.count = 0

    @property
    def size_bytes(self) -> int:
        """Approximate storage footprint."""
        return len(self._entries) * 24

    @property
    def num_entries(self) -> int:
        """Tuples currently stored."""
        return len(self._entries)

    def add(self, value: float) -> None:
        """Insert one value."""
        value = float(value)
        self.count += 1
        threshold = max(1, int(2 * self.epsilon * self.count))
        entries = self._entries
        # find insertion position
        lo, hi = 0, len(entries)
        while lo < hi:
            mid = (lo + hi) // 2
            if entries[mid][0] < value:
                lo = mid + 1
            else:
                hi = mid
        position = lo
        if position == 0 or position == len(entries):
            entries.insert(position, (value, 1, 0))
        else:
            delta = threshold - 1
            entries.insert(position, (value, 1, max(0, delta)))
        if self.count % max(1, int(1.0 / (2 * self.epsilon))) == 0:
            self._compress()

    def extend(self, values: Iterable[float]) -> None:
        """Insert each element of an iterable."""
        for value in values:
            self.add(value)

    def _compress(self) -> None:
        threshold = max(1, int(2 * self.epsilon * self.count))
        entries = self._entries
        i = len(entries) - 2
        while i >= 1:
            value, g, delta = entries[i]
            next_value, next_g, next_delta = entries[i + 1]
            if g + next_g + next_delta < threshold:
                entries[i + 1] = (next_value, g + next_g, next_delta)
                del entries[i]
            i -= 1

    def quantile(self, fraction: float) -> float:
        """The value at the given quantile fraction in [0, 1].

        Raises:
            ValueError: on an empty sketch or out-of-range fraction.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        if not self._entries:
            raise ValueError("cannot query an empty sketch")
        rank = max(1, int(math.ceil(fraction * self.count)))
        margin = max(1, int(self.epsilon * self.count))
        running = 0
        for value, g, delta in self._entries:
            running += g
            if running + delta >= rank + margin:
                return value
        return self._entries[-1][0]

    def rank_error_bound(self) -> int:
        """Guaranteed maximum rank error of any quantile answer."""
        return max(1, int(self.epsilon * self.count))
