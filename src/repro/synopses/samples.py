"""The sample-as-synopsis baseline.

A uniform sample is the most general synopsis: it answers any query the
full data answers, by scaling.  Its weakness — variance on selective
ranges — is exactly what the histogram/wavelet synopses trade generality
away to fix, and the S8 benchmark makes that trade-off visible.
"""

from __future__ import annotations

import numpy as np

_FLOAT_BYTES = 8


class SampleSynopsis:
    """A uniform row sample of one numeric column.

    Args:
        values: column payload.
        sample_size: rows kept.
        seed: RNG seed.
    """

    def __init__(self, values: np.ndarray, sample_size: int = 256, seed: int = 0) -> None:
        values = np.asarray(values, dtype=np.float64)
        self.total = len(values)
        rng = np.random.default_rng(seed)
        size = min(sample_size, len(values))
        if size == 0:
            self._sample = np.empty(0)
        else:
            self._sample = values[rng.choice(len(values), size=size, replace=False)]

    @property
    def size_bytes(self) -> int:
        """Approximate storage footprint."""
        return len(self._sample) * _FLOAT_BYTES

    @property
    def sample_size(self) -> int:
        """Rows kept."""
        return len(self._sample)

    def estimate_range_count(self, low: float, high: float) -> float:
        """Estimated rows with value in ``[low, high]``."""
        if len(self._sample) == 0:
            return 0.0
        fraction = float(np.mean((self._sample >= low) & (self._sample <= high)))
        return fraction * self.total

    def estimate_selectivity(self, low: float, high: float) -> float:
        """Estimated fraction of rows in ``[low, high]``."""
        if self.total == 0:
            return 0.0
        return self.estimate_range_count(low, high) / self.total

    def estimate_mean(self) -> float:
        """Estimated column mean."""
        if len(self._sample) == 0:
            return 0.0
        return float(self._sample.mean())
