"""Haar wavelet synopses.

The column's frequency vector (over a power-of-two value grid) is
transformed with the normalised Haar wavelet; keeping only the ``B``
largest-magnitude coefficients gives a synopsis whose reconstruction
minimises L2 error among all B-term Haar approximations — the classical
wavelet synopsis of the Cormode et al. survey ([16]).

Range counts are answered by reconstructing only the coefficients on the
root-to-leaf paths of the range endpoints, i.e. in O(B + log n) rather
than by materialising the full vector.
"""

from __future__ import annotations

import math

import numpy as np

_FLOAT_BYTES = 8
_INDEX_BYTES = 4


def haar_transform(vector: np.ndarray) -> np.ndarray:
    """Orthonormal Haar transform of a power-of-two-length vector."""
    data = np.asarray(vector, dtype=np.float64).copy()
    n = len(data)
    if n & (n - 1):
        raise ValueError("haar transform needs a power-of-two length")
    output = data.copy()
    length = n
    while length > 1:
        half = length // 2
        evens = output[0:length:2].copy()
        odds = output[1:length:2].copy()
        output[:half] = (evens + odds) / math.sqrt(2.0)
        output[half:length] = (evens - odds) / math.sqrt(2.0)
        length = half
    return output


def inverse_haar_transform(coefficients: np.ndarray) -> np.ndarray:
    """Inverse of :func:`haar_transform`."""
    data = np.asarray(coefficients, dtype=np.float64).copy()
    n = len(data)
    if n & (n - 1):
        raise ValueError("inverse haar transform needs a power-of-two length")
    length = 2
    while length <= n:
        half = length // 2
        averages = data[:half].copy()
        details = data[half:length].copy()
        data[0:length:2] = (averages + details) / math.sqrt(2.0)
        data[1:length:2] = (averages - details) / math.sqrt(2.0)
        length *= 2
    return data


class HaarWaveletSynopsis:
    """A B-term Haar synopsis of a numeric column.

    Args:
        values: column payload.
        num_coefficients: B, terms retained.
        grid_size: resolution of the frequency vector (rounded up to a
            power of two).
    """

    def __init__(
        self,
        values: np.ndarray,
        num_coefficients: int = 32,
        grid_size: int = 1024,
    ) -> None:
        values = np.asarray(values, dtype=np.float64)
        self.total = len(values)
        n = 1
        while n < grid_size:
            n *= 2
        self.grid_size = n
        if len(values) == 0:
            self.domain = (0.0, 1.0)
            self._kept_indices = np.empty(0, dtype=np.int64)
            self._kept_values = np.empty(0)
            return
        lo, hi = float(values.min()), float(values.max())
        # a span too small for n finite bins (including zero) degenerates
        # to a unit domain; (hi - lo) / n underflows for subnormal spans
        if hi == lo or (hi - lo) / n == 0.0:
            hi = lo + 1.0
        self.domain = (lo, hi)
        frequencies, _ = np.histogram(values, bins=n, range=(lo, hi))
        coefficients = haar_transform(frequencies.astype(np.float64))
        order = np.argsort(np.abs(coefficients))[::-1]
        keep = order[: min(num_coefficients, n)]
        self._kept_indices = np.sort(keep).astype(np.int64)
        self._kept_values = coefficients[self._kept_indices]

    @property
    def size_bytes(self) -> int:
        """Approximate storage footprint."""
        return len(self._kept_indices) * (_FLOAT_BYTES + _INDEX_BYTES)

    def reconstruct(self) -> np.ndarray:
        """The approximate frequency vector implied by the kept terms."""
        coefficients = np.zeros(self.grid_size)
        coefficients[self._kept_indices] = self._kept_values
        return inverse_haar_transform(coefficients)

    def estimate_range_count(self, low: float, high: float) -> float:
        """Estimated rows with value in ``[low, high]``.

        Boundary grid cells contribute fractionally (uniform spread inside
        a cell), which keeps the full-coefficient synopsis near-exact.
        """
        if self.total == 0 or high < low:
            return 0.0
        lo, hi = self.domain
        if high < lo or low > hi:
            return 0.0
        width = (hi - lo) / self.grid_size
        left = np.clip((max(low, lo) - lo) / width, 0.0, self.grid_size)
        right = np.clip((min(high, hi) - lo) / width, 0.0, self.grid_size)
        approx = self.reconstruct()
        first = int(math.floor(left))
        last = min(int(math.floor(right)), self.grid_size - 1)
        if first == last:
            return float(max(0.0, approx[first] * (right - left)))
        covered = approx[first] * (first + 1 - left)
        covered += approx[first + 1 : last].sum()
        covered += approx[last] * (right - last)
        return float(max(0.0, covered))

    def estimate_point_frequency(self, value: float) -> float:
        """Estimated frequency of one grid cell's worth of values."""
        if self.total == 0:
            return 0.0
        lo, hi = self.domain
        if value < lo or value > hi:
            return 0.0
        width = (hi - lo) / self.grid_size
        cell = min(int((value - lo) / width), self.grid_size - 1)
        return float(max(0.0, self.reconstruct()[cell]))
