"""Bucket histograms for range-count estimation.

Three classical constructions over a numeric column:

- :class:`EquiWidthHistogram` — equal-width buckets; cheapest to build,
  weakest on skew.
- :class:`EquiDepthHistogram` — equal-frequency buckets (quantiles);
  robust to skew, the standard optimizer histogram.
- :class:`MaxDiffHistogram` — bucket boundaries at the largest
  frequency *differences* (Poosala et al.), concentrating buckets where
  the distribution changes fastest.

All assume uniform spread inside a bucket when estimating partial
overlaps (the continuous-values assumption).
"""

from __future__ import annotations

import abc

import numpy as np

_FLOAT_BYTES = 8


class Histogram(abc.ABC):
    """Base class: bucket boundaries + per-bucket counts.

    ``distinct_counts`` (distinct values per bucket) supports point-query
    estimation under the per-bucket uniform-frequency assumption.
    """

    def __init__(
        self,
        bounds: np.ndarray,
        counts: np.ndarray,
        total: int,
        distinct_counts: np.ndarray | None = None,
    ) -> None:
        if len(bounds) != len(counts) + 1:
            raise ValueError("need exactly one more bound than counts")
        self.bounds = np.asarray(bounds, dtype=np.float64)
        self.counts = np.asarray(counts, dtype=np.float64)
        self.total = total
        self.distinct_counts = (
            np.asarray(distinct_counts, dtype=np.float64)
            if distinct_counts is not None
            else None
        )

    def estimate_point_frequency(self, value: float) -> float:
        """Estimated frequency of one exact value (count / NDV in bucket)."""
        if self.total == 0 or value < self.bounds[0] or value > self.bounds[-1]:
            return 0.0
        bucket = int(np.searchsorted(self.bounds, value, side="right")) - 1
        bucket = min(max(bucket, 0), self.num_buckets - 1)
        if self.distinct_counts is not None:
            ndv = max(1.0, float(self.distinct_counts[bucket]))
        else:
            ndv = max(1.0, self.counts[bucket])  # worst case: all distinct
        return float(self.counts[bucket] / ndv)

    @property
    def num_buckets(self) -> int:
        """Number of buckets."""
        return len(self.counts)

    @property
    def size_bytes(self) -> int:
        """Approximate storage footprint."""
        return _FLOAT_BYTES * (len(self.bounds) + len(self.counts))

    def estimate_range_count(self, low: float, high: float) -> float:
        """Estimated rows with value in ``[low, high]``."""
        if high < low:
            return 0.0
        if high == low:
            return self.estimate_point_frequency(low)
        covered = 0.0
        for i in range(self.num_buckets):
            b_lo, b_hi = self.bounds[i], self.bounds[i + 1]
            if b_hi < low or b_lo > high:
                continue
            width = b_hi - b_lo
            if width <= 0:
                if low <= b_lo <= high:
                    covered += self.counts[i]
                continue
            overlap = min(high, b_hi) - max(low, b_lo)
            covered += self.counts[i] * max(0.0, overlap) / width
        return float(covered)

    def estimate_selectivity(self, low: float, high: float) -> float:
        """Estimated fraction of rows in ``[low, high]``."""
        if self.total == 0:
            return 0.0
        return self.estimate_range_count(low, high) / self.total


def _distinct_per_bucket(values: np.ndarray, bounds: np.ndarray) -> np.ndarray:
    """Distinct-value counts per histogram bucket."""
    distinct = np.unique(values)
    counts, _ = np.histogram(distinct, bins=bounds)
    return counts


class EquiWidthHistogram(Histogram):
    """Equal-width buckets over the value domain."""

    def __init__(self, values: np.ndarray, num_buckets: int = 32) -> None:
        values = np.asarray(values, dtype=np.float64)
        if len(values) == 0:
            super().__init__(np.array([0.0, 1.0]), np.array([0.0]), 0)
            return
        lo, hi = float(values.min()), float(values.max())
        if hi == lo:
            hi = lo + 1.0
        counts, bounds = np.histogram(values, bins=num_buckets, range=(lo, hi))
        super().__init__(
            bounds, counts, len(values), _distinct_per_bucket(values, bounds)
        )


class EquiDepthHistogram(Histogram):
    """Equal-frequency (quantile) buckets."""

    def __init__(self, values: np.ndarray, num_buckets: int = 32) -> None:
        values = np.asarray(values, dtype=np.float64)
        if len(values) == 0:
            super().__init__(np.array([0.0, 1.0]), np.array([0.0]), 0)
            return
        quantiles = np.linspace(0.0, 1.0, num_buckets + 1)
        bounds = np.quantile(values, quantiles)
        bounds = np.asarray(bounds, dtype=np.float64)
        # collapse duplicate boundaries produced by heavy hitters
        bounds = np.unique(bounds)
        if len(bounds) < 2:
            bounds = np.array([bounds[0], bounds[0] + 1.0])
        counts, _ = np.histogram(values, bins=bounds)
        super().__init__(
            bounds, counts, len(values), _distinct_per_bucket(values, bounds)
        )


class MaxDiffHistogram(Histogram):
    """Boundaries placed at the largest adjacent-frequency differences."""

    def __init__(self, values: np.ndarray, num_buckets: int = 32) -> None:
        values = np.asarray(values, dtype=np.float64)
        if len(values) == 0:
            super().__init__(np.array([0.0, 1.0]), np.array([0.0]), 0)
            return
        distinct, frequencies = np.unique(values, return_counts=True)
        if len(distinct) <= num_buckets:
            # one bucket per distinct value: exact
            bounds = np.concatenate([distinct, [distinct[-1] + 1e-9]])
            super().__init__(
                bounds, frequencies, len(values), np.ones(len(frequencies))
            )
            return
        diffs = np.abs(np.diff(frequencies.astype(np.float64)))
        cut_positions = np.sort(np.argsort(diffs)[-(num_buckets - 1):])
        bounds_list = [float(distinct[0])]
        for position in cut_positions:
            bounds_list.append(float(distinct[position + 1]))
        bounds_list.append(float(distinct[-1]) + 1e-9)
        bounds = np.asarray(bounds_list)
        counts, _ = np.histogram(values, bins=bounds)
        super().__init__(
            bounds, counts, len(values), _distinct_per_bucket(values, bounds)
        )
