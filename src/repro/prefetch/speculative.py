"""Speculative execution through a cache (DICE-style [35]).

On each foreground request the executor answers from the cache when it
can; afterwards it asks its predictor where the user is likely to go next
and computes those tiles *speculatively*, so the following request is
(ideally) a hit.  Foreground cost — what the user waits for — and
background (speculative) cost are tracked separately: the entire point of
the technique is converting foreground latency into background work.
"""

from __future__ import annotations

from typing import Callable, Hashable, Protocol, Sequence

from repro.prefetch.cache import TileCache


class Predictor(Protocol):
    """Anything that ranks likely next regions from recent history."""

    def predict(self, recent: Sequence[Hashable], k: int = 1) -> list[Hashable]:
        """The k most likely next keys, most likely first."""
        ...


class SpeculativeExecutor:
    """Cache + predictor + compute function.

    Args:
        compute: expensive function from a region key to its result; its
            cost is measured with ``cost_of`` per call.
        cache: the result cache.
        predictor: ranks candidate next regions; may be None (pure cache).
        fanout: how many predictions to prefetch per request.
        cost_of: maps a computed result to its cost (default: 1 per call).
    """

    def __init__(
        self,
        compute: Callable[[Hashable], object],
        cache: TileCache,
        predictor: Predictor | None = None,
        fanout: int = 2,
        cost_of: Callable[[object], float] | None = None,
    ) -> None:
        self.compute = compute
        self.cache = cache
        self.predictor = predictor
        self.fanout = fanout
        self.cost_of = cost_of or (lambda result: 1.0)
        self.history: list[Hashable] = []
        self.foreground_cost = 0.0
        self.background_cost = 0.0

    def request(self, key: Hashable) -> object:
        """Serve one foreground request, then speculate."""
        result = self.cache.get(key)
        if result is None:
            result = self.compute(key)
            self.foreground_cost += self.cost_of(result)
            self.cache.put(key, result)
        self.history.append(key)
        self._speculate()
        return result

    def _speculate(self) -> None:
        if self.predictor is None or self.fanout <= 0:
            return
        for candidate in self.predictor.predict(self.history, k=self.fanout):
            if candidate in self.cache:
                continue
            try:
                result = self.compute(candidate)
            except (ValueError, KeyError):
                continue  # predictor guessed an invalid region
            self.background_cost += self.cost_of(result)
            self.cache.put(candidate, result, prefetched=True)

    @property
    def hit_rate(self) -> float:
        """Foreground cache hit rate so far."""
        return self.cache.stats.hit_rate
