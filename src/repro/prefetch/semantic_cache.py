"""A semantic cache for range queries.

The paper's future-work section calls for "reusing past or in-progress
query results"; this is the classical mechanism for it on range
predicates: the cache remembers which *value intervals* of a column have
been materialised, answers the covered part of a new range locally, and
fetches only the uncovered *remainder intervals* from the base data.

Unlike the tile cache (exact-key reuse), a semantic cache gives partial
hits: a query for ``[10, 90)`` after ``[0, 50)`` fetches only ``[50, 90)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.obs.metrics import register_stats_source


@dataclass
class SemanticCacheStats:
    """Rows served locally vs fetched from the base data."""

    queries: int = 0
    rows_from_cache: int = 0
    rows_fetched: int = 0
    remainder_queries: int = 0

    @property
    def cache_fraction(self) -> float:
        """Share of returned rows that came from the cache."""
        total = self.rows_from_cache + self.rows_fetched
        if total == 0:
            return 0.0
        return self.rows_from_cache / total


class SemanticRangeCache:
    """Caches the rows of half-open value intervals ``[low, high)``.

    Args:
        fetch: function mapping ``(low, high)`` to the base-table row ids
            whose value lies in ``[low, high)`` — the expensive operation
            the cache avoids.
    """

    def __init__(self, fetch: Callable[[float, float], np.ndarray]) -> None:
        self._fetch = fetch
        # disjoint sorted intervals with their cached row ids
        self._intervals: list[tuple[float, float, np.ndarray]] = []
        self.stats = SemanticCacheStats()
        register_stats_source("prefetch.semantic_cache", self)

    def metrics(self) -> dict[str, float]:
        """Snapshot for the metrics registry."""
        return {
            "queries": self.stats.queries,
            "rows_from_cache": self.stats.rows_from_cache,
            "rows_fetched": self.stats.rows_fetched,
            "remainder_queries": self.stats.remainder_queries,
            "cache_fraction": self.stats.cache_fraction,
            "intervals": len(self._intervals),
        }

    # -- interval arithmetic ------------------------------------------------------------

    def coverage(self) -> list[tuple[float, float]]:
        """The currently cached intervals (sorted, disjoint)."""
        return [(low, high) for low, high, _ in self._intervals]

    def _remainders(self, low: float, high: float) -> list[tuple[float, float]]:
        """Sub-intervals of [low, high) not covered by the cache."""
        gaps = []
        cursor = low
        for c_low, c_high, _ in self._intervals:
            if c_high <= cursor or c_low >= high:
                continue
            if c_low > cursor:
                gaps.append((cursor, min(c_low, high)))
            cursor = max(cursor, c_high)
            if cursor >= high:
                break
        if cursor < high:
            gaps.append((cursor, high))
        return gaps

    def _merge_in(self, low: float, high: float, rows: np.ndarray) -> None:
        """Insert a new interval, coalescing overlaps."""
        new_low, new_high = low, high
        merged_rows = [rows]
        survivors = []
        for c_low, c_high, c_rows in self._intervals:
            if c_high < new_low or c_low > new_high:
                survivors.append((c_low, c_high, c_rows))
            else:
                new_low = min(new_low, c_low)
                new_high = max(new_high, c_high)
                merged_rows.append(c_rows)
        combined = np.unique(np.concatenate(merged_rows)) if merged_rows else rows
        survivors.append((new_low, new_high, combined))
        survivors.sort(key=lambda item: item[0])
        self._intervals = survivors

    # -- queries -------------------------------------------------------------------------

    def query(self, low: float, high: float) -> np.ndarray:
        """Row ids with value in ``[low, high)``, fetching only the gaps."""
        if high <= low:
            return np.empty(0, dtype=np.int64)
        self.stats.queries += 1
        gaps = self._remainders(low, high)
        fetched_chunks = []
        for gap_low, gap_high in gaps:
            chunk = np.asarray(self._fetch(gap_low, gap_high), dtype=np.int64)
            self.stats.remainder_queries += 1
            self.stats.rows_fetched += len(chunk)
            fetched_chunks.append((gap_low, gap_high, chunk))
        for gap_low, gap_high, chunk in fetched_chunks:
            self._merge_in(gap_low, gap_high, chunk)
        # assemble the answer from the (now covering) cached intervals;
        # cached row ids outside [low, high) are filtered by re-probing the
        # cached intervals' bounds: collect all cached rows overlapping
        result_chunks = []
        cached_rows = 0
        for c_low, c_high, c_rows in self._intervals:
            if c_high <= low or c_low >= high:
                continue
            result_chunks.append(c_rows)
            cached_rows += len(c_rows)
        if not result_chunks:
            return np.empty(0, dtype=np.int64)
        candidates = np.unique(np.concatenate(result_chunks))
        fetched_now = sum(len(chunk) for _, _, chunk in fetched_chunks)
        self.stats.rows_from_cache += max(0, len(candidates) - fetched_now)
        return candidates

    def query_filtered(
        self, low: float, high: float, values: np.ndarray
    ) -> np.ndarray:
        """Like :meth:`query` but trims the answer exactly to ``[low, high)``
        using the provided value array (cached intervals can be wider)."""
        candidates = self.query(low, high)
        if len(candidates) == 0:
            return candidates
        selected = values[candidates]
        keep = (selected >= low) & (selected < high)
        return candidates[keep]
