"""An LRU result cache for navigation tiles / query results."""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable

from repro.obs.metrics import register_stats_source


@dataclass
class CacheStats:
    """Hit/miss accounting."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    prefetch_insertions: int = 0

    @property
    def requests(self) -> int:
        """Foreground requests observed."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Foreground hit rate in [0, 1] (0 when nothing was requested)."""
        if self.requests == 0:
            return 0.0
        return self.hits / self.requests


class TileCache:
    """A bounded LRU cache keyed by hashable region descriptors.

    Args:
        capacity: maximum entries kept.
    """

    def __init__(self, capacity: int = 64) -> None:
        if capacity <= 0:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        self.stats = CacheStats()
        register_stats_source("prefetch.tile_cache", self)

    def metrics(self) -> dict[str, Any]:
        """Snapshot for the metrics registry."""
        return {
            "capacity": self.capacity,
            "entries": len(self._entries),
            "hits": self.stats.hits,
            "misses": self.stats.misses,
            "evictions": self.stats.evictions,
            "prefetch_insertions": self.stats.prefetch_insertions,
            "hit_rate": self.stats.hit_rate,
        }

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def get(self, key: Hashable) -> Any | None:
        """Foreground lookup; counts toward the hit rate."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return self._entries[key]
        self.stats.misses += 1
        return None

    def peek(self, key: Hashable) -> Any | None:
        """Lookup without recency update or stats impact."""
        return self._entries.get(key)

    def put(self, key: Hashable, value: Any, prefetched: bool = False) -> None:
        """Insert (or refresh) an entry, evicting the LRU entry if full."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self._entries[key] = value
            return
        if len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        self._entries[key] = value
        if prefetched:
            self.stats.prefetch_insertions += 1

    def clear(self) -> None:
        """Drop all entries (stats are kept)."""
        self._entries.clear()
