"""A multi-resolution tiled aggregation cube over an engine table.

This is the navigation space the cube-exploration systems ([37, 35]) work
in: two dimension columns are binned into tiles at several zoom levels,
and a tile request aggregates a measure over the tile's extent.  Tile
computation cost (rows scanned) is tracked so the prefetching benchmarks
can report foreground vs background work.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.table import Table

#: Region key: (level, x, y).  Level 0 is the coarsest.
Region = tuple[int, int, int]


@dataclass(frozen=True)
class Tile:
    """One computed tile: its aggregate plus metadata."""

    region: Region
    row_count: int
    aggregate: float
    x_range: tuple[float, float]
    y_range: tuple[float, float]


class CubeNavigator:
    """Aggregation tiles over (x, y) dimensions of a table.

    Args:
        table: base table.
        x_column, y_column: numeric dimension columns.
        measure: numeric column aggregated per tile (mean).
        levels: zoom levels; level ``l`` has ``base_tiles * 2**l`` tiles
            per axis.
        base_tiles: tiles per axis at level 0.
    """

    def __init__(
        self,
        table: Table,
        x_column: str,
        y_column: str,
        measure: str,
        levels: int = 4,
        base_tiles: int = 4,
    ) -> None:
        self.table = table
        self.levels = levels
        self.base_tiles = base_tiles
        self._x = np.asarray(table.column(x_column).data, dtype=np.float64)
        self._y = np.asarray(table.column(y_column).data, dtype=np.float64)
        self._measure = np.asarray(table.column(measure).data, dtype=np.float64)
        self._x_domain = (float(self._x.min()), float(self._x.max()))
        self._y_domain = (float(self._y.min()), float(self._y.max()))
        self.rows_scanned = 0
        self.tiles_computed = 0

    def tiles_per_axis(self, level: int) -> int:
        """Tiles per axis at a zoom level."""
        return self.base_tiles * (2**level)

    def region_is_valid(self, region: Region) -> bool:
        """True if the region key addresses a real tile."""
        level, x, y = region
        if not 0 <= level < self.levels:
            return False
        side = self.tiles_per_axis(level)
        return 0 <= x < side and 0 <= y < side

    def tile_bounds(self, region: Region) -> tuple[tuple[float, float], tuple[float, float]]:
        """Value-domain extent of one tile."""
        level, x, y = region
        side = self.tiles_per_axis(level)
        x_lo, x_hi = self._x_domain
        y_lo, y_hi = self._y_domain
        x_width = (x_hi - x_lo) / side or 1.0
        y_width = (y_hi - y_lo) / side or 1.0
        return (
            (x_lo + x * x_width, x_lo + (x + 1) * x_width),
            (y_lo + y * y_width, y_lo + (y + 1) * y_width),
        )

    def compute_tile(self, region: Region) -> Tile:
        """Aggregate the measure over the tile's extent (a full scan —
        deliberately expensive, which is what prefetching hides)."""
        if not self.region_is_valid(region):
            raise ValueError(f"invalid region {region!r}")
        (x_lo, x_hi), (y_lo, y_hi) = self.tile_bounds(region)
        mask = (
            (self._x >= x_lo)
            & (self._x <= x_hi)
            & (self._y >= y_lo)
            & (self._y <= y_hi)
        )
        self.rows_scanned += len(self._x)
        self.tiles_computed += 1
        count = int(mask.sum())
        aggregate = float(self._measure[mask].mean()) if count else 0.0
        return Tile(
            region=region,
            row_count=count,
            aggregate=aggregate,
            x_range=(x_lo, x_hi),
            y_range=(y_lo, y_hi),
        )

    def neighbours(self, region: Region) -> list[Region]:
        """Regions reachable in one navigation move from ``region``."""
        level, x, y = region
        candidates = [
            (level, x - 1, y),
            (level, x + 1, y),
            (level, x, y - 1),
            (level, x, y + 1),
            (level + 1, x * 2, y * 2),
            (level - 1, x // 2, y // 2),
        ]
        return [r for r in candidates if self.region_is_valid(r)]

    def infer_move(self, previous: Region, current: Region) -> str:
        """Name the navigation move that connects two adjacent regions."""
        p_level, p_x, p_y = previous
        level, x, y = current
        if level > p_level:
            return "drill"
        if level < p_level:
            return "roll"
        if x < p_x:
            return "left"
        if x > p_x:
            return "right"
        if y < p_y:
            return "up"
        if y > p_y:
            return "down"
        return "stay"

    def apply_move(self, region: Region, move: str) -> Region:
        """The region a move leads to (clamped to the grid)."""
        level, x, y = region
        if move == "drill" and level < self.levels - 1:
            level, x, y = level + 1, x * 2, y * 2
        elif move == "roll" and level > 0:
            level, x, y = level - 1, x // 2, y // 2
        elif move == "left":
            x -= 1
        elif move == "right":
            x += 1
        elif move == "up":
            y -= 1
        elif move == "down":
            y += 1
        side = self.tiles_per_axis(level)
        return (level, int(np.clip(x, 0, side - 1)), int(np.clip(y, 0, side - 1)))


class MoveBasedRegionPredictor:
    """Adapts a move-level Markov predictor to region prediction.

    Translates the recent region history into moves, asks the move model
    for likely next moves, and maps those back to concrete regions via the
    navigator — the actions-based prediction mode of ForeCache.
    """

    def __init__(self, navigator: CubeNavigator, move_model) -> None:
        self.navigator = navigator
        self.move_model = move_model

    def predict(self, recent, k: int = 1) -> list[Region]:
        """The ``k`` most likely next regions given recent region history."""
        if not recent:
            return []
        current = recent[-1]
        moves = [
            self.navigator.infer_move(a, b) for a, b in zip(recent[:-1], recent[1:])
        ]
        predicted_moves = self.move_model.predict(moves, k=k + 2) if moves else []
        regions: list[Region] = []
        for move in predicted_moves:
            if move == "stay":
                continue
            region = self.navigator.apply_move(current, move)
            if region != current and region not in regions:
                regions.append(region)
            if len(regions) >= k:
                break
        return regions

    def observe_transition(self, history, new_region: Region) -> None:
        """Online-train the move model from one observed navigation step."""
        if not history:
            return
        moves = [
            self.navigator.infer_move(a, b) for a, b in zip(history[:-1], history[1:])
        ]
        next_move = self.navigator.infer_move(history[-1], new_region)
        self.move_model.observe_step(moves, next_move)
