"""Prefetching & speculative execution middleware (paper §2.2).

Sits between the interaction layer and the engine, reducing perceived
latency during navigation-style exploration:

- :class:`TileCache` — result cache with LRU eviction and hit accounting.
- :class:`MarkovPredictor` — learns move transitions from sessions
  (ForeCache/DICE-style [37, 35]) to guess where the user goes next.
- :class:`TrajectoryIndex` — SCOUT-style ([63]) indexing of *past* user
  trajectories; prediction by matching the current path's suffix.
- :class:`SpeculativeExecutor` — serves requests through the cache and
  speculatively executes the predictor's top guesses in the background.
- :class:`CubeNavigator` — a multi-resolution tiled aggregation cube over
  an engine table, the navigation space the predictors operate on.
"""

from repro.prefetch.cache import CacheStats, TileCache
from repro.prefetch.markov import MarkovPredictor
from repro.prefetch.trajectory import TrajectoryIndex
from repro.prefetch.speculative import SpeculativeExecutor
from repro.prefetch.cube import CubeNavigator, Tile
from repro.prefetch.semantic_cache import SemanticRangeCache
from repro.prefetch.hybrid_predictor import HybridRegionPredictor

__all__ = [
    "CacheStats",
    "CubeNavigator",
    "HybridRegionPredictor",
    "MarkovPredictor",
    "SemanticRangeCache",
    "SpeculativeExecutor",
    "Tile",
    "TileCache",
    "TrajectoryIndex",
]
