"""Markov move prediction for navigation sessions (ForeCache-style).

Navigation interfaces expose a small move vocabulary (pan directions,
drill, roll).  A :class:`MarkovPredictor` of order ``k`` learns
``P(next move | last k moves)`` from observed sessions and predicts the
most likely continuations — the *actions-based* predictor the cube
exploration systems ([37, 35]) use for speculative execution.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Hashable, Sequence


class MarkovPredictor:
    """An order-``k`` Markov model over a discrete move alphabet.

    Args:
        order: history length conditioning each prediction.
        smoothing: additive (Laplace) smoothing mass per known move.
    """

    def __init__(self, order: int = 1, smoothing: float = 0.1) -> None:
        if order < 1:
            raise ValueError("order must be at least 1")
        self.order = order
        self.smoothing = smoothing
        self._transitions: dict[tuple[Hashable, ...], Counter] = defaultdict(Counter)
        self._alphabet: set[Hashable] = set()
        self.observations = 0

    def observe_sequence(self, moves: Sequence[Hashable]) -> None:
        """Train on one completed session's move sequence."""
        for move in moves:
            self._alphabet.add(move)
        for i in range(len(moves) - self.order):
            context = tuple(moves[i : i + self.order])
            self._transitions[context][moves[i + self.order]] += 1
            self.observations += 1

    def observe_step(self, history: Sequence[Hashable], next_move: Hashable) -> None:
        """Online update from a single observed transition."""
        self._alphabet.add(next_move)
        for move in history[-self.order :]:
            self._alphabet.add(move)
        if len(history) >= self.order:
            context = tuple(history[-self.order :])
            self._transitions[context][next_move] += 1
            self.observations += 1

    def distribution(self, history: Sequence[Hashable]) -> dict[Hashable, float]:
        """Smoothed probability of each known move given the history.

        Falls back to shorter contexts (and finally the uniform
        distribution) when the full context was never seen.
        """
        if not self._alphabet:
            return {}
        context = tuple(history[-self.order :]) if len(history) >= self.order else None
        counter = self._transitions.get(context, Counter()) if context else Counter()
        if not counter and len(history) >= 1:
            # back-off: aggregate all contexts ending with the last move
            last = history[-1]
            counter = Counter()
            for ctx, moves in self._transitions.items():
                if ctx and ctx[-1] == last:
                    counter.update(moves)
        total = sum(counter.values()) + self.smoothing * len(self._alphabet)
        return {
            move: (counter.get(move, 0) + self.smoothing) / total
            for move in self._alphabet
        }

    def predict(self, history: Sequence[Hashable], k: int = 1) -> list[Hashable]:
        """The ``k`` most likely next moves, most likely first."""
        dist = self.distribution(history)
        ranked = sorted(dist.items(), key=lambda kv: (-kv[1], str(kv[0])))
        return [move for move, _ in ranked[:k]]

    def accuracy(self, sessions: Sequence[Sequence[Hashable]]) -> float:
        """Top-1 predictive accuracy over held-out sessions."""
        correct = 0
        total = 0
        for session in sessions:
            for i in range(self.order, len(session)):
                prediction = self.predict(session[:i], k=1)
                if prediction and prediction[0] == session[i]:
                    correct += 1
                total += 1
        return correct / total if total else 0.0
