"""ForeCache-style hybrid prediction: actions + data characteristics.

The cube-exploration systems found that *neither* signal suffices alone:

- the **actions-based** (Markov) model captures momentum — analysts keep
  panning the way they were panning;
- the **data-driven** model captures attraction — analysts move toward
  tiles that look like what they have been dwelling on (here: tiles whose
  aggregate value resembles the recently visited tiles').

:class:`HybridRegionPredictor` blends both: candidate neighbours are
scored by ``mix · P(move) + (1 − mix) · similarity(candidate, recent)``,
which degrades gracefully to either pure model at ``mix`` 1 or 0.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.prefetch.cube import CubeNavigator, MoveBasedRegionPredictor, Region
from repro.prefetch.markov import MarkovPredictor


class HybridRegionPredictor:
    """Blends move momentum with tile-content similarity.

    Args:
        navigator: the cube being explored (provides neighbours and tile
            aggregates; tile values are read from a small cache of already
            computed tiles, never recomputed for prediction).
        move_model: a trained :class:`MarkovPredictor` over moves.
        mix: weight of the actions-based signal in [0, 1].
        recency: how many recent tiles define the "current interest".
    """

    def __init__(
        self,
        navigator: CubeNavigator,
        move_model: MarkovPredictor,
        mix: float = 0.6,
        recency: int = 3,
    ) -> None:
        if not 0.0 <= mix <= 1.0:
            raise ValueError("mix must be in [0, 1]")
        self.navigator = navigator
        self.move_model = move_model
        self.mix = mix
        self.recency = recency
        self._action_predictor = MoveBasedRegionPredictor(navigator, move_model)
        self._tile_values: dict[Region, float] = {}

    def observe_tile(self, region: Region, aggregate: float) -> None:
        """Record a computed tile's aggregate (fed by the executor)."""
        self._tile_values[region] = float(aggregate)

    def _recent_level(self, recent: Sequence[Region]) -> float | None:
        values = [
            self._tile_values[region]
            for region in list(recent)[-self.recency :]
            if region in self._tile_values
        ]
        if not values:
            return None
        return float(np.mean(values))

    def _similarity(self, candidate: Region, target_level: float, scale: float) -> float:
        value = self._tile_values.get(candidate)
        if value is None:
            # unknown content: neutral prior
            return 0.5
        return float(np.exp(-abs(value - target_level) / max(scale, 1e-9)))

    def predict(self, recent: Sequence[Region], k: int = 1) -> list[Region]:
        """The ``k`` most likely next regions given recent history."""
        if not recent:
            return []
        current = recent[-1]
        candidates = self.navigator.neighbours(current)
        if not candidates:
            return []
        # actions signal: rank from the move model (higher = more likely)
        action_ranked = self._action_predictor.predict(recent, k=len(candidates))
        action_score = {
            region: 1.0 - position / max(1, len(action_ranked))
            for position, region in enumerate(action_ranked)
        }
        # data signal: similarity to the recently dwelled-on tile values
        target_level = self._recent_level(recent)
        known = [v for v in self._tile_values.values()]
        scale = float(np.std(known)) if len(known) > 1 else 1.0
        scores = []
        for candidate in candidates:
            action = action_score.get(candidate, 0.0)
            if target_level is None:
                data = 0.5
            else:
                data = self._similarity(candidate, target_level, scale)
            scores.append((self.mix * action + (1.0 - self.mix) * data, candidate))
        scores.sort(key=lambda item: (-item[0], str(item[1])))
        return [region for _, region in scores[:k]]

    def observe_transition(self, history: Sequence[Region], new_region: Region) -> None:
        """Online-train the move model from one observed step."""
        self._action_predictor.observe_transition(list(history), new_region)
