"""Trajectory-based prefetching (SCOUT [63]).

SCOUT observes that analysts *follow latent structures*: different users
exploring the same dataset trace similar region sequences.  It therefore
indexes complete past trajectories and, given the live session's recent
path, retrieves historical continuations of the best-matching suffix —
predicting *regions* directly rather than abstract moves.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Hashable, Sequence


class TrajectoryIndex:
    """Suffix index over past region trajectories.

    Args:
        max_suffix: longest suffix length indexed/matched.
    """

    def __init__(self, max_suffix: int = 3) -> None:
        if max_suffix < 1:
            raise ValueError("max_suffix must be at least 1")
        self.max_suffix = max_suffix
        # suffix tuple -> Counter of next regions
        self._continuations: dict[tuple[Hashable, ...], Counter] = defaultdict(Counter)
        self.trajectories_indexed = 0

    def index_trajectory(self, regions: Sequence[Hashable]) -> None:
        """Add one completed trajectory to the index."""
        n = len(regions)
        for i in range(1, n):
            for length in range(1, min(self.max_suffix, i) + 1):
                suffix = tuple(regions[i - length : i])
                self._continuations[suffix][regions[i]] += 1
        self.trajectories_indexed += 1

    def predict(self, recent: Sequence[Hashable], k: int = 1) -> list[Hashable]:
        """The ``k`` most likely next regions given the live path.

        Tries the longest indexed suffix first and backs off to shorter
        ones, merging votes weighted by suffix length.
        """
        votes: Counter = Counter()
        for length in range(min(self.max_suffix, len(recent)), 0, -1):
            suffix = tuple(recent[-length:])
            continuations = self._continuations.get(suffix)
            if continuations:
                weight = 2**length  # longer matches dominate
                for region, count in continuations.items():
                    votes[region] += weight * count
        ranked = sorted(votes.items(), key=lambda kv: (-kv[1], str(kv[0])))
        return [region for region, _ in ranked[:k]]

    def known_suffixes(self) -> int:
        """Number of distinct suffixes indexed."""
        return len(self._continuations)
