"""repro — a data exploration engine.

Reproduction of "Overview of Data Exploration Techniques" (Idreos,
Papaemmanouil & Chaudhuri, SIGMOD 2015).  The package mirrors the paper's
three-layer organisation:

- :mod:`repro.engine` — the column-store substrate (storage, SQL, planner).
- Database Layer (§2.3): :mod:`repro.indexing` (adaptive indexing /
  cracking, iSAX), :mod:`repro.loading` (NoDB-style raw-file access),
  :mod:`repro.storage` (adaptive layouts).
- Middleware (§2.2): :mod:`repro.sampling` (online aggregation, BlinkDB),
  :mod:`repro.synopses` (histograms, wavelets, sketches),
  :mod:`repro.prefetch` (speculation, Markov models, trajectories).
- User Interaction (§2.1): :mod:`repro.explore` (AIDE, SeeDB, QBO,
  diversification, semantic windows), :mod:`repro.viz`,
  :mod:`repro.interface` (dbtouch, gestures, keyword search).
- :mod:`repro.core` — the ExplorationSession facade and the paper's
  Table 1 taxonomy.
- :mod:`repro.obs` — observability: metrics registry, span tracing,
  ``EXPLAIN ANALYZE`` profiling.
- :mod:`repro.resilience` — the query governor: deadlines, cancellation,
  memory budgets, graceful degradation to approximate answers, and a
  deterministic fault-injection harness.
"""

from repro.engine import Column, Database, DataType, Table, col, lit
from repro.obs import enable_tracing, get_registry, get_tracer, trace

__version__ = "1.0.0"

__all__ = [
    "Column",
    "Database",
    "DataType",
    "Table",
    "col",
    "lit",
    "enable_tracing",
    "get_registry",
    "get_tracer",
    "trace",
    "__version__",
]
