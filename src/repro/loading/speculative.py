"""Speculative in-situ loading (Cheng & Rusu [15]).

NoDB-style raw querying parses a column the moment a query needs it —
and the user waits for that parse.  Speculative loading exploits two
facts to fill otherwise-idle capacity:

1. **marginal cost**: when a query forces tokenisation up to field ``j``
   of every line, all fields before ``j`` are already delimited in the
   positional map, so parsing them is nearly free — the "load more while
   you're there" observation at the core of [15];
2. **workload hints**: if the application knows which columns the
   workload favours (templates, dashboards), those are speculated first.

After each foreground query the loader parses up to
``speculation_budget`` additional columns, cheapest/most-hinted first,
charging the work to ``background_cost``.  Follow-up queries that find
their columns already parsed register as ``speculative_hits`` and pay
(near-)zero foreground parsing.
"""

from __future__ import annotations

from collections import Counter
from pathlib import Path
from typing import Sequence

from repro.engine.catalog import Database
from repro.engine.table import Table
from repro.loading.raw_table import RawTable


class SpeculativeLoader:
    """Raw-file querying with background column speculation.

    Args:
        db: target database for invisible loading.
        table_name: name the growing table is registered under.
        path: the raw CSV file.
        speculation_budget: columns speculatively parsed after each query.
        workload_hint: optional column-priority ordering from the
            application (earlier = speculated sooner).
    """

    def __init__(
        self,
        db: Database,
        table_name: str,
        path: str | Path,
        speculation_budget: int = 1,
        workload_hint: Sequence[str] | None = None,
    ) -> None:
        self.db = db
        self.table_name = table_name
        self.raw = RawTable(path)
        self.speculation_budget = speculation_budget
        self.workload_hint = list(workload_hint or [])
        self._access_counts: Counter = Counter()
        self.foreground_costs: list[int] = []
        self.background_cost = 0
        self.speculative_hits = 0

    # -- speculation policy ---------------------------------------------------------

    def _candidates(self) -> list[str]:
        """Unparsed columns ranked: hinted first, then tokenisation-free
        ones (left of the rightmost parsed column), then the rest."""
        names = self.raw.column_names
        parsed = set(self.raw.columns_parsed)
        unparsed = [c for c in names if c not in parsed]
        if not unparsed:
            return []
        parsed_indices = [names.index(c) for c in parsed] or [-1]
        frontier = max(parsed_indices)

        def rank(column: str) -> tuple:
            hinted = (
                self.workload_hint.index(column)
                if column in self.workload_hint
                else len(self.workload_hint)
            )
            tokenisation_free = 0 if names.index(column) <= frontier else 1
            return (hinted, tokenisation_free, names.index(column))

        return sorted(unparsed, key=rank)

    # -- querying ----------------------------------------------------------------------

    def query(self, sql: str) -> Table:
        """Run one query; speculate on candidate columns afterwards.

        The foreground cost is what the user waited for; speculation is
        charged to ``background_cost``.
        """
        parsed_before = set(self.raw.columns_parsed)
        cost_before = self.raw.fields_parsed + self.raw.fields_tokenized
        result = self.raw.sql_over(self.db, self.table_name, sql)
        cost_after = self.raw.fields_parsed + self.raw.fields_tokenized
        self.foreground_costs.append(cost_after - cost_before)
        newly_parsed = set(self.raw.columns_parsed) - parsed_before
        if not newly_parsed and parsed_before:
            # the query ran entirely on already-materialised columns
            self.speculative_hits += 1
        for column in self.raw.columns_parsed:
            self._access_counts[column] += 1

        # background speculation
        for column in self._candidates()[: self.speculation_budget]:
            before = self.raw.fields_parsed + self.raw.fields_tokenized
            self.raw.fetch_column(column)
            self.background_cost += (
                self.raw.fields_parsed + self.raw.fields_tokenized - before
            )
        return result

    @property
    def fraction_loaded(self) -> float:
        """Share of columns materialised so far (foreground + speculative)."""
        return len(self.raw.columns_parsed) / max(1, len(self.raw.column_names))
