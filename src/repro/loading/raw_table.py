"""In-situ querying of raw CSV files (NoDB [28, 8]).

A :class:`RawTable` never loads the file up front.  The first access reads
raw lines into memory (charged as ``bytes_read``); each query then parses
only the columns it needs, for only the rows it needs, caching parsed
values so later queries touching the same columns are as fast as a loaded
table.  This reproduces NoDB's headline behaviour: the first query is
slower than on a loaded system, but the *cumulative* time to the N-th
query is far lower when the workload touches a fraction of the columns.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

import numpy as np

from repro.engine.column import Column
from repro.engine.csv_io import infer_field_type, parse_field, split_line
from repro.engine.table import Table
from repro.engine.types import DataType
from repro.errors import LoadingError
from repro.loading.positional_map import PositionalMap


class RawTable:
    """A CSV file queryable in place with lazy, cached parsing.

    Args:
        path: CSV file with a header row.
        dtypes: per-column types; inferred from a sample when omitted.
        type_sample_rows: rows examined for type inference.
    """

    def __init__(
        self,
        path: str | Path,
        dtypes: Sequence[DataType] | None = None,
        type_sample_rows: int = 50,
    ) -> None:
        self.path = Path(path)
        self._lines: list[str] | None = None
        self._map: PositionalMap | None = None
        self._names: list[str] | None = None
        self._dtypes = list(dtypes) if dtypes is not None else None
        self._type_sample_rows = type_sample_rows
        # parsed-value cache: column index -> list of values (None = NULL)
        self._parsed: dict[int, list] = {}
        self.bytes_read = 0
        self.fields_parsed = 0

    # -- lazy file access -----------------------------------------------------------

    def _ensure_lines(self) -> list[str]:
        if self._lines is None:
            text = self.path.read_text()
            self.bytes_read += len(text)
            raw_lines = text.splitlines()
            if not raw_lines:
                raise LoadingError(f"{self.path} is empty")
            self._names = split_line(raw_lines[0])
            self._lines = raw_lines[1:]
            self._map = PositionalMap(len(self._lines), len(self._names))
            if self._dtypes is None:
                sample = [
                    split_line(line) for line in self._lines[: self._type_sample_rows]
                ]
                self._dtypes = [
                    infer_field_type([row[i] for row in sample])
                    for i in range(len(self._names))
                ]
        return self._lines

    @property
    def column_names(self) -> list[str]:
        """Column names from the header."""
        self._ensure_lines()
        assert self._names is not None
        return list(self._names)

    @property
    def num_rows(self) -> int:
        """Number of data rows."""
        return len(self._ensure_lines())

    @property
    def fields_tokenized(self) -> int:
        """Delimiter-scanning work performed so far."""
        return self._map.fields_tokenized if self._map is not None else 0

    @property
    def columns_parsed(self) -> list[str]:
        """Names of columns whose values are fully cached."""
        self._ensure_lines()
        assert self._names is not None
        return [self._names[i] for i in sorted(self._parsed)]

    def _column_index(self, name: str) -> int:
        names = self.column_names
        try:
            return names.index(name)
        except ValueError:
            raise LoadingError(f"raw file has no column {name!r}") from None

    # -- parsing --------------------------------------------------------------------

    def fetch_column(self, name: str) -> Column:
        """Parse (or fetch from cache) one full column."""
        lines = self._ensure_lines()
        assert self._map is not None and self._dtypes is not None
        index = self._column_index(name)
        if index not in self._parsed:
            dtype = self._dtypes[index]
            values = []
            for row, line in enumerate(lines):
                if '"' in line:
                    # quoted fields can hide delimiters from the positional
                    # map; fall back to a full tokenise for this line
                    field = split_line(line)[index]
                    self.fields_parsed += 1
                    values.append(parse_field(field, dtype))
                    continue
                start, end = self._map.field_bounds(row, index, line)
                values.append(parse_field(line[start:end], dtype))
                self.fields_parsed += 1
            self._parsed[index] = values
        return Column(self._parsed[index], dtype=self._dtypes[index])

    def fetch(self, names: Sequence[str]) -> Table:
        """Parse the requested columns and return them as a table."""
        return Table([(name, self.fetch_column(name)) for name in names])

    def to_table(self) -> Table:
        """Parse every column (equivalent to a full load)."""
        return self.fetch(self.column_names)

    def sql_over(self, db, table_name: str, query: str) -> Table:
        """Run a SQL query, materialising only the columns it references.

        The referenced columns are parsed via the positional map and
        registered (or refreshed) in ``db`` under ``table_name``; this is
        the adaptive part — unreferenced columns are never parsed.
        """
        from repro.engine.sql.parser import parse

        statement = parse(query)
        needed: set[str] = set()
        for item in statement.items:
            if item.star:
                needed.update(self.column_names)
            if item.expression is not None:
                needed |= item.expression.referenced_columns()
            if item.aggregate is not None and item.aggregate.argument is not None:
                needed |= item.aggregate.argument.referenced_columns()
        if statement.where is not None:
            needed |= statement.where.referenced_columns()
        for expr in statement.group_by:
            needed |= expr.referenced_columns()
        for order in statement.order_by:
            needed |= order.expression.referenced_columns()
        available = set(self.column_names)
        needed = {n.split(".", 1)[-1] for n in needed} & available
        self.fetch(sorted(needed) or self.column_names[:1])
        # register everything parsed so far (cached, so this is free) —
        # the invisible-loading behaviour: effort is never thrown away
        partial = self.fetch(self.columns_parsed)
        if db.has_table(table_name):
            db.replace_table(table_name, partial)
        else:
            db.create_table(table_name, partial)
        return db.sql(query)
