"""Adaptive loading: querying raw data files (paper §2.3).

Implements the NoDB line of work the tutorial surveys:

- :class:`RawTable` — query CSV files in situ ([28, 8]): no up-front load;
  lines are tokenised and fields parsed lazily, and a *positional map*
  caches what earlier queries already paid for.
- :class:`InvisibleLoader` — invisible loading ([2]): each query's parsing
  effort is retained as progressively materialised engine columns, so the
  database "loads itself" as a side effect of the workload.
- :class:`SpeculativeLoader` — speculative loading ([15]): idle
  capacity materialises likely-next columns in the background, so
  follow-up queries pay no foreground parsing.
- :func:`full_load` — the traditional comparator: parse everything first.
"""

from repro.loading.raw_table import RawTable
from repro.loading.positional_map import PositionalMap
from repro.loading.invisible import InvisibleLoader, full_load
from repro.loading.speculative import SpeculativeLoader

__all__ = [
    "InvisibleLoader",
    "PositionalMap",
    "RawTable",
    "SpeculativeLoader",
    "full_load",
]
