"""Invisible loading ([2]) and the traditional full-load comparator.

Invisible loading piggy-backs on the workload: each query's parsing effort
is *kept*, as columns materialised into the engine catalog.  After enough
distinct queries the table is fully loaded — without any load phase having
ever been visible to the user.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.engine.catalog import Database
from repro.engine.table import Table
from repro.loading.raw_table import RawTable


@dataclass
class LoadProgress:
    """Snapshot of how much of the raw file has been materialised."""

    columns_loaded: int
    columns_total: int
    fields_parsed: int
    fields_tokenized: int

    @property
    def fraction_loaded(self) -> float:
        """Loaded fraction of the column set, in [0, 1]."""
        if self.columns_total == 0:
            return 1.0
        return self.columns_loaded / self.columns_total


class InvisibleLoader:
    """Runs queries against a raw file, retaining parsed columns in a
    :class:`~repro.engine.catalog.Database`.

    Args:
        db: target database.
        table_name: name under which the growing table is registered.
        path: raw CSV file.
    """

    def __init__(self, db: Database, table_name: str, path: str | Path) -> None:
        self.db = db
        self.table_name = table_name
        self.raw = RawTable(path)
        self.query_costs: list[int] = []

    def query(self, sql: str) -> Table:
        """Execute one query, loading any newly touched columns first."""
        parse_before = self.raw.fields_parsed
        token_before = self.raw.fields_tokenized
        result = self.raw.sql_over(self.db, self.table_name, sql)
        self.query_costs.append(
            (self.raw.fields_parsed - parse_before)
            + (self.raw.fields_tokenized - token_before)
        )
        return result

    def progress(self) -> LoadProgress:
        """Current loading progress."""
        return LoadProgress(
            columns_loaded=len(self.raw.columns_parsed),
            columns_total=len(self.raw.column_names),
            fields_parsed=self.raw.fields_parsed,
            fields_tokenized=self.raw.fields_tokenized,
        )


def full_load(db: Database, table_name: str, path: str | Path) -> tuple[Table, int]:
    """The traditional comparator: parse every field up front.

    Returns the loaded table and the loading cost in parsed fields.
    """
    raw = RawTable(path)
    table = raw.to_table()
    if db.has_table(table_name):
        db.replace_table(table_name, table)
    else:
        db.create_table(table_name, table)
    return table, raw.fields_parsed + raw.fields_tokenized
