"""The positional map: NoDB's core data structure.

For each data row the map remembers the byte offset of the line and, per
column, the character offset of the field *within* the line.  Field
offsets are collected incrementally: when a query needs column ``j`` of a
row whose map knows offsets only up to column ``i < j``, tokenisation
resumes from field ``i`` rather than from the start of the line.

Work accounting distinguishes the two costs the NoDB paper plots:
``fields_tokenized`` (delimiter scanning) and ``fields_parsed``
(string-to-value conversion).
"""

from __future__ import annotations



class PositionalMap:
    """Incremental per-row field-offset cache for one CSV file.

    Args:
        num_rows: data rows in the file.
        num_columns: fields per row.
    """

    def __init__(self, num_rows: int, num_columns: int) -> None:
        self.num_rows = num_rows
        self.num_columns = num_columns
        # offsets[r][k] = character offset of field k's first character;
        # grown left-to-right, so len(offsets[r]) is the tokenisation
        # frontier of row r
        self._offsets: list[list[int]] = [[0] for _ in range(num_rows)]
        self.fields_tokenized = 0

    def frontier(self, row: int) -> int:
        """How many field offsets are known for ``row``."""
        return len(self._offsets[row])

    def field_bounds(self, row: int, column: int, line: str) -> tuple[int, int]:
        """Character range ``[start, end)`` of one field, tokenising as needed.

        ``line`` must be the raw text of the row (without the newline).
        Fields are assumed comma-separated without embedded commas; quoted
        fields are handled by the higher-level reader fallback.
        """
        offsets = self._offsets[row]
        while len(offsets) <= column + 1 and offsets[-1] <= len(line):
            start = offsets[-1]
            comma = line.find(",", start)
            if comma < 0:
                offsets.append(len(line) + 1)
            else:
                offsets.append(comma + 1)
            self.fields_tokenized += 1
        start = offsets[column]
        if column + 1 < len(offsets):
            end = offsets[column + 1] - 1
        else:
            end = len(line)
        return start, min(end, len(line))

    def memory_entries(self) -> int:
        """Total offsets stored (the map's size in entries)."""
        return sum(len(o) for o in self._offsets)
