"""The paper's primary contribution, operationalised.

A survey's "contribution" is its organisation of the field; this package
makes that organisation executable:

- :class:`ExplorationSession` — a single facade wiring the engine,
  the Database-Layer adaptivity, the Middleware approximation/prefetching
  and the User-Interaction assistants into one exploration loop.
- :class:`QueryHistory` — session history, the raw material for
  steering, suggestion and prefetching.
- :mod:`repro.core.steering` — policies that propose the next query.
- :mod:`repro.core.taxonomy` — the paper's Table 1 as data, with a
  validator mapping every cluster to implemented modules (experiment T1).
"""

from repro.core.history import HistoryEntry, QueryHistory
from repro.core.language import CommandResult, ExplorationLanguage
from repro.core.session import ExplorationSession
from repro.core.steering import SteeringSuggestion, ZoomSteering, FacetSteering
from repro.core.taxonomy import TAXONOMY, Cluster, validate_coverage

__all__ = [
    "Cluster",
    "CommandResult",
    "ExplorationLanguage",
    "ExplorationSession",
    "FacetSteering",
    "HistoryEntry",
    "QueryHistory",
    "SteeringSuggestion",
    "TAXONOMY",
    "ZoomSteering",
    "validate_coverage",
]
