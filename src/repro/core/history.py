"""Query history: the session's memory.

Every exploration-support technique in the paper consumes history in some
form — prefetchers learn trajectories from it, suggesters mine it,
steering reacts to it.  :class:`QueryHistory` is the shared record.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator


@dataclass
class HistoryEntry:
    """One executed query and its outcome."""

    sequence: int
    sql: str
    result_rows: int
    tables: frozenset[str] = field(default_factory=frozenset)
    columns: frozenset[str] = field(default_factory=frozenset)


class QueryHistory:
    """Ordered record of a session's queries."""

    def __init__(self) -> None:
        self._entries: list[HistoryEntry] = []

    def record(
        self,
        sql: str,
        result_rows: int,
        tables: frozenset[str] = frozenset(),
        columns: frozenset[str] = frozenset(),
    ) -> HistoryEntry:
        """Append one query to the history."""
        entry = HistoryEntry(
            sequence=len(self._entries),
            sql=sql,
            result_rows=result_rows,
            tables=tables,
            columns=columns,
        )
        self._entries.append(entry)
        return entry

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[HistoryEntry]:
        return iter(self._entries)

    def last(self, n: int = 1) -> list[HistoryEntry]:
        """The most recent ``n`` entries, oldest first."""
        return self._entries[-n:]

    def queries(self) -> list[str]:
        """All SQL texts in order."""
        return [entry.sql for entry in self._entries]

    def column_touch_counts(self) -> dict[str, int]:
        """How often each column appeared across the session."""
        counts: dict[str, int] = {}
        for entry in self._entries:
            for column in entry.columns:
                counts[column] = counts.get(column, 0) + 1
        return counts

    def empty_result_fraction(self) -> float:
        """Share of queries that returned nothing — a signal the user is
        lost, which steering policies react to."""
        if not self._entries:
            return 0.0
        empty = sum(1 for entry in self._entries if entry.result_rows == 0)
        return empty / len(self._entries)
