"""A declarative exploration language (the paper's §2.4 vision).

The tutorial's open-problems section argues that exploration idioms —
steering, facets, diversification, view recommendation, approximation —
deserve a *declarative* surface of their own, so the system can optimise
and compose them.  This module prototypes that language:

=====================================================  ======================
Command                                                 Backed by
=====================================================  ======================
``EXPLORE <table>``                                     VizDeck dashboard
``STEER <table> [TOP k]``                               zoom steering
``FACETS <table> WHERE <pred> [RATIO r]``               YmalDB facets
``RECOMMEND VIEWS <table> FOR <pred> [TOP k]``          SeeDB
``SEGMENT <table>.<column> INTO k``                     Charles segmentation
``APPROX <agg>(<col>) FROM <table> [WHERE <pred>]``     BlinkDB sampling
``  [ERROR e | ROWS n]``
``DIVERSIFY <table> BY <c1>, <c2> RELEVANCE <c>``       MMR diversification
``  [TOP k]``
=====================================================  ======================

Predicates reuse the engine's SQL expression grammar.  Every command
returns a :class:`CommandResult` with both a structured payload and a
rendered text block, so the language works equally for programs and for
an interactive prompt.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.session import ExplorationSession
from repro.engine.expressions import Expression
from repro.engine.sql.parser import parse as parse_sql
from repro.errors import ParseError
from repro.explore.diversify import mmr_diversify
from repro.explore.segment import segment_column
from repro.explore.vizrec import VizDeck


@dataclass
class CommandResult:
    """Outcome of one exploration command."""

    command: str
    payload: Any
    text: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.text


def _parse_predicate(table: str, predicate_sql: str) -> Expression:
    statement = parse_sql(f"SELECT * FROM {table} WHERE {predicate_sql}")
    assert statement.where is not None
    return statement.where


class ExplorationLanguage:
    """Parses and executes exploration commands against a session."""

    def __init__(self, session: ExplorationSession) -> None:
        self.session = session

    def run(self, command: str) -> CommandResult:
        """Execute one command.

        Raises:
            ParseError: on unknown commands or malformed clauses.
        """
        stripped = command.strip().rstrip(";")
        head = stripped.split(None, 1)[0].upper() if stripped else ""
        dispatch = {
            "EXPLORE": self._explore,
            "STEER": self._steer,
            "FACETS": self._facets,
            "RECOMMEND": self._recommend,
            "SEGMENT": self._segment,
            "APPROX": self._approx,
            "DIVERSIFY": self._diversify,
        }
        if head not in dispatch:
            raise ParseError(f"unknown exploration command {head!r}")
        return dispatch[head](stripped)

    # -- commands ---------------------------------------------------------------------

    def _explore(self, command: str) -> CommandResult:
        match = re.match(r"EXPLORE\s+(\w+)$", command, re.IGNORECASE)
        if not match:
            raise ParseError("usage: EXPLORE <table>")
        table_name = match.group(1)
        table = self.session.db.get_table(table_name)
        deck = VizDeck(table).rank(k=5)
        lines = [f"table {table_name}: {table.num_rows} rows"]
        for name in table.column_names:
            column = table.column(name)
            lines.append(
                f"  {name}: {column.dtype.name}, {column.distinct_count()} distinct"
                + (f", {column.null_count()} nulls" if column.has_nulls else "")
            )
        lines.append("suggested charts:")
        for candidate in deck:
            lines.append(f"  {candidate.describe()} (score {candidate.score:.2f})")
        return CommandResult("EXPLORE", deck, "\n".join(lines))

    def _steer(self, command: str) -> CommandResult:
        match = re.match(r"STEER\s+(\w+)(?:\s+TOP\s+(\d+))?$", command, re.IGNORECASE)
        if not match:
            raise ParseError("usage: STEER <table> [TOP k]")
        table, k = match.group(1), int(match.group(2) or 3)
        suggestions = self.session.steer(table, k=k)
        lines = [f"{s.sql}   -- {s.reason}" for s in suggestions]
        return CommandResult("STEER", suggestions, "\n".join(lines) or "(no suggestions)")

    def _facets(self, command: str) -> CommandResult:
        match = re.match(
            r"FACETS\s+(\w+)\s+WHERE\s+(.+?)(?:\s+RATIO\s+([\d.]+))?$",
            command,
            re.IGNORECASE,
        )
        if not match:
            raise ParseError("usage: FACETS <table> WHERE <predicate> [RATIO r]")
        table, predicate_sql, ratio = match.groups()
        predicate = _parse_predicate(table, predicate_sql)
        facets = self.session.interesting_facets(
            table, predicate, min_ratio=float(ratio or 1.5)
        )
        lines = [
            f"{f.attribute}={f.value!r}: {f.relevance_ratio:.1f}x over-represented "
            f"({f.support_in_result} rows)"
            for f in facets
        ]
        return CommandResult("FACETS", facets, "\n".join(lines) or "(no facets)")

    def _recommend(self, command: str) -> CommandResult:
        match = re.match(
            r"RECOMMEND\s+VIEWS\s+(\w+)\s+FOR\s+(.+?)(?:\s+TOP\s+(\d+))?$",
            command,
            re.IGNORECASE,
        )
        if not match:
            raise ParseError("usage: RECOMMEND VIEWS <table> FOR <predicate> [TOP k]")
        table_name, predicate_sql, k = match.groups()
        table = self.session.db.get_table(table_name)
        dimensions = [
            name
            for name in table.column_names
            if not table.column(name).dtype.is_numeric
            and table.column(name).distinct_count() <= 30
        ]
        measures = [
            name for name in table.column_names if table.column(name).dtype.is_numeric
        ]
        if not dimensions or not measures:
            raise ParseError(f"table {table_name!r} has no dimension/measure split")
        predicate = _parse_predicate(table_name, predicate_sql)
        views = self.session.recommend_views(
            table_name, predicate, dimensions, measures, k=int(k or 3)
        )
        lines = [f"{v.spec.describe()} (utility {v.utility:.3f})" for v in views]
        return CommandResult("RECOMMEND VIEWS", views, "\n".join(lines))

    def _segment(self, command: str) -> CommandResult:
        match = re.match(
            r"SEGMENT\s+(\w+)\.(\w+)\s+INTO\s+(\d+)$", command, re.IGNORECASE
        )
        if not match:
            raise ParseError("usage: SEGMENT <table>.<column> INTO k")
        table_name, column, k = match.groups()
        values = np.asarray(
            self.session.db.get_table(table_name).column(column).data,
            dtype=np.float64,
        )
        segmentation = segment_column(values, int(k))
        return CommandResult(
            "SEGMENT", segmentation, "\n".join(segmentation.describe())
        )

    def _approx(self, command: str) -> CommandResult:
        match = re.match(
            r"APPROX\s+(AVG|SUM|COUNT)\s*\(\s*(\*|\w+)\s*\)\s+FROM\s+(\w+)"
            r"(?:\s+WHERE\s+(.+?))?(?:\s+ERROR\s+([\d.]+))?(?:\s+ROWS\s+(\d+))?$",
            command,
            re.IGNORECASE,
        )
        if not match:
            raise ParseError(
                "usage: APPROX <agg>(<col>) FROM <table> [WHERE p] [ERROR e | ROWS n]"
            )
        aggregate, column, table, predicate_sql, error, rows = match.groups()
        aggregate = aggregate.lower()
        value_column = None if column == "*" else column
        predicate = (
            _parse_predicate(table, predicate_sql) if predicate_sql else None
        )
        if table not in self.session._catalogs:
            self.session.build_samples(table)
        answer = self.session.approx(
            table,
            aggregate,
            value_column=value_column,
            where=predicate,
            error_bound=float(error) if error else None,
            time_bound_rows=int(rows) if rows else None,
        )
        estimate = answer.estimate
        text = (
            f"{aggregate}({column}) ≈ {estimate.value:.4f} ± {estimate.half_width:.4f} "
            f"(from {answer.rows_scanned} rows via {answer.sample_used})"
        )
        return CommandResult("APPROX", answer, text)

    def _diversify(self, command: str) -> CommandResult:
        match = re.match(
            r"DIVERSIFY\s+(\w+)\s+BY\s+([\w\s,]+?)\s+RELEVANCE\s+(\w+)"
            r"(?:\s+TOP\s+(\d+))?$",
            command,
            re.IGNORECASE,
        )
        if not match:
            raise ParseError(
                "usage: DIVERSIFY <table> BY <c1>, <c2> RELEVANCE <col> [TOP k]"
            )
        table_name, by_columns, relevance_column, k = match.groups()
        table = self.session.db.get_table(table_name)
        columns = [c.strip() for c in by_columns.split(",") if c.strip()]
        points = np.column_stack(
            [np.asarray(table.column(c).data, dtype=np.float64) for c in columns]
        )
        relevance = np.asarray(
            table.column(relevance_column).data, dtype=np.float64
        )
        selected = mmr_diversify(points, relevance, k=int(k or 5), trade_off=0.5)
        result = table.take(selected)
        return CommandResult("DIVERSIFY", result, result.pretty())
