"""Query steering policies ([14], "query steering for interactive data
exploration").

A steering policy looks at where the user has been (history) and what the
data looks like, and proposes where to go next:

- :class:`ZoomSteering` — drill-down steering: segments the most-touched
  numeric column (Charles-style) and proposes range queries over the
  segments whose statistics deviate most from the column average.
- :class:`FacetSteering` — result-driven steering: proposes queries over
  the interesting facet values of the last result (YmalDB-style).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.history import QueryHistory
from repro.engine.catalog import Database
from repro.engine.expressions import Expression
from repro.explore.facets import FacetRecommender
from repro.explore.segment import segment_column


@dataclass
class SteeringSuggestion:
    """One proposed next query."""

    sql: str
    reason: str
    score: float


class ZoomSteering:
    """Proposes drill-down range queries over deviating data segments.

    Args:
        db: the database.
        table: table being explored.
    """

    def __init__(self, db: Database, table: str) -> None:
        self.db = db
        self.table = table

    def suggest(
        self, history: QueryHistory, k: int = 3, num_segments: int = 5
    ) -> list[SteeringSuggestion]:
        """Top-k drill-down suggestions."""
        table = self.db.get_table(self.table)
        touch_counts = history.column_touch_counts()
        numeric = [
            name
            for name in table.column_names
            if table.column(name).dtype.is_numeric
        ]
        if not numeric:
            return []
        # steer on the column the user cares about most (ties: first)
        target = max(numeric, key=lambda c: (touch_counts.get(c, 0), -numeric.index(c)))
        values = np.asarray(table.column(target).data, dtype=np.float64)
        segmentation = segment_column(values, num_segments)
        overall_mean = float(values.mean())
        scale = float(values.std()) or 1.0
        suggestions = []
        for i in range(segmentation.num_segments):
            low = segmentation.boundaries[i]
            high = segmentation.boundaries[i + 1]
            deviation = abs(segmentation.means[i] - overall_mean) / scale
            suggestions.append(
                SteeringSuggestion(
                    sql=(
                        f"SELECT * FROM {self.table} "
                        f"WHERE {target} >= {low:g} AND {target} < {high:g}"
                    ),
                    reason=(
                        f"segment of {target} with mean {segmentation.means[i]:g} "
                        f"vs overall {overall_mean:g}"
                    ),
                    score=float(deviation),
                )
            )
        suggestions.sort(key=lambda s: -s.score)
        return suggestions[:k]


class FacetSteering:
    """Proposes queries over the interesting facets of the last result."""

    def __init__(self, db: Database, table: str) -> None:
        self.db = db
        self.table = table

    def suggest(
        self, last_predicate: Expression, k: int = 3, min_ratio: float = 1.3
    ) -> list[SteeringSuggestion]:
        """Top-k facet-expansion suggestions for the previous query."""
        recommender = FacetRecommender(self.db.get_table(self.table))
        facets = recommender.interesting_facets(last_predicate, min_ratio=min_ratio)
        suggestions = []
        for facet in facets[:k]:
            value = str(facet.value).replace("'", "''")
            suggestions.append(
                SteeringSuggestion(
                    sql=(
                        f"SELECT * FROM {self.table} "
                        f"WHERE {facet.attribute} = '{value}'"
                    ),
                    reason=(
                        f"{facet.attribute}={facet.value!r} is "
                        f"{facet.relevance_ratio:.1f}x over-represented in your result"
                    ),
                    score=float(facet.relevance_ratio),
                )
            )
        return suggestions
