"""The paper's Table 1, reproduced as data (experiment T1).

Table 1 of the tutorial clusters the surveyed papers into a three-layer
taxonomy.  :data:`TAXONOMY` encodes every cluster with its paper
references (the bracketed citation numbers of the tutorial) and the repro
modules implementing it; :func:`validate_coverage` checks that every
cluster's modules actually import — i.e. that this repository covers the
whole table.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Cluster:
    """One cell of Table 1."""

    layer: str
    area: str
    sub_area: str
    paper_refs: tuple[int, ...]
    modules: tuple[str, ...]


TAXONOMY: tuple[Cluster, ...] = (
    # -- User Interaction -----------------------------------------------------------
    Cluster(
        "User Interaction", "Data Visualization", "Visual Optimizations",
        (11, 12, 49, 66),
        ("repro.viz.m4", "repro.viz.ordering", "repro.explore.seedb", "repro.viz.spec"),
    ),
    Cluster(
        "User Interaction", "Data Visualization", "Visualization Tools",
        (38, 40, 48, 61, 62),
        ("repro.explore.vizrec",),
    ),
    Cluster(
        "User Interaction", "Exploration Interfaces", "Automatic Exploration",
        (14, 18, 20),
        ("repro.explore.aide", "repro.explore.facets", "repro.core.steering"),
    ),
    Cluster(
        "User Interaction", "Exploration Interfaces", "Assisted Query Formulation",
        (3, 4, 13, 21, 52, 57, 58, 64, 51),
        (
            "repro.explore.qbo",
            "repro.explore.suggest",
            "repro.explore.refine",
            "repro.explore.join_inference",
            "repro.explore.segment",
        ),
    ),
    Cluster(
        "User Interaction", "Exploration Interfaces", "Novel Query Interfaces",
        (32, 44, 45, 47),
        ("repro.interface.dbtouch", "repro.interface.gestures", "repro.interface.keyword"),
    ),
    # -- Middleware ------------------------------------------------------------------
    Cluster(
        "Middleware", "Interactive Performance Optimizations", "Data Prefetching",
        (36, 37, 41, 63),
        (
            "repro.explore.windows",
            "repro.prefetch.markov",
            "repro.prefetch.hybrid_predictor",
            "repro.prefetch.speculative",
            "repro.prefetch.trajectory",
            "repro.prefetch.cache",
            "repro.prefetch.semantic_cache",
            "repro.explore.olap",
            "repro.explore.diversify",
        ),
    ),
    Cluster(
        "Middleware", "Interactive Performance Optimizations", "Query Approximation",
        (16, 5, 6, 7, 24, 25),
        (
            "repro.sampling.online_agg",
            "repro.sampling.blinkdb",
            "repro.sampling.stratified",
            "repro.sampling.selection",
            "repro.sampling.bootstrap",
            "repro.sampling.ripple",
            "repro.synopses.histogram",
            "repro.synopses.wavelet",
            "repro.synopses.sketches",
        ),
    ),
    # -- Database Layer --------------------------------------------------------------
    Cluster(
        "Database Layer", "Indexes", "Adaptive Indexing",
        (26, 29, 30, 31, 33, 22, 23, 50, 27, 39),
        (
            "repro.indexing.cracking",
            "repro.indexing.hybrid",
            "repro.indexing.updates",
            "repro.indexing.sideways",
            "repro.indexing.concurrent",
            "repro.indexing.partitioned",
        ),
    ),
    Cluster(
        "Database Layer", "Indexes", "Time Series",
        (68,),
        ("repro.indexing.sax", "repro.indexing.isax"),
    ),
    Cluster(
        "Database Layer", "Indexes", "Flexible Engines",
        (17, 42, 43, 34),
        ("repro.storage.declarative",),
    ),
    Cluster(
        "Database Layer", "Data Storage", "Adaptive Loading",
        (28, 8, 2, 15),
        (
            "repro.loading.raw_table",
            "repro.loading.positional_map",
            "repro.loading.invisible",
            "repro.loading.speculative",
        ),
    ),
    Cluster(
        "Database Layer", "Data Storage", "Adaptive Storage",
        (9, 19),
        ("repro.storage.layouts", "repro.storage.adaptive_store", "repro.storage.workload"),
    ),
    Cluster(
        "Database Layer", "Data Storage", "Sampling",
        (59, 60, 35),
        ("repro.sampling.weighted", "repro.prefetch.speculative"),
    ),
)


@dataclass
class CoverageReport:
    """Result of the Table 1 coverage validation."""

    clusters_total: int
    clusters_covered: int
    missing: list[tuple[str, str]] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        """True when every cluster maps to at least one importable module."""
        return not self.missing


def validate_coverage() -> CoverageReport:
    """Check that every Table 1 cluster's modules import successfully."""
    missing: list[tuple[str, str]] = []
    covered = 0
    for cluster in TAXONOMY:
        ok = True
        for module in cluster.modules:
            try:
                importlib.import_module(module)
            except ImportError:
                missing.append((f"{cluster.area}/{cluster.sub_area}", module))
                ok = False
        if ok and cluster.modules:
            covered += 1
    return CoverageReport(
        clusters_total=len(TAXONOMY),
        clusters_covered=covered,
        missing=missing,
    )


def render_table() -> str:
    """Render the taxonomy as text, mirroring the paper's Table 1 layout."""
    lines = []
    current_layer = None
    for cluster in TAXONOMY:
        if cluster.layer != current_layer:
            current_layer = cluster.layer
            lines.append(f"== {current_layer} ==")
        refs = ", ".join(f"[{r}]" for r in cluster.paper_refs)
        modules = ", ".join(cluster.modules)
        lines.append(f"  {cluster.area} / {cluster.sub_area}: {refs}")
        lines.append(f"      -> {modules}")
    return "\n".join(lines)
