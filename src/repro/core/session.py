"""The :class:`ExplorationSession` facade.

One object wiring the stack together the way the paper's architecture
diagram does: SQL goes through the engine (whose scans use any adaptive
indexes registered); approximate answers go through the sample catalog;
view recommendation, steering, facets and query suggestion all feed off
the shared session history.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.core.history import QueryHistory
from repro.core.steering import SteeringSuggestion, ZoomSteering
from repro.engine.catalog import Database
from repro.engine.expressions import Expression
from repro.engine.sql.parser import parse
from repro.engine.table import Table
from repro.errors import CatalogError
from repro.explore.aide import AideExplorer, AideResult
from repro.explore.facets import FacetRecommender, InterestingFacet
from repro.explore.seedb import SeeDB, ViewRecommendation
from repro.explore.suggest import QuerySuggester, Suggestion
from repro.indexing.cracking import CrackerIndex
from repro.sampling.blinkdb import ApproximateAnswer, ApproximateQueryEngine, SampleCatalog


class ExplorationSession:
    """An interactive exploration session over one database.

    Args:
        db: the database (create tables on it first, or use
            :meth:`load_table`).
        enable_cracking: automatically register a cracker index on a
            numeric column the first time a range query filters on it —
            the adaptive-indexing behaviour of the paper's §2.3.
    """

    def __init__(self, db: Database | None = None, enable_cracking: bool = True) -> None:
        self.db = db or Database()
        self.history = QueryHistory()
        self.enable_cracking = enable_cracking
        self.suggester = QuerySuggester()
        self._catalogs: dict[str, SampleCatalog] = {}
        self._session_queries: list[str] = []

    # -- data management ---------------------------------------------------------------

    def load_table(self, name: str, data: Table | dict) -> Table:
        """Create a table from a Table or a ``{column: values}`` dict."""
        return self.db.create_table(name, data)

    # -- exact querying -----------------------------------------------------------------

    def sql(self, query: str) -> Table:
        """Run a SQL query; history is recorded and adaptive indexes are
        created/refined as a side effect."""
        statement = parse(query)
        if self.enable_cracking:
            self._maybe_crack(statement.table, statement)
        result = self.db.sql(query)
        columns: set[str] = set()
        if statement.where is not None:
            columns |= statement.where.referenced_columns()
        for item in statement.items:
            if item.expression is not None:
                columns |= item.expression.referenced_columns()
        self.history.record(
            query,
            result.num_rows,
            tables=frozenset({statement.table}),
            columns=frozenset(columns),
        )
        self._session_queries.append(query)
        return result

    def _maybe_crack(self, table_name: str, statement) -> None:
        """Register cracker indexes for range-filtered numeric columns."""
        if statement.where is None or not self.db.has_table(table_name):
            return
        table = self.db.get_table(table_name)
        for column in statement.where.referenced_columns():
            bare = column.split(".", 1)[-1]
            if bare not in table.column_names:
                continue
            if not table.column(bare).dtype.is_numeric:
                continue
            if self.db.index_for(table_name, bare) is None:
                values = np.asarray(table.column(bare).data)
                self.db.register_index(table_name, bare, CrackerIndex(values))

    # -- approximate querying -------------------------------------------------------------

    def build_samples(
        self,
        table: str,
        uniform_fractions: Sequence[float] = (0.01, 0.1),
        stratified_on: Sequence[Sequence[str]] = (),
        cap: int = 500,
        seed: int = 0,
    ) -> SampleCatalog:
        """Build a BlinkDB-style sample catalog for a table."""
        catalog = SampleCatalog(self.db.get_table(table))
        for i, fraction in enumerate(uniform_fractions):
            catalog.add_uniform(fraction, seed=seed + i)
        for i, columns in enumerate(stratified_on):
            catalog.add_stratified(list(columns), cap=cap, seed=seed + 100 + i)
        self._catalogs[table] = catalog
        return catalog

    def approx(
        self,
        table: str,
        aggregate: str,
        value_column: str | None = None,
        where: Expression | None = None,
        group_by: Sequence[str] | None = None,
        error_bound: float | None = None,
        time_bound_rows: int | None = None,
    ) -> ApproximateAnswer:
        """Answer an aggregate approximately from the table's samples.

        Raises:
            CatalogError: if :meth:`build_samples` was not called for the
                table.
        """
        if table not in self._catalogs:
            raise CatalogError(
                f"no sample catalog for {table!r}; call build_samples first"
            )
        engine = ApproximateQueryEngine(self.db.get_table(table), self._catalogs[table])
        return engine.query(
            aggregate,
            value_column=value_column,
            where=where,
            group_by=group_by,
            error_bound=error_bound,
            time_bound_rows=time_bound_rows,
        )

    # -- interaction-layer assistants ------------------------------------------------------

    def recommend_views(
        self,
        table: str,
        target: Expression,
        dimensions: Sequence[str],
        measures: Sequence[str],
        k: int = 5,
    ) -> list[ViewRecommendation]:
        """SeeDB: the k most deviating views of the target subset."""
        seedb = SeeDB(self.db.get_table(table), dimensions, measures)
        return seedb.recommend(target, k=k)

    def explore_by_example(
        self,
        table: str,
        columns: Sequence[str],
        oracle,
        max_iterations: int = 10,
        seed: int = 0,
    ) -> AideResult:
        """AIDE: learn the user's interest region from labels."""
        data = self.db.get_table(table)
        features = np.column_stack(
            [np.asarray(data.column(c).data, dtype=np.float64) for c in columns]
        )
        explorer = AideExplorer(features, oracle, seed=seed)
        return explorer.run(max_iterations=max_iterations)

    def interesting_facets(
        self, table: str, predicate: Expression, min_ratio: float = 1.5
    ) -> list[InterestingFacet]:
        """YmalDB: facet values over-represented in a result."""
        return FacetRecommender(self.db.get_table(table)).interesting_facets(
            predicate, min_ratio=min_ratio
        )

    def steer(self, table: str, k: int = 3) -> list[SteeringSuggestion]:
        """Drill-down steering suggestions from the session history."""
        return ZoomSteering(self.db, table).suggest(self.history, k=k)

    def suggest_next(self, k: int = 3) -> list[Suggestion]:
        """SQL suggestions for the live session (needs trained logs via
        :meth:`observe_log_sessions`)."""
        return self.suggester.suggest(self._session_queries, k=k)

    def observe_log_sessions(self, sessions: Sequence[Sequence[str]]) -> None:
        """Train the query suggester on historical session logs."""
        for session in sessions:
            self.suggester.observe_session(session)
