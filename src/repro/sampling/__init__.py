"""Approximate query processing by sampling (paper §2.2 and §2.3).

- :mod:`repro.sampling.estimators` — closed-form (CLT) estimators with
  confidence intervals for COUNT/SUM/AVG under simple random sampling.
- :class:`OnlineAggregator` — online aggregation ([25], CONTROL [24]):
  running estimates whose intervals shrink as data streams in, with
  group-by support and stopping conditions.
- :mod:`repro.sampling.reservoir` — reservoir sampling (algorithms R & L).
- :class:`StratifiedSample` — BlinkDB-style per-group-capped samples ([7]).
- :class:`SampleCatalog` (module ``blinkdb``) — query-time sample
  selection under error or latency bounds.
- :mod:`repro.sampling.bootstrap` — bootstrap CIs for arbitrary
  statistics ("knowing when you're wrong" [6]).
- :class:`WeightedSampler` (module ``weighted``) — SciBORQ impressions
  ([59, 60]): biased sampling under a hard row budget.
"""

from repro.sampling.estimators import Estimate, GroupedEstimate, srs_estimate
from repro.sampling.online_agg import OnlineAggregator, OnlineResult
from repro.sampling.reservoir import ReservoirSampler, reservoir_sample
from repro.sampling.stratified import StratifiedSample, build_stratified_sample
from repro.sampling.blinkdb import ApproximateQueryEngine, SampleCatalog, StoredSample
from repro.sampling.bootstrap import bootstrap_ci
from repro.sampling.ripple import RippleJoin, RippleSnapshot
from repro.sampling.selection import SelectionReport, WorkloadEntry, choose_samples
from repro.sampling.weighted import Impression, WeightedSampler

__all__ = [
    "ApproximateQueryEngine",
    "Estimate",
    "GroupedEstimate",
    "Impression",
    "OnlineAggregator",
    "OnlineResult",
    "ReservoirSampler",
    "RippleJoin",
    "RippleSnapshot",
    "SampleCatalog",
    "SelectionReport",
    "WorkloadEntry",
    "choose_samples",
    "StoredSample",
    "StratifiedSample",
    "WeightedSampler",
    "bootstrap_ci",
    "build_stratified_sample",
    "reservoir_sample",
    "srs_estimate",
]
