"""Ripple join: online aggregation over joins (Haas & Hellerstein; the
CONTROL project [24] the tutorial covers).

A join aggregate normally blocks until the full join completes.  The
(square) ripple join instead reads both inputs in random order, one batch
per side per step; after step ``k`` it has inspected the ``k·k`` sampled
cross-product corner and scales what it found there up to the full
``N_r · N_s`` cross product:

    estimate = (hits in corner) · (N_r · N_s) / (k_r · k_s)

The confidence interval treats the per-pair contributions in the corner
as a simple random sample of all pairs — the standard first-order
approximation; the interval shrinks as the corner grows, letting the
analyst stop a join query early exactly like single-table online
aggregation (S6).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Iterator

import numpy as np
from scipy.stats import norm

from repro.errors import ApproximationError


@dataclass
class RippleSnapshot:
    """Running state of a ripple join after some steps."""

    rows_read_left: int
    rows_read_right: int
    pairs_inspected: int
    estimate: float
    half_width: float
    confidence: float

    @property
    def relative_error(self) -> float:
        """Half-width over estimate (inf when the estimate is 0)."""
        if self.estimate == 0:
            return math.inf if self.half_width > 0 else 0.0
        return abs(self.half_width / self.estimate)


class RippleJoin:
    """Online estimation of an equi-join aggregate.

    Supported aggregates:

    - ``"count"`` — join cardinality ``|R ⋈ S|``;
    - ``"sum"`` — sum of ``values`` (aligned with the left table) over all
      joining pairs.

    Args:
        left_keys: join column of R.
        right_keys: join column of S.
        values: optional per-left-row values for ``sum``.
        aggregate: ``"count"`` or ``"sum"``.
        batch_size: rows drawn per side per step.
        confidence: CI level.
        seed: RNG seed for the random read orders.
    """

    def __init__(
        self,
        left_keys: np.ndarray,
        right_keys: np.ndarray,
        values: np.ndarray | None = None,
        aggregate: str = "count",
        batch_size: int = 100,
        confidence: float = 0.95,
        seed: int = 0,
    ) -> None:
        if aggregate not in ("count", "sum"):
            raise ApproximationError(f"unsupported join aggregate {aggregate!r}")
        if aggregate == "sum" and values is None:
            raise ApproximationError("sum needs per-left-row values")
        self._left = np.asarray(left_keys)
        self._right = np.asarray(right_keys)
        self._values = (
            np.asarray(values, dtype=np.float64) if values is not None else None
        )
        if self._values is not None and len(self._values) != len(self._left):
            raise ApproximationError("values must align with left_keys")
        self.aggregate = aggregate
        self.batch_size = batch_size
        self.confidence = confidence
        rng = np.random.default_rng(seed)
        self._left_order = rng.permutation(len(self._left))
        self._right_order = rng.permutation(len(self._right))
        self._left_cursor = 0
        self._right_cursor = 0
        # hash maps over the seen prefixes
        self._seen_right_counts: dict[Any, int] = {}
        self._seen_left_contrib: dict[Any, float] = {}  # key -> sum of contribs
        self._seen_left_counts: dict[Any, int] = {}
        self._corner_total = 0.0  # running sum of pair contributions
        self._corner_sq_total = 0.0  # running sum of squared contributions

    # -- streaming ---------------------------------------------------------------------

    @property
    def finished(self) -> bool:
        """True when both inputs are exhausted (estimate is exact)."""
        return self._left_cursor >= len(self._left) and self._right_cursor >= len(
            self._right
        )

    def _contribution(self, left_index: int) -> float:
        if self.aggregate == "count":
            return 1.0
        assert self._values is not None
        return float(self._values[left_index])

    def step(self) -> RippleSnapshot:
        """Read one batch from each side and update the estimate."""
        # new left rows join against all seen right rows
        left_end = min(self._left_cursor + self.batch_size, len(self._left))
        for position in range(self._left_cursor, left_end):
            index = int(self._left_order[position])
            key = self._left[index]
            contribution = self._contribution(index)
            matches = self._seen_right_counts.get(key, 0)
            if matches:
                self._corner_total += contribution * matches
                self._corner_sq_total += (contribution**2) * matches
            self._seen_left_contrib[key] = (
                self._seen_left_contrib.get(key, 0.0) + contribution
            )
            self._seen_left_counts[key] = self._seen_left_counts.get(key, 0) + 1
        self._left_cursor = left_end

        # new right rows join against all seen left rows
        right_end = min(self._right_cursor + self.batch_size, len(self._right))
        for position in range(self._right_cursor, right_end):
            index = int(self._right_order[position])
            key = self._right[index]
            contribution_sum = self._seen_left_contrib.get(key, 0.0)
            if contribution_sum:
                self._corner_total += contribution_sum
                # squared contributions need the per-key sum of squares; we
                # approximate with (sum)^2/count, exact for constant values
                count = self._seen_left_counts.get(key, 0)
                if count:
                    self._corner_sq_total += (contribution_sum**2) / count
            self._seen_right_counts[key] = self._seen_right_counts.get(key, 0) + 1
        self._right_cursor = right_end
        return self.current()

    def current(self) -> RippleSnapshot:
        """Snapshot without reading more rows."""
        k_left = self._left_cursor
        k_right = self._right_cursor
        pairs = k_left * k_right
        n_pairs_total = len(self._left) * len(self._right)
        if pairs == 0:
            return RippleSnapshot(0, 0, 0, 0.0, math.inf, self.confidence)
        scale = n_pairs_total / pairs
        estimate = self._corner_total * scale
        if self.finished:
            return RippleSnapshot(
                k_left, k_right, pairs, estimate, 0.0, self.confidence
            )
        # SRS-of-pairs approximation for the variance
        mean = self._corner_total / pairs
        mean_sq = self._corner_sq_total / pairs
        variance = max(0.0, mean_sq - mean**2)
        z = float(norm.ppf(0.5 + self.confidence / 2.0))
        fpc = max(0.0, 1.0 - pairs / n_pairs_total)
        half = z * n_pairs_total * math.sqrt(variance / pairs * fpc)
        return RippleSnapshot(k_left, k_right, pairs, estimate, half, self.confidence)

    def run(self) -> Iterator[RippleSnapshot]:
        """Iterate snapshots until both inputs are exhausted."""
        while not self.finished:
            yield self.step()

    def run_until(
        self,
        relative_error: float | None = None,
        max_rows_per_side: int | None = None,
    ) -> RippleSnapshot:
        """Step until the target relative error or row budget is reached."""
        if relative_error is None and max_rows_per_side is None:
            raise ApproximationError("run_until needs a stopping condition")
        snapshot = self.current()
        while not self.finished:
            snapshot = self.step()
            if (
                relative_error is not None
                and snapshot.estimate != 0
                and snapshot.relative_error <= relative_error
            ):
                return snapshot
            if (
                max_rows_per_side is not None
                and max(snapshot.rows_read_left, snapshot.rows_read_right)
                >= max_rows_per_side
            ):
                return snapshot
        return snapshot
