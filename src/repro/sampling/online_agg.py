"""Online aggregation (Hellerstein, Haas & Wang [25]; CONTROL [24]).

Rows are consumed in random order; after every batch the aggregator
exposes a running estimate with a shrinking confidence interval, so an
analyst can stop a query the moment the answer is "good enough" — the
canonical interactive-exploration behaviour the tutorial highlights.

Group-by is supported: each group carries its own interval, and the
stopping test can demand that *every* group has converged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

import numpy as np

from repro.errors import ApproximationError
from repro.sampling.estimators import Estimate, srs_estimate


@dataclass
class OnlineResult:
    """Snapshot of the running computation after some batches."""

    rows_processed: int
    total_rows: int
    estimate: Estimate | None
    group_estimates: dict[Any, Estimate] = field(default_factory=dict)

    @property
    def progress(self) -> float:
        """Fraction of the table consumed, in [0, 1]."""
        if self.total_rows == 0:
            return 1.0
        return self.rows_processed / self.total_rows


class OnlineAggregator:
    """Streaming estimator for one aggregate over one column.

    Args:
        values: the full column payload (the engine hands this over; the
            aggregator itself only reads it in random order).
        aggregate: ``"avg"``, ``"sum"`` or ``"count"``; for ``count`` pass
            predicate outcomes (booleans) as ``values``.
        groups: optional parallel array of group keys for GROUP BY.
        confidence: CI level of the running intervals.
        batch_size: rows consumed per :meth:`step`.
        seed: RNG seed for the random consumption order.
    """

    def __init__(
        self,
        values: np.ndarray,
        aggregate: str = "avg",
        groups: np.ndarray | None = None,
        confidence: float = 0.95,
        batch_size: int = 1000,
        seed: int = 0,
    ) -> None:
        if aggregate not in ("avg", "sum", "count"):
            raise ApproximationError(f"unsupported aggregate {aggregate!r}")
        self._values = np.asarray(values, dtype=np.float64)
        self._groups = None if groups is None else np.asarray(groups)
        if self._groups is not None and len(self._groups) != len(self._values):
            raise ApproximationError("groups array must match values length")
        self.aggregate = aggregate
        self.confidence = confidence
        self.batch_size = batch_size
        self._order = np.random.default_rng(seed).permutation(len(self._values))
        self._cursor = 0
        self._seen_values: list[np.ndarray] = []
        self._seen_groups: list[np.ndarray] = []

    @property
    def total_rows(self) -> int:
        """Rows in the underlying table."""
        return len(self._values)

    @property
    def rows_processed(self) -> int:
        """Rows consumed so far."""
        return self._cursor

    @property
    def finished(self) -> bool:
        """True when the whole table has been consumed (exact answer)."""
        return self._cursor >= len(self._values)

    def step(self) -> OnlineResult:
        """Consume one batch and return the updated snapshot."""
        end = min(self._cursor + self.batch_size, len(self._values))
        batch_idx = self._order[self._cursor:end]
        self._cursor = end
        self._seen_values.append(self._values[batch_idx])
        if self._groups is not None:
            self._seen_groups.append(self._groups[batch_idx])
        return self.current()

    def current(self) -> OnlineResult:
        """The current snapshot without consuming more rows."""
        if not self._seen_values:
            return OnlineResult(0, self.total_rows, None)
        seen = np.concatenate(self._seen_values)
        n_total = self.total_rows
        if self._groups is None:
            estimate = srs_estimate(seen, n_total, self.aggregate, self.confidence)
            return OnlineResult(self._cursor, n_total, estimate)
        seen_groups = np.concatenate(self._seen_groups)
        group_estimates: dict[Any, Estimate] = {}
        # group sizes are unknown mid-stream; estimate each group's
        # population as N * (group share of the sample) — the standard
        # online-aggregation treatment
        for key in np.unique(seen_groups):
            mask = seen_groups == key
            share = mask.mean()
            estimated_population = max(int(round(n_total * share)), int(mask.sum()))
            group_estimates[key.item() if hasattr(key, "item") else key] = srs_estimate(
                seen[mask], estimated_population, self.aggregate, self.confidence
            )
        return OnlineResult(self._cursor, n_total, None, group_estimates)

    def run(self) -> Iterator[OnlineResult]:
        """Iterate snapshots batch by batch until the table is exhausted."""
        while not self.finished:
            yield self.step()

    def run_until(
        self,
        relative_error: float | None = None,
        half_width: float | None = None,
        max_rows: int | None = None,
        predicate: Callable[[OnlineResult], bool] | None = None,
    ) -> OnlineResult:
        """Consume batches until a stopping condition holds.

        Conditions (any one stops the run; for grouped queries they must
        hold for every group):

        - ``relative_error``: CI half-width / estimate below this.
        - ``half_width``: absolute CI half-width below this.
        - ``max_rows``: row budget.
        - ``predicate``: arbitrary user test on the snapshot.
        """
        if relative_error is None and half_width is None and max_rows is None and predicate is None:
            raise ApproximationError("run_until needs at least one stopping condition")

        def satisfied(result: OnlineResult) -> bool:
            if predicate is not None and predicate(result):
                return True
            estimates = (
                list(result.group_estimates.values())
                if result.group_estimates
                else ([result.estimate] if result.estimate else [])
            )
            if not estimates:
                return False
            if relative_error is not None and all(
                e.relative_error <= relative_error for e in estimates
            ):
                return True
            if half_width is not None and all(
                e.half_width <= half_width for e in estimates
            ):
                return True
            return False

        result = self.current()
        while not self.finished:
            result = self.step()
            if satisfied(result):
                return result
            if max_rows is not None and self.rows_processed >= max_rows:
                return result
        return result
