"""Query-time sample selection under error/latency bounds (BlinkDB [7]).

BlinkDB keeps a catalog of pre-built samples — uniform samples at several
fractions plus stratified samples on frequently grouped column sets — and,
per query, picks the cheapest sample that satisfies the user's bound:

- ``error_bound``: pick the smallest sample whose *predicted* relative
  error (from an error-latency profile calibrated on the smallest sample)
  meets the bound.
- ``time_bound``: pick the largest sample whose size fits the time budget
  (cost is proportional to rows scanned).

The returned answers carry closed-form confidence intervals; the S7
benchmark reproduces the headline shapes (error falls like 1/sqrt(rows);
stratified samples keep rare-group errors bounded where uniform samples
blow up).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.engine.expressions import Expression, truth_mask
from repro.engine.table import Table
from repro.errors import ApproximationError
from repro.sampling.estimators import Estimate, srs_estimate
from repro.sampling.stratified import (
    StratifiedSample,
    build_stratified_sample,
    build_uniform_sample,
)


@dataclass
class StoredSample:
    """One catalog entry: either uniform or stratified."""

    name: str
    kind: str  # "uniform" | "stratified"
    row_indices: np.ndarray | None = None  # uniform only
    stratified: StratifiedSample | None = None  # stratified only

    @property
    def size(self) -> int:
        """Rows stored."""
        if self.kind == "uniform":
            assert self.row_indices is not None
            return len(self.row_indices)
        assert self.stratified is not None
        return self.stratified.size


class SampleCatalog:
    """The set of samples maintained over one base table."""

    def __init__(self, table: Table) -> None:
        self.table = table
        self._samples: list[StoredSample] = []

    def add_uniform(self, fraction: float, seed: int = 0) -> StoredSample:
        """Create and register a uniform sample."""
        rows = build_uniform_sample(self.table, fraction, seed=seed)
        sample = StoredSample(
            name=f"uniform_{fraction:g}", kind="uniform", row_indices=rows
        )
        self._samples.append(sample)
        return sample

    def add_stratified(
        self, columns: Sequence[str], cap: int, seed: int = 0
    ) -> StoredSample:
        """Create and register a stratified sample."""
        stratified = build_stratified_sample(self.table, columns, cap, seed=seed)
        sample = StoredSample(
            name=f"stratified_{'_'.join(columns)}_K{cap}",
            kind="stratified",
            stratified=stratified,
        )
        self._samples.append(sample)
        return sample

    def samples(self) -> list[StoredSample]:
        """All registered samples, smallest first."""
        return sorted(self._samples, key=lambda s: s.size)

    def storage_rows(self) -> int:
        """Total rows across all samples (the storage budget used)."""
        return sum(s.size for s in self._samples)


@dataclass
class ApproximateAnswer:
    """The result of an approximate aggregate query."""

    estimate: Estimate | None
    group_estimates: dict[tuple[Any, ...], Estimate]
    sample_used: str
    rows_scanned: int


class ApproximateQueryEngine:
    """Answers simple aggregate queries from the cheapest adequate sample.

    Supported query shape: one aggregate (``avg``/``sum``/``count``) over
    one column, an optional predicate, and an optional GROUP BY over
    categorical columns.
    """

    def __init__(self, table: Table, catalog: SampleCatalog) -> None:
        self.table = table
        self.catalog = catalog

    # -- public API --------------------------------------------------------------------

    def query(
        self,
        aggregate: str,
        value_column: str | None = None,
        where: Expression | None = None,
        group_by: Sequence[str] | None = None,
        error_bound: float | None = None,
        time_bound_rows: int | None = None,
        confidence: float = 0.95,
    ) -> ApproximateAnswer:
        """Run one approximate query.

        Args:
            aggregate: ``"avg"``, ``"sum"`` or ``"count"``.
            value_column: aggregated column (None only for count).
            where: optional predicate, evaluated on sampled rows only.
            group_by: optional grouping columns.
            error_bound: target relative error (half-width / estimate).
            time_bound_rows: scan budget in rows (a latency proxy).
            confidence: CI level.

        Raises:
            ApproximationError: when no sample can satisfy the request.
        """
        if aggregate != "count" and value_column is None:
            raise ApproximationError(f"{aggregate} requires a value column")
        candidates = self._candidates(group_by)
        if not candidates:
            raise ApproximationError(
                "no registered sample can answer this query shape"
            )
        chosen = self._choose(candidates, error_bound, time_bound_rows, group_by)
        return self._evaluate(
            chosen, aggregate, value_column, where, group_by, confidence
        )

    # -- selection ----------------------------------------------------------------------

    def _candidates(self, group_by: Sequence[str] | None) -> list[StoredSample]:
        result = []
        for sample in self.catalog.samples():
            if group_by and sample.kind == "stratified":
                assert sample.stratified is not None
                if not sample.stratified.covers(group_by):
                    continue
            result.append(sample)
        # prefer stratified samples for grouped queries: put them first
        # among equal sizes
        if group_by:
            result.sort(key=lambda s: (s.size, 0 if s.kind == "stratified" else 1))
        return result

    def _choose(
        self,
        candidates: list[StoredSample],
        error_bound: float | None,
        time_bound_rows: int | None,
        group_by: Sequence[str] | None = None,
    ) -> StoredSample:
        if group_by and error_bound is None and time_bound_rows is None:
            # unbounded grouped query: a covering stratified sample keeps
            # rare groups represented, so prefer the largest one
            stratified = [s for s in candidates if s.kind == "stratified"]
            if stratified:
                return max(stratified, key=lambda s: s.size)
        if time_bound_rows is not None:
            fitting = [s for s in candidates if s.size <= time_bound_rows]
            if not fitting:
                raise ApproximationError(
                    f"no sample fits the {time_bound_rows}-row budget"
                )
            return fitting[-1]  # largest that fits
        if error_bound is not None:
            # error-latency profile: relative error scales like c/sqrt(n);
            # calibrate c on the smallest candidate, then pick the smallest
            # sample predicted to satisfy the bound
            smallest = candidates[0]
            pilot_error = self._pilot_relative_error(smallest)
            c = pilot_error * math.sqrt(max(1, smallest.size))
            for sample in candidates:
                predicted = c / math.sqrt(max(1, sample.size))
                if predicted <= error_bound:
                    return sample
            # no sample suffices: fall back to the exact answer over the
            # base table (a "sample" of fraction 1, zero sampling error)
            return self._full_table_sample()
        return candidates[-1]  # no bound: use the largest sample

    def _full_table_sample(self) -> StoredSample:
        return StoredSample(
            name="full_table",
            kind="uniform",
            row_indices=np.arange(self.table.num_rows, dtype=np.int64),
        )

    def _pilot_relative_error(self, sample: StoredSample) -> float:
        """A crude pilot error for ELP calibration: the relative sampling
        error of a mean over this sample's rows."""
        rows = self._rows_of(sample)
        if len(rows) < 2:
            return 1.0
        numeric = [
            name
            for name in self.table.column_names
            if self.table.column(name).dtype.is_numeric
        ]
        if not numeric:
            return 1.0 / math.sqrt(len(rows))
        values = np.asarray(
            self.table.column(numeric[0]).data[rows], dtype=np.float64
        )
        estimate = srs_estimate(values, self.table.num_rows, "avg")
        return min(1.0, estimate.relative_error)

    def _rows_of(self, sample: StoredSample) -> np.ndarray:
        if sample.kind == "uniform":
            assert sample.row_indices is not None
            return sample.row_indices
        assert sample.stratified is not None
        return np.concatenate(
            [s.row_indices for s in sample.stratified.strata.values()]
        ) if sample.stratified.strata else np.empty(0, dtype=np.int64)

    # -- evaluation ----------------------------------------------------------------------

    def _evaluate(
        self,
        sample: StoredSample,
        aggregate: str,
        value_column: str | None,
        where: Expression | None,
        group_by: Sequence[str] | None,
        confidence: float,
    ) -> ApproximateAnswer:
        rows = self._rows_of(sample)
        subset = self.table.take(rows)
        keep = (
            truth_mask(where, subset)
            if where is not None
            else np.ones(len(rows), dtype=bool)
        )

        if sample.kind == "stratified" and group_by:
            assert sample.stratified is not None
            if where is None:
                groups = sample.stratified.estimate_grouped(
                    self.table, value_column, aggregate, group_by, confidence
                )
                return ApproximateAnswer(None, groups, sample.name, len(rows))
            # predicate + stratified: fall through to scaled per-group SRS
            groups = self._grouped_srs(
                sample, subset, keep, aggregate, value_column, group_by, confidence
            )
            return ApproximateAnswer(None, groups, sample.name, len(rows))

        if group_by:
            groups = self._grouped_srs(
                sample, subset, keep, aggregate, value_column, group_by, confidence
            )
            return ApproximateAnswer(None, groups, sample.name, len(rows))

        n_population = self.table.num_rows
        if aggregate == "count":
            indicator = keep.astype(np.float64)
            estimate = srs_estimate(indicator, n_population, "count", confidence)
        else:
            assert value_column is not None
            if not keep.any():
                raise ApproximationError(
                    "no sampled rows satisfy the predicate; use a larger sample"
                )
            values = np.asarray(
                subset.column(value_column).data[keep], dtype=np.float64
            )
            if aggregate == "avg":
                estimate = srs_estimate(values, n_population, "avg", confidence)
            else:  # sum over qualifying rows: estimate via per-row contribution
                contributions = np.zeros(len(rows))
                contributions[keep] = values
                estimate = srs_estimate(contributions, n_population, "sum", confidence)
        return ApproximateAnswer(estimate, {}, sample.name, len(rows))

    def _grouped_srs(
        self,
        sample: StoredSample,
        subset: Table,
        keep: np.ndarray,
        aggregate: str,
        value_column: str | None,
        group_by: Sequence[str],
        confidence: float,
    ) -> dict[tuple[Any, ...], Estimate]:
        """Per-group SRS estimates over a (possibly filtered) sample."""
        key_columns = [subset.column(c) for c in group_by]
        n_sample = len(keep)
        n_population = self.table.num_rows
        buckets: dict[tuple[Any, ...], list[int]] = {}
        for i in range(n_sample):
            if not keep[i]:
                continue
            key = tuple(col[i] for col in key_columns)
            buckets.setdefault(key, []).append(i)
        results: dict[tuple[Any, ...], Estimate] = {}
        for key, indices in buckets.items():
            share = len(indices) / max(1, n_sample)
            est_population = max(len(indices), int(round(n_population * share)))
            if aggregate == "count":
                results[key] = srs_estimate(
                    np.ones(len(indices)), est_population, "count", confidence
                )
                continue
            assert value_column is not None
            values = np.asarray(
                [subset.column(value_column)[i] for i in indices], dtype=np.float64
            )
            results[key] = srs_estimate(values, est_population, aggregate, confidence)
        return results
