"""Reservoir sampling over streams of unknown length.

Two classical algorithms:

- **Algorithm R** (Vitter): O(1) per element, replace with probability
  k/i.  Implemented by :class:`ReservoirSampler` (``fast=False``).
- **Algorithm L**: skips ahead geometrically, touching only the elements
  that actually enter the reservoir — the right choice when the stream is
  much larger than the reservoir (``fast=True``).
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Iterator

import numpy as np


class ReservoirSampler:
    """Maintains a uniform random sample of size ``k`` over a stream.

    Args:
        k: reservoir capacity.
        seed: RNG seed.
        fast: use Algorithm L's geometric skipping (requires feeding whole
            iterables via :meth:`extend`; :meth:`add` always uses R).
    """

    def __init__(self, k: int, seed: int = 0, fast: bool = False) -> None:
        if k <= 0:
            raise ValueError("reservoir capacity must be positive")
        self.k = k
        self.fast = fast
        self._rng = np.random.default_rng(seed)
        self._reservoir: list[Any] = []
        self._seen = 0
        # Algorithm L state
        self._w = math.exp(math.log(self._rng.random()) / k) if fast else 1.0
        self._next_index = k  # 0-based index of the next element to admit

    @property
    def seen(self) -> int:
        """Stream elements consumed so far."""
        return self._seen

    def sample(self) -> list[Any]:
        """The current reservoir contents (a copy)."""
        return list(self._reservoir)

    def add(self, item: Any) -> None:
        """Feed one element (Algorithm R step)."""
        self._seen += 1
        if len(self._reservoir) < self.k:
            self._reservoir.append(item)
            return
        j = int(self._rng.integers(0, self._seen))
        if j < self.k:
            self._reservoir[j] = item

    def extend(self, items: Iterable[Any]) -> None:
        """Feed many elements, using Algorithm L when ``fast`` is set."""
        if not self.fast:
            for item in items:
                self.add(item)
            return
        for item in items:
            if len(self._reservoir) < self.k:
                self._reservoir.append(item)
                self._seen += 1
                continue
            if self._seen == self._next_index:
                slot = int(self._rng.integers(0, self.k))
                self._reservoir[slot] = item
                self._w *= math.exp(math.log(self._rng.random()) / self.k)
                skip = math.floor(math.log(self._rng.random()) / math.log(1.0 - self._w))
                self._next_index += int(skip) + 1
            self._seen += 1


def reservoir_sample(items: Iterable[Any], k: int, seed: int = 0) -> list[Any]:
    """One-shot uniform sample of ``k`` items from an iterable."""
    sampler = ReservoirSampler(k, seed=seed)
    sampler.extend(items)
    return sampler.sample()


def shuffled_indices(n: int, seed: int = 0) -> Iterator[int]:
    """A random permutation of ``range(n)``, yielded lazily.

    Online aggregation consumes rows in random order; this provides that
    order without materialising anything beyond the permutation itself.
    """
    rng = np.random.default_rng(seed)
    for index in rng.permutation(n):
        yield int(index)
