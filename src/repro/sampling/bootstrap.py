"""Bootstrap error estimation ("knowing when you're wrong" [6]).

Closed-form CIs only exist for simple aggregates; for anything else —
ratios, quantiles, user-defined statistics — the bootstrap resamples the
sample itself.  Agarwal et al. showed AQP systems need such a diagnostic
layer because closed-form intervals silently fail off-assumption; the
companion :func:`bootstrap_diagnostic` implements their check: compare
bootstrap intervals across disjoint sub-samples and flag instability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import ApproximationError
from repro.sampling.estimators import Estimate


def bootstrap_ci(
    sample: np.ndarray,
    statistic: Callable[[np.ndarray], float],
    confidence: float = 0.95,
    num_resamples: int = 200,
    seed: int = 0,
) -> Estimate:
    """Percentile-bootstrap confidence interval for an arbitrary statistic.

    Args:
        sample: the observed sample.
        statistic: function mapping an array to a scalar.
        confidence: CI level.
        num_resamples: bootstrap replicates.
        seed: RNG seed.

    Returns:
        An :class:`Estimate` whose value is the statistic on the original
        sample and whose half-width is half the percentile interval (the
        interval is symmetrised for the Estimate container).
    """
    sample = np.asarray(sample, dtype=np.float64)
    if len(sample) == 0:
        raise ApproximationError("cannot bootstrap an empty sample")
    rng = np.random.default_rng(seed)
    point = float(statistic(sample))
    replicates = np.empty(num_resamples)
    n = len(sample)
    for i in range(num_resamples):
        replicates[i] = statistic(sample[rng.integers(0, n, size=n)])
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(replicates, [alpha, 1.0 - alpha])
    half = float(max(point - low, high - point))
    return Estimate(point, half, confidence, n, n)


@dataclass
class DiagnosticResult:
    """Outcome of the bootstrap reliability diagnostic."""

    reliable: bool
    relative_spread: float
    subsample_estimates: list[float]


def bootstrap_diagnostic(
    sample: np.ndarray,
    statistic: Callable[[np.ndarray], float],
    num_subsamples: int = 5,
    tolerance: float = 0.2,
    seed: int = 0,
) -> DiagnosticResult:
    """Check whether bootstrap error estimates can be trusted here.

    Splits the sample into disjoint sub-samples, computes the statistic on
    each, and flags unreliability when the spread across sub-samples
    exceeds ``tolerance`` relative to the overall estimate — the
    Kleiner/Agarwal-style diagnostic the tutorial's AQP section discusses.
    """
    sample = np.asarray(sample, dtype=np.float64)
    if len(sample) < num_subsamples * 2:
        raise ApproximationError("sample too small for the diagnostic")
    rng = np.random.default_rng(seed)
    permuted = sample[rng.permutation(len(sample))]
    chunks = np.array_split(permuted, num_subsamples)
    estimates = [float(statistic(chunk)) for chunk in chunks]
    overall = float(statistic(sample))
    scale = abs(overall) if overall != 0 else 1.0
    spread = (max(estimates) - min(estimates)) / scale
    return DiagnosticResult(
        reliable=spread <= tolerance,
        relative_spread=float(spread),
        subsample_estimates=estimates,
    )
