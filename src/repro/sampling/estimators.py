"""Closed-form estimators for aggregates under simple random sampling.

Given a simple random sample (without replacement) of size ``n`` from a
population of size ``N``, the classical CLT estimators with finite
population correction (FPC) are:

========  ==========================  =============================================
Aggregate  Point estimate              Standard error
========  ==========================  =============================================
AVG        sample mean ȳ               sqrt(s²/n · (1 − n/N))
SUM        N · ȳ                       N · SE(AVG)
COUNT      N · p̂  (p̂ = match frac.)   N · sqrt(p̂(1−p̂)/n · (1 − n/N))
========  ==========================  =============================================

These are exactly the estimators the online-aggregation and BlinkDB lines
of work use for their closed-form error bounds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

import numpy as np
from scipy.stats import norm

from repro.errors import ApproximationError


@dataclass(frozen=True)
class Estimate:
    """A point estimate with a symmetric confidence interval.

    Attributes:
        value: the point estimate.
        half_width: half the CI width (``value ± half_width``).
        confidence: the confidence level the interval was built at.
        sample_size: rows used.
        population_size: rows being estimated about.
    """

    value: float
    half_width: float
    confidence: float
    sample_size: int
    population_size: int

    @property
    def low(self) -> float:
        """Lower CI endpoint."""
        return self.value - self.half_width

    @property
    def high(self) -> float:
        """Upper CI endpoint."""
        return self.value + self.half_width

    @property
    def relative_error(self) -> float:
        """Half-width as a fraction of the estimate (inf when value is 0)."""
        if self.value == 0:
            return math.inf if self.half_width > 0 else 0.0
        return abs(self.half_width / self.value)

    def contains(self, truth: float) -> bool:
        """True if the interval covers ``truth``."""
        return self.low <= truth <= self.high


@dataclass(frozen=True)
class GroupedEstimate:
    """Per-group estimates of one aggregate."""

    groups: dict[Any, Estimate]

    def __getitem__(self, key: Any) -> Estimate:
        return self.groups[key]

    def __iter__(self):
        return iter(self.groups.items())

    def __len__(self) -> int:
        return len(self.groups)


def _fpc(sample_size: int, population_size: int) -> float:
    """Finite population correction factor (1 for tiny samples)."""
    if population_size <= 1 or sample_size >= population_size:
        return 0.0 if sample_size >= population_size else 1.0
    return 1.0 - sample_size / population_size


def srs_estimate(
    sample: np.ndarray,
    population_size: int,
    aggregate: str = "avg",
    confidence: float = 0.95,
) -> Estimate:
    """Estimate one aggregate from a simple random sample.

    Args:
        sample: sampled values.  For COUNT estimation pass a boolean array
            of per-row predicate outcomes (or sample only matching rows
            and pass their indicator).
        population_size: N, the full table's row count.
        aggregate: ``"avg"``, ``"sum"`` or ``"count"``.
        confidence: CI confidence level in (0, 1).

    Raises:
        ApproximationError: for an empty sample or unknown aggregate.
    """
    sample = np.asarray(sample, dtype=np.float64)
    n = len(sample)
    if n == 0:
        raise ApproximationError("cannot estimate from an empty sample")
    if not 0.0 < confidence < 1.0:
        raise ApproximationError(f"confidence must be in (0,1), got {confidence}")
    z = float(norm.ppf(0.5 + confidence / 2.0))
    fpc = _fpc(n, population_size)
    mean = float(sample.mean())
    variance = float(sample.var(ddof=1)) if n > 1 else 0.0
    se_mean = math.sqrt(max(0.0, variance / n * fpc))

    if aggregate == "avg":
        return Estimate(mean, z * se_mean, confidence, n, population_size)
    if aggregate == "sum":
        return Estimate(
            population_size * mean,
            z * population_size * se_mean,
            confidence,
            n,
            population_size,
        )
    if aggregate == "count":
        p = mean  # indicator mean
        se = math.sqrt(max(0.0, p * (1.0 - p) / n * fpc))
        return Estimate(
            population_size * p,
            z * population_size * se,
            confidence,
            n,
            population_size,
        )
    raise ApproximationError(f"unknown aggregate {aggregate!r}")


def combine_strata(
    estimates: list[tuple[Estimate, int]],
    aggregate: str,
    population_size: int,
    confidence: float = 0.95,
) -> Estimate:
    """Combine independent per-stratum estimates into one population estimate.

    Args:
        estimates: (stratum estimate, stratum population size) pairs; each
            estimate must be an AVG-style per-row mean for ``avg``, or a
            stratum total for ``sum``/``count``.
        aggregate: the aggregate being combined.
        population_size: total N.
        confidence: CI level of the inputs (assumed uniform).
    """
    if not estimates:
        raise ApproximationError("no strata to combine")
    z = float(norm.ppf(0.5 + confidence / 2.0))
    if aggregate in ("sum", "count"):
        value = sum(e.value for e, _ in estimates)
        variance = sum((e.half_width / z) ** 2 for e, _ in estimates)
        half = z * math.sqrt(variance)
    else:  # weighted mean of stratum means
        total = sum(size for _, size in estimates)
        value = sum(e.value * size for e, size in estimates) / total
        variance = sum(((e.half_width / z) * size / total) ** 2 for e, size in estimates)
        half = z * math.sqrt(variance)
    n = sum(e.sample_size for e, _ in estimates)
    return Estimate(value, half, confidence, n, population_size)
