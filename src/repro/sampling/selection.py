"""Offline sample selection under a storage budget (BlinkDB [7], §4).

BlinkDB does not stratify on every column set: given the *query column
sets* (QCSs) observed in the workload and a storage budget, it chooses
which stratified samples to build so that as much future workload as
possible can be answered well.  This module implements that optimisation
with the paper's weighted-coverage objective and a greedy
benefit-per-row heuristic (the LP's standard rounding companion):

- a query is *covered* by a sample whose stratification columns are a
  superset of the query's grouping columns (plus by any uniform sample,
  at lower quality for rare groups);
- each candidate sample costs its actual row footprint;
- greedily pick the candidate with the best marginal
  (frequency-weighted coverage) / cost until the budget is exhausted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.engine.table import Table
from repro.errors import ApproximationError
from repro.sampling.blinkdb import SampleCatalog
from repro.sampling.stratified import build_stratified_sample


@dataclass(frozen=True)
class WorkloadEntry:
    """One query template: its grouping column set and frequency."""

    group_columns: frozenset[str]
    frequency: float

    @classmethod
    def make(cls, columns: Sequence[str], frequency: float = 1.0) -> "WorkloadEntry":
        """Convenience constructor."""
        return cls(group_columns=frozenset(columns), frequency=float(frequency))


@dataclass
class SelectionReport:
    """Outcome of the sample-selection optimisation."""

    chosen_column_sets: list[tuple[str, ...]]
    rows_used: int
    budget: int
    workload_coverage: float
    skipped: list[tuple[str, ...]] = field(default_factory=list)

    @property
    def within_budget(self) -> bool:
        """True when the built samples fit the budget."""
        return self.rows_used <= self.budget


def candidate_column_sets(workload: Sequence[WorkloadEntry]) -> list[frozenset[str]]:
    """The candidate stratification sets: every distinct QCS in the
    workload (BlinkDB restricts candidates to observed sets)."""
    seen = []
    for entry in workload:
        if entry.group_columns and entry.group_columns not in seen:
            seen.append(entry.group_columns)
    return seen


def _coverage(
    chosen: list[frozenset[str]], workload: Sequence[WorkloadEntry]
) -> float:
    total = sum(entry.frequency for entry in workload)
    if total == 0:
        return 0.0
    covered = sum(
        entry.frequency
        for entry in workload
        if any(entry.group_columns <= columns for columns in chosen)
        or not entry.group_columns  # ungrouped queries: any sample works
    )
    return covered / total


def choose_samples(
    table: Table,
    workload: Sequence[WorkloadEntry],
    budget_rows: int,
    cap: int = 200,
    seed: int = 0,
) -> tuple[SampleCatalog, SelectionReport]:
    """Build the best sample catalog that fits the budget.

    Args:
        table: the base table.
        workload: query templates with frequencies.
        budget_rows: total rows the catalog may store.
        cap: per-group cap K for each stratified sample.
        seed: RNG seed.

    Returns:
        The built :class:`SampleCatalog` and a :class:`SelectionReport`.

    Raises:
        ApproximationError: if the budget cannot even hold the smallest
            candidate (an empty catalog would be useless).
    """
    if budget_rows <= 0:
        raise ApproximationError("budget must be positive")
    candidates = candidate_column_sets(workload)
    # materialise candidate samples once to know their true row costs
    built = {}
    for columns in candidates:
        ordered = tuple(sorted(columns))
        built[columns] = build_stratified_sample(table, list(ordered), cap, seed=seed)

    chosen: list[frozenset[str]] = []
    rows_used = 0
    remaining = list(candidates)
    while remaining:
        best = None
        best_ratio = 0.0
        current_coverage = _coverage(chosen, workload)
        for columns in remaining:
            cost = built[columns].size
            if rows_used + cost > budget_rows:
                continue
            gain = _coverage(chosen + [columns], workload) - current_coverage
            ratio = gain / max(1, cost)
            if ratio > best_ratio:
                best_ratio = ratio
                best = columns
        if best is None:
            break
        chosen.append(best)
        rows_used += built[best].size
        remaining.remove(best)

    catalog = SampleCatalog(table)
    for columns in chosen:
        catalog.add_stratified(sorted(columns), cap=cap, seed=seed)
    # spend leftover budget on a uniform sample (answers ungrouped queries
    # and anything the stratified set misses, at uniform quality)
    leftover = budget_rows - rows_used
    if leftover >= max(1, table.num_rows // 1000):
        fraction = min(1.0, leftover / table.num_rows)
        if fraction > 0:
            uniform = catalog.add_uniform(fraction, seed=seed + 1)
            rows_used += uniform.size

    report = SelectionReport(
        chosen_column_sets=[tuple(sorted(c)) for c in chosen],
        rows_used=rows_used,
        budget=budget_rows,
        workload_coverage=_coverage(chosen, workload),
        skipped=[tuple(sorted(c)) for c in remaining],
    )
    if not catalog.samples():
        raise ApproximationError(
            f"budget of {budget_rows} rows cannot hold any candidate sample"
        )
    return catalog, report
