"""Stratified samples with per-group caps (BlinkDB [7]).

A uniform sample of a skewed table starves rare groups: a group holding
0.1% of the rows gets ~0.1% of the sample, often too few rows for any
usable estimate.  BlinkDB's stratified samples instead take
``min(cap, |group|)`` rows from **every** group, so rare groups are as
well represented as popular ones.  Each stored row carries its group's
scale factor ``|group| / taken``, which the estimators use to stay
unbiased.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.engine.table import Table
from repro.errors import ApproximationError
from repro.sampling.estimators import Estimate, combine_strata, srs_estimate


@dataclass
class Stratum:
    """One group's slice of a stratified sample."""

    key: tuple[Any, ...]
    row_indices: np.ndarray  # positions in the base table
    population: int

    @property
    def taken(self) -> int:
        """Sampled rows in this stratum."""
        return len(self.row_indices)

    @property
    def scale(self) -> float:
        """Per-row expansion factor |group| / taken."""
        return self.population / max(1, self.taken)


@dataclass
class StratifiedSample:
    """A stratified sample of a table on a set of grouping columns.

    Attributes:
        columns: the stratification columns (in order).
        cap: per-group row cap K.
        strata: one :class:`Stratum` per distinct group.
        base_rows: base-table cardinality.
    """

    columns: tuple[str, ...]
    cap: int
    strata: dict[tuple[Any, ...], Stratum]
    base_rows: int

    @property
    def size(self) -> int:
        """Total sampled rows."""
        return sum(s.taken for s in self.strata.values())

    @property
    def fraction(self) -> float:
        """Sampled fraction of the base table."""
        return self.size / max(1, self.base_rows)

    def covers(self, group_columns: Sequence[str]) -> bool:
        """True if this sample stratifies on a superset of the given columns."""
        return set(group_columns) <= set(self.columns)

    def estimate_grouped(
        self,
        table: Table,
        value_column: str | None,
        aggregate: str,
        group_columns: Sequence[str] | None = None,
        confidence: float = 0.95,
    ) -> dict[tuple[Any, ...], Estimate]:
        """Per-group estimates of one aggregate from the sample.

        Args:
            table: the base table the sample indexes into.
            value_column: the aggregated column (None only for ``count``).
            aggregate: ``"avg"``, ``"sum"`` or ``"count"``.
            group_columns: the query's GROUP BY columns; must be a subset
                of the stratification columns.  Defaults to all of them.
        """
        group_columns = tuple(group_columns or self.columns)
        if not self.covers(group_columns):
            raise ApproximationError(
                f"sample on {self.columns} cannot answer GROUP BY {group_columns}"
            )
        positions = [self.columns.index(c) for c in group_columns]
        buckets: dict[tuple[Any, ...], list[Stratum]] = {}
        for stratum in self.strata.values():
            out_key = tuple(stratum.key[p] for p in positions)
            buckets.setdefault(out_key, []).append(stratum)

        values_col = table.column(value_column) if value_column else None
        results: dict[tuple[Any, ...], Estimate] = {}
        for out_key, strata in buckets.items():
            parts: list[tuple[Estimate, int]] = []
            group_population = sum(s.population for s in strata)
            for stratum in strata:
                if value_column is None or aggregate == "count":
                    sample_values = np.ones(stratum.taken)
                else:
                    data = values_col.data[stratum.row_indices]
                    sample_values = np.asarray(data, dtype=np.float64)
                per_stratum_aggregate = "avg" if aggregate == "avg" else aggregate
                if aggregate == "count":
                    # every sampled row is a member: the count is known
                    # exactly per stratum (it is the stored population)
                    parts.append(
                        (
                            Estimate(
                                float(stratum.population), 0.0, confidence,
                                stratum.taken, stratum.population,
                            ),
                            stratum.population,
                        )
                    )
                    continue
                parts.append(
                    (
                        srs_estimate(
                            sample_values,
                            stratum.population,
                            per_stratum_aggregate,
                            confidence,
                        ),
                        stratum.population,
                    )
                )
            results[out_key] = combine_strata(
                parts, aggregate, group_population, confidence
            )
        return results


def build_stratified_sample(
    table: Table,
    columns: Sequence[str],
    cap: int,
    seed: int = 0,
) -> StratifiedSample:
    """Build a stratified sample capped at ``cap`` rows per group.

    Args:
        table: base table.
        columns: stratification columns.
        cap: maximum rows kept per distinct group (K in the paper).
        seed: RNG seed.
    """
    if cap <= 0:
        raise ApproximationError("cap must be positive")
    rng = np.random.default_rng(seed)
    group_rows: dict[tuple[Any, ...], list[int]] = {}
    key_columns = [table.column(c) for c in columns]
    for row in range(table.num_rows):
        key = tuple(col[row] for col in key_columns)
        group_rows.setdefault(key, []).append(row)
    strata: dict[tuple[Any, ...], Stratum] = {}
    for key, rows in group_rows.items():
        rows_arr = np.asarray(rows, dtype=np.int64)
        if len(rows_arr) > cap:
            chosen = rng.choice(rows_arr, size=cap, replace=False)
        else:
            chosen = rows_arr
        strata[key] = Stratum(key=key, row_indices=np.sort(chosen), population=len(rows_arr))
    return StratifiedSample(
        columns=tuple(columns), cap=cap, strata=strata, base_rows=table.num_rows
    )


def build_uniform_sample(table: Table, fraction: float, seed: int = 0) -> np.ndarray:
    """Row positions of a uniform sample of the given fraction."""
    if not 0.0 < fraction <= 1.0:
        raise ApproximationError(f"fraction must be in (0, 1], got {fraction}")
    rng = np.random.default_rng(seed)
    n = table.num_rows
    size = max(1, int(round(n * fraction)))
    return np.sort(rng.choice(n, size=size, replace=False))
