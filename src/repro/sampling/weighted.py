"""SciBORQ impressions: weighted sampling under hard budgets ([59, 60]).

SciBORQ manages scientific exploration with *impressions* — samples whose
membership is biased toward the regions the scientist currently cares
about, built under strict **bounds on runtime** (a row budget) **and
quality** (a bias knob trading uniform coverage against focus).

:class:`WeightedSampler` draws without replacement with probability
proportional to ``weight ** bias``; ``bias=0`` degrades to uniform
sampling, larger values focus the impression ever harder on high-weight
rows.  Horvitz–Thompson style reweighting keeps aggregate estimates
approximately unbiased.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ApproximationError


@dataclass
class Impression:
    """A weighted sample ("impression") of a table.

    Attributes:
        row_indices: sampled base-table rows.
        inclusion_probabilities: per-sampled-row inclusion probabilities,
            used for Horvitz–Thompson estimation.
        budget: the row budget it was built under.
    """

    row_indices: np.ndarray
    inclusion_probabilities: np.ndarray
    budget: int

    @property
    def size(self) -> int:
        """Rows in the impression."""
        return len(self.row_indices)

    def horvitz_thompson_sum(self, values: np.ndarray) -> float:
        """Unbiased estimate of ``values.sum()`` over the full table.

        ``values`` must be the sampled rows' values, aligned with
        ``row_indices``.
        """
        values = np.asarray(values, dtype=np.float64)
        if len(values) != self.size:
            raise ApproximationError("values must align with the impression rows")
        return float(np.sum(values / self.inclusion_probabilities))


class WeightedSampler:
    """Builds impressions biased toward high-weight rows.

    Args:
        weights: non-negative per-row interestingness weights.
        bias: focus knob; 0 = uniform, 1 = proportional to weight,
            larger = sharper focus.
        seed: RNG seed.
    """

    def __init__(self, weights: np.ndarray, bias: float = 1.0, seed: int = 0) -> None:
        weights = np.asarray(weights, dtype=np.float64)
        if len(weights) == 0:
            raise ApproximationError("weights must be non-empty")
        if (weights < 0).any():
            raise ApproximationError("weights must be non-negative")
        if bias < 0:
            raise ApproximationError("bias must be non-negative")
        self._weights = weights
        self.bias = bias
        self._rng = np.random.default_rng(seed)
        raw = weights**bias if bias > 0 else np.ones_like(weights)
        if raw.sum() == 0:
            raw = np.ones_like(weights)
        self._probabilities = raw / raw.sum()

    @property
    def num_rows(self) -> int:
        """Base-table cardinality."""
        return len(self._weights)

    def build(self, budget: int) -> Impression:
        """Draw one impression of at most ``budget`` rows.

        Uses successive PPS draws without replacement; inclusion
        probabilities follow Rosén's exponential approximation
        ``π_i = 1 − exp(−t·p_i)`` with ``t`` calibrated so that
        ``Σπ_i = budget`` — accurate even when some rows are near-certain
        to be drawn, which keeps Horvitz–Thompson estimates unbiased under
        heavy focus.
        """
        if budget <= 0:
            raise ApproximationError("budget must be positive")
        budget = min(budget, self.num_rows)
        chosen = self._rng.choice(
            self.num_rows,
            size=budget,
            replace=False,
            p=self._probabilities,
        )
        chosen = np.sort(chosen)
        inclusion = self._inclusion_probabilities(budget)[chosen]
        return Impression(
            row_indices=chosen,
            inclusion_probabilities=np.clip(inclusion, 1e-12, 1.0),
            budget=budget,
        )

    def _inclusion_probabilities(self, budget: int) -> np.ndarray:
        """Per-row inclusion probabilities for a given budget."""
        p = self._probabilities
        if budget >= self.num_rows:
            return np.ones_like(p)
        lo, hi = float(budget), float(budget)
        while np.sum(1.0 - np.exp(-hi * p)) < budget:
            hi *= 2.0
        while np.sum(1.0 - np.exp(-lo * p)) > budget and lo > 1e-9:
            lo /= 2.0
        for _ in range(60):
            mid = (lo + hi) / 2.0
            if np.sum(1.0 - np.exp(-mid * p)) < budget:
                lo = mid
            else:
                hi = mid
        t = (lo + hi) / 2.0
        return 1.0 - np.exp(-t * p)

    def coverage_of(self, impression: Impression, mask: np.ndarray) -> float:
        """Fraction of an interesting region (boolean ``mask``) captured."""
        mask = np.asarray(mask, dtype=bool)
        interesting = int(mask.sum())
        if interesting == 0:
            return 1.0
        hit = int(mask[impression.row_indices].sum())
        return hit / interesting
