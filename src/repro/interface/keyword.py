"""Keyword search over relational databases ([67]).

The schema is modelled as a graph: tables are nodes, declared foreign-key
relationships are edges.  A keyword query is answered by:

1. finding per-table tuple matches for each keyword (substring match on
   string columns),
2. enumerating *candidate networks* — minimal join trees over the schema
   graph connecting tables that (together) cover all keywords,
3. executing the joins and scoring answers by compactness (fewer joins =
   better) and match quality.

This is the DISCOVER/BANKS-style architecture the survey [67] describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Sequence

import networkx as nx
import numpy as np

from repro.engine.catalog import Database
from repro.engine.operators import hash_join
from repro.engine.table import Table
from repro.engine.types import DataType
from repro.errors import InterfaceError


@dataclass(frozen=True)
class ForeignKey:
    """A declared FK edge: ``child.child_column -> parent.parent_column``."""

    child_table: str
    child_column: str
    parent_table: str
    parent_column: str


@dataclass
class JoinedResult:
    """One keyword-search answer."""

    tables: tuple[str, ...]
    rows: Table
    score: float
    keywords_covered: frozenset[str]


class KeywordSearchEngine:
    """Keyword search over a multi-table database.

    Args:
        db: the database.
        foreign_keys: declared FK relationships (the schema graph edges).
        max_network_size: largest candidate network (tables per answer).
    """

    def __init__(
        self,
        db: Database,
        foreign_keys: Sequence[ForeignKey],
        max_network_size: int = 3,
    ) -> None:
        self.db = db
        self.foreign_keys = list(foreign_keys)
        self.max_network_size = max_network_size
        self._graph = nx.Graph()
        for name in db.table_names():
            self._graph.add_node(name)
        for fk in self.foreign_keys:
            if not (db.has_table(fk.child_table) and db.has_table(fk.parent_table)):
                raise InterfaceError(f"foreign key references unknown table: {fk}")
            self._graph.add_edge(fk.child_table, fk.parent_table, fk=fk)

    # -- matching -----------------------------------------------------------------------

    def _table_matches(self, table_name: str, keyword: str) -> bool:
        table = self.db.get_table(table_name)
        lowered = keyword.lower()
        for column_name in table.column_names:
            column = table.column(column_name)
            if column.dtype is not DataType.STRING:
                continue
            if any(value is not None and lowered in value.lower() for value in column):
                return True
        return False

    def _match_map(self, keywords: Sequence[str]) -> dict[str, set[str]]:
        """keyword -> set of tables containing a match."""
        return {
            keyword: {
                name for name in self.db.table_names() if self._table_matches(name, keyword)
            }
            for keyword in keywords
        }

    def _row_filter(self, table: Table, keywords: Sequence[str]) -> Table:
        """Rows (of a base table or a joined network) covering ALL keywords."""
        lowered = [k.lower() for k in keywords]
        keep = []
        for i in range(table.num_rows):
            row_text = " ".join(
                str(v).lower()
                for v in table.row(i)
                if isinstance(v, str)
            )
            if all(k in row_text for k in lowered):
                keep.append(i)
        return table.take(np.asarray(keep, dtype=np.int64)) if keep else table.slice(0, 0)

    # -- candidate networks ----------------------------------------------------------------

    def candidate_networks(self, keywords: Sequence[str]) -> list[tuple[str, ...]]:
        """Minimal connected table sets covering all keywords.

        Networks may include non-matching *intermediate* tables when those
        are needed to connect the matching ones through the FK graph (e.g.
        authors ⋈ papers ⋈ venues for keywords hitting authors and venues).
        """
        matches = self._match_map(keywords)
        if any(not tables for tables in matches.values()):
            return []
        candidates = sorted(self.db.table_names())
        networks: list[tuple[str, ...]] = []
        for size in range(1, self.max_network_size + 1):
            for subset in combinations(candidates, size):
                covered = all(
                    any(t in subset for t in matches[k]) for k in keywords
                )
                if not covered:
                    continue
                subgraph = self._graph.subgraph(subset)
                if size > 1 and not nx.is_connected(subgraph):
                    continue
                if any(set(existing) <= set(subset) for existing in networks):
                    continue  # a smaller network already covers this
                networks.append(subset)
        return networks

    # -- execution -----------------------------------------------------------------------

    def search(self, keywords: Sequence[str], k: int = 5) -> list[JoinedResult]:
        """Top-k joined answers covering all keywords."""
        if not keywords:
            raise InterfaceError("need at least one keyword")
        results: list[JoinedResult] = []
        for network in self.candidate_networks(keywords):
            rows = self._execute_network(network, keywords)
            if rows is None or rows.num_rows == 0:
                continue
            # compactness score: 1 / network size, boosted by match count
            score = (1.0 / len(network)) * min(1.0, rows.num_rows / 10.0 + 0.5)
            results.append(
                JoinedResult(
                    tables=network,
                    rows=rows,
                    score=score,
                    keywords_covered=frozenset(keywords),
                )
            )
        results.sort(key=lambda r: -r.score)
        return results[:k]

    def _execute_network(
        self, network: tuple[str, ...], keywords: Sequence[str]
    ) -> Table | None:
        if len(network) == 1:
            return self._row_filter(self.db.get_table(network[0]), keywords)
        # join along a spanning tree of the network
        subgraph = self._graph.subgraph(network)
        tree_edges = list(nx.minimum_spanning_edges(subgraph, data=True))
        joined: Table | None = None
        joined_tables: set[str] = set()
        for a, b, data in tree_edges:
            fk: ForeignKey = data["fk"]
            if joined is None:
                left = self.db.get_table(fk.child_table)
                right = self.db.get_table(fk.parent_table)
                joined = hash_join(left, right, fk.child_column, fk.parent_column)
                joined_tables = {fk.child_table, fk.parent_table}
                continue
            if fk.child_table in joined_tables:
                other = self.db.get_table(fk.parent_table)
                left_key, right_key = fk.child_column, fk.parent_column
            else:
                other = self.db.get_table(fk.child_table)
                left_key, right_key = fk.parent_column, fk.child_column
            if left_key not in joined.column_names:
                return None  # key was renamed/absorbed; skip this network
            joined = hash_join(joined, other, left_key, right_key)
            joined_tables.add(fk.parent_table)
            joined_tables.add(fk.child_table)
        if joined is None:
            return None
        return self._row_filter(joined, keywords)
