"""dbtouch: analytics at your fingertips ([32, 44]).

The dbtouch vision inverts the usual control flow: the *user's touches*
drive query processing.  A column is presented as a strip; as the finger
slides across it, the kernel processes only small slices of data under
the touch point, maintaining incremental statistics.  Total work is
therefore proportional to how much the user touched, never to table size
— the property the tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.table import Table
from repro.errors import InterfaceError


@dataclass
class TouchSummary:
    """Incremental statistics gathered from the touched slices."""

    rows_seen: int
    mean: float
    minimum: float
    maximum: float
    fraction_explored: float


class DbTouch:
    """A touch-driven exploration kernel over one table.

    Args:
        table: the data.
        slice_rows: rows processed per touch event (the "resolution" of a
            fingertip).
    """

    def __init__(self, table: Table, slice_rows: int = 64) -> None:
        if slice_rows <= 0:
            raise InterfaceError("slice_rows must be positive")
        self.table = table
        self.slice_rows = slice_rows
        self.rows_touched = 0
        self._state: dict[str, dict] = {}

    def _column_state(self, column: str) -> dict:
        if column not in self._state:
            payload = self.table.column(column)
            if not payload.dtype.is_numeric:
                raise InterfaceError(f"dbtouch needs a numeric column, got {column!r}")
            self._state[column] = {
                "values": np.asarray(payload.data, dtype=np.float64),
                "seen": np.zeros(self.table.num_rows, dtype=bool),
                "sum": 0.0,
                "count": 0,
                "min": np.inf,
                "max": -np.inf,
            }
        return self._state[column]

    def touch(self, column: str, position: float) -> TouchSummary:
        """Process the slice under a touch at ``position`` in [0, 1].

        The slice covers ``slice_rows`` rows centred on the touched
        fraction of the column strip; already-seen rows are not
        reprocessed (sliding back over explored data is free).
        """
        if not 0.0 <= position <= 1.0:
            raise InterfaceError(f"touch position must be in [0, 1], got {position}")
        state = self._column_state(column)
        n = len(state["values"])
        center = int(position * (n - 1)) if n > 1 else 0
        start = max(0, center - self.slice_rows // 2)
        end = min(n, start + self.slice_rows)
        fresh = ~state["seen"][start:end]
        new_values = state["values"][start:end][fresh]
        state["seen"][start:end] = True
        if len(new_values):
            self.rows_touched += len(new_values)
            state["sum"] += float(new_values.sum())
            state["count"] += len(new_values)
            state["min"] = min(state["min"], float(new_values.min()))
            state["max"] = max(state["max"], float(new_values.max()))
        return self.summary(column)

    def slide(self, column: str, start: float, stop: float, steps: int = 10) -> TouchSummary:
        """A continuous slide gesture: ``steps`` touches from start to stop."""
        if steps < 1:
            raise InterfaceError("a slide needs at least one step")
        positions = np.linspace(start, stop, steps)
        summary = self.summary(column)
        for position in positions:
            summary = self.touch(column, float(np.clip(position, 0.0, 1.0)))
        return summary

    def summary(self, column: str) -> TouchSummary:
        """Statistics over everything touched so far on ``column``."""
        state = self._column_state(column)
        count = state["count"]
        return TouchSummary(
            rows_seen=count,
            mean=state["sum"] / count if count else 0.0,
            minimum=state["min"] if count else 0.0,
            maximum=state["max"] if count else 0.0,
            fraction_explored=count / max(1, self.table.num_rows),
        )
