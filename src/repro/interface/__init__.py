"""Novel query interfaces (paper §2.1): touch, gestures, keywords.

- :class:`DbTouch` — dbtouch ([32, 44]): analytics driven by touch; the
  system processes only the data slices the finger passes over, so
  interaction cost is proportional to gesture length, not data size.
- :class:`GestureClassifier` / :class:`GestureQuerySession` — GestureDB
  ([45, 47]): classify raw touch traces into gestures and map them to
  relational operations over the presented table.
- :class:`KeywordSearchEngine` — keyword search over relational data
  ([67]): tuple matches joined through foreign-key candidate networks.
"""

from repro.interface.dbtouch import DbTouch, TouchSummary
from repro.interface.gestures import (
    Gesture,
    GestureClassifier,
    GestureQuerySession,
    TouchPoint,
)
from repro.interface.keyword import JoinedResult, KeywordSearchEngine

__all__ = [
    "DbTouch",
    "Gesture",
    "GestureClassifier",
    "GestureQuerySession",
    "JoinedResult",
    "KeywordSearchEngine",
    "TouchPoint",
    "TouchSummary",
]
