"""Gestural query specification (GestureDB [45, 47]).

Raw multi-touch traces are classified into a small gesture vocabulary and
mapped onto relational operations over the *presented* table:

=========  ================================
Gesture     Operation
=========  ================================
tap         preview the touched column
swipe-left  sort descending by the column
swipe-right sort ascending by the column
pinch       group by the column (summarise)
spread      undo the last operation
=========  ================================

Classification follows GestureDB's feature approach: path length,
displacement direction, and inter-finger distance change.  Ambiguous
traces yield a *ranked* list of gesture likelihoods, mirroring the
paper's proactive query suggestion while the gesture is still in flight.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence


from repro.engine.sql.ast import AggregateCall
from repro.engine.table import Table
from repro.engine import operators as ops
from repro.engine.expressions import col
from repro.engine.sql.ast import OrderItem
from repro.errors import InterfaceError


@dataclass(frozen=True)
class TouchPoint:
    """One sample of one finger: position plus timestamp."""

    x: float
    y: float
    t: float
    finger: int = 0


@dataclass
class Gesture:
    """A classified gesture with its likelihood ranking."""

    kind: str
    confidence: float
    ranking: list[tuple[str, float]] = field(default_factory=list)


_TAP_MAX_PATH = 0.02
_SWIPE_MIN_DISPLACEMENT = 0.15


class GestureClassifier:
    """Classifies touch traces into the gesture vocabulary."""

    VOCABULARY = ("tap", "swipe-left", "swipe-right", "pinch", "spread")

    def classify(self, trace: Sequence[TouchPoint]) -> Gesture:
        """Classify one trace (one or two fingers).

        Returns the most likely gesture; ``ranking`` holds the full
        likelihood ordering for ambiguity-aware clients.
        """
        if not trace:
            raise InterfaceError("cannot classify an empty trace")
        fingers = {p.finger for p in trace}
        scores: dict[str, float] = {kind: 0.0 for kind in self.VOCABULARY}
        if len(fingers) >= 2:
            spread_change = self._spread_change(trace)
            scale = min(1.0, abs(spread_change) / 0.2)
            if spread_change < 0:
                scores["pinch"] = 0.5 + 0.5 * scale
                scores["spread"] = 0.5 - 0.5 * scale
            else:
                scores["spread"] = 0.5 + 0.5 * scale
                scores["pinch"] = 0.5 - 0.5 * scale
        else:
            path = self._path_length(trace)
            dx = trace[-1].x - trace[0].x
            if path <= _TAP_MAX_PATH:
                scores["tap"] = 1.0
            else:
                strength = min(1.0, abs(dx) / _SWIPE_MIN_DISPLACEMENT)
                if dx < 0:
                    scores["swipe-left"] = 0.4 + 0.6 * strength
                    scores["swipe-right"] = 0.1
                else:
                    scores["swipe-right"] = 0.4 + 0.6 * strength
                    scores["swipe-left"] = 0.1
                scores["tap"] = max(0.0, 0.3 - path)
        ranking = sorted(scores.items(), key=lambda kv: -kv[1])
        kind, confidence = ranking[0]
        return Gesture(kind=kind, confidence=confidence, ranking=ranking)

    @staticmethod
    def _path_length(trace: Sequence[TouchPoint]) -> float:
        total = 0.0
        by_finger: dict[int, list[TouchPoint]] = {}
        for point in trace:
            by_finger.setdefault(point.finger, []).append(point)
        for points in by_finger.values():
            for a, b in zip(points[:-1], points[1:]):
                total += math.hypot(b.x - a.x, b.y - a.y)
        return total

    @staticmethod
    def _spread_change(trace: Sequence[TouchPoint]) -> float:
        by_finger: dict[int, list[TouchPoint]] = {}
        for point in trace:
            by_finger.setdefault(point.finger, []).append(point)
        fingers = sorted(by_finger)[:2]
        a, b = by_finger[fingers[0]], by_finger[fingers[1]]
        start = math.hypot(a[0].x - b[0].x, a[0].y - b[0].y)
        end = math.hypot(a[-1].x - b[-1].x, a[-1].y - b[-1].y)
        return end - start


class GestureQuerySession:
    """Maps classified gestures onto operations over a presented table."""

    def __init__(self, table: Table) -> None:
        self._history: list[Table] = [table]
        self.classifier = GestureClassifier()
        self.operations_log: list[str] = []

    @property
    def current(self) -> Table:
        """The table currently presented to the user."""
        return self._history[-1]

    def _column_at(self, x: float) -> str:
        names = self.current.column_names
        index = min(int(x * len(names)), len(names) - 1)
        return names[index]

    def apply_trace(self, trace: Sequence[TouchPoint]) -> str:
        """Classify a trace and execute the implied operation.

        Returns a description of what happened.
        """
        gesture = self.classifier.classify(trace)
        column = self._column_at(trace[0].x)
        return self.apply_gesture(gesture.kind, column)

    def apply_gesture(self, kind: str, column: str) -> str:
        """Execute one gesture's operation on the named column."""
        table = self.current
        if column not in table.column_names and kind != "spread":
            raise InterfaceError(f"no column {column!r} on screen")
        if kind == "tap":
            self.operations_log.append(f"preview {column}")
            return f"preview of {column}: {table.column(column).to_list()[:5]}"
        if kind in ("swipe-left", "swipe-right"):
            ascending = kind == "swipe-right"
            result = ops.sort_table(
                table, [OrderItem(expression=col(column), ascending=ascending)]
            )
            self._history.append(result)
            direction = "ascending" if ascending else "descending"
            self.operations_log.append(f"sort {column} {direction}")
            return f"sorted by {column} {direction}"
        if kind == "pinch":
            result = ops.hash_aggregate(
                table,
                [col(column)],
                [("count", AggregateCall(function="COUNT", argument=None))],
                [column],
            )
            self._history.append(result)
            self.operations_log.append(f"group by {column}")
            return f"grouped by {column} ({result.num_rows} groups)"
        if kind == "spread":
            if len(self._history) > 1:
                self._history.pop()
                self.operations_log.append("undo")
                return "undid last operation"
            return "nothing to undo"
        raise InterfaceError(f"unknown gesture {kind!r}")
