"""An H2O-style adaptive store ([9]).

The store executes queries under its current physical layout, charging
the layout's cost model, while a :class:`WorkloadMonitor` watches what the
queries touch.  Every ``evaluation_interval`` queries it searches the
candidate-layout space — pure row, pure column, and the affinity-derived
column grouping — projects each candidate's cost over the recent window,
and switches when the projected saving over one window exceeds the
one-off reorganisation cost.

The S14 benchmark replays a phase-shifting workload (tuple-heavy ↔
scan-heavy) and shows the adaptive store tracking whichever static layout
is currently best, paying brief reorganisation spikes at phase changes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.obs.metrics import register_stats_source
from repro.storage.layouts import (
    ColumnGroupLayout,
    ColumnLayout,
    Layout,
    QueryProfile,
    RowLayout,
)
from repro.storage.workload import WorkloadMonitor


@dataclass
class AdaptationEvent:
    """Record of one layout switch."""

    at_query: int
    old_layout: str
    new_layout: str
    reorganisation_cost: float


class AdaptiveStore:
    """A self-reorganising table store.

    Args:
        columns: the table's columns.
        num_rows: table cardinality (drives the cost model).
        initial_layout: starting layout; defaults to a row layout, the
            common load-time default.
        evaluation_interval: queries between layout re-evaluations.
        window: workload-monitor window size.
    """

    def __init__(
        self,
        columns: Sequence[str],
        num_rows: int,
        initial_layout: Layout | None = None,
        evaluation_interval: int = 10,
        window: int = 30,
    ) -> None:
        self.columns = list(columns)
        self.num_rows = num_rows
        self.layout: Layout = initial_layout or RowLayout(self.columns)
        self.evaluation_interval = evaluation_interval
        self.monitor = WorkloadMonitor(self.columns, window=window)
        self.queries_seen = 0
        self.total_cost = 0.0
        self.query_costs: list[float] = []
        self.events: list[AdaptationEvent] = []
        register_stats_source("storage.adaptive_store", self)

    def metrics(self) -> dict[str, Any]:
        """Snapshot for the metrics registry."""
        return {
            "layout": self.layout.describe(),
            "queries_seen": self.queries_seen,
            "total_cost": self.total_cost,
            "adaptations": len(self.events),
        }

    def execute(self, profile: QueryProfile) -> float:
        """Charge one query; returns its cost (including any reorganisation
        triggered immediately before it ran)."""
        self.queries_seen += 1
        self.monitor.record(profile)
        reorg_cost = 0.0
        if self.queries_seen % self.evaluation_interval == 0:
            reorg_cost = self._maybe_adapt()
        cost = self.layout.scan_cost(profile, self.num_rows) + reorg_cost
        self.total_cost += cost
        self.query_costs.append(cost)
        return cost

    def _candidates(self) -> list[Layout]:
        candidates: list[Layout] = [
            RowLayout(self.columns),
            ColumnLayout(self.columns),
        ]
        groups = self.monitor.suggest_groups()
        if 1 < len(groups) < len(self.columns):
            candidates.append(ColumnGroupLayout(groups))
        return candidates

    def _window_cost(self, layout: Layout) -> float:
        return sum(
            layout.scan_cost(profile, self.num_rows)
            for profile in self.monitor.profiles()
        )

    def _maybe_adapt(self) -> float:
        """Switch layout if a candidate beats the current one by more than
        its reorganisation cost; returns the cost charged (0 if no switch)."""
        current_cost = self._window_cost(self.layout)
        best_layout = self.layout
        best_cost = current_cost
        for candidate in self._candidates():
            cost = self._window_cost(candidate)
            if cost < best_cost:
                best_cost = cost
                best_layout = candidate
        if best_layout is self.layout:
            return 0.0
        saving = current_cost - best_cost
        reorg = best_layout.reorganisation_cost(self.num_rows)
        if saving <= reorg:
            return 0.0
        self.events.append(
            AdaptationEvent(
                at_query=self.queries_seen,
                old_layout=self.layout.describe(),
                new_layout=best_layout.describe(),
                reorganisation_cost=reorg,
            )
        )
        self.layout = best_layout
        return reorg
