"""Adaptive storage layouts (paper §2.3).

There is no universally good layout: row stores win wide-tuple access,
column stores win narrow scans, and column groups sit between.  This
package implements:

- :mod:`repro.storage.layouts` — row / column / column-group layouts with
  an explicit cells-touched cost model.
- :class:`AdaptiveStore` — an H2O-style store ([9]) that monitors the
  workload and reorganises itself when the projected benefit exceeds the
  reorganisation cost.
- :mod:`repro.storage.declarative` — a small declarative layout language
  in the spirit of RodentStore ([17]).
"""

from repro.storage.layouts import (
    ColumnGroupLayout,
    ColumnLayout,
    Layout,
    QueryProfile,
    RowLayout,
)
from repro.storage.workload import WorkloadMonitor
from repro.storage.adaptive_store import AdaptiveStore
from repro.storage.declarative import parse_layout_spec

__all__ = [
    "AdaptiveStore",
    "ColumnGroupLayout",
    "ColumnLayout",
    "Layout",
    "QueryProfile",
    "RowLayout",
    "WorkloadMonitor",
    "parse_layout_spec",
]
