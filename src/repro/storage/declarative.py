"""A declarative storage-layout language (RodentStore-flavoured, [17]).

The tutorial's "flexible engines" cluster argues layouts should be
*declared*, not hard-coded.  This module provides a tiny spec language::

    row(a, b, c)                     -- one NSM table
    column(a, b, c)                  -- one DSM column per column
    groups({a, b}; {c})              -- explicit column groups

and a parser producing :class:`~repro.storage.layouts.Layout` objects, so
layout policies can be stored, diffed and replayed as text.
"""

from __future__ import annotations

import re

from repro.errors import ParseError
from repro.storage.layouts import ColumnGroupLayout, ColumnLayout, Layout, RowLayout

_SPEC_RE = re.compile(r"^\s*(row|column|groups)\s*\((.*)\)\s*$", re.DOTALL)
_IDENT_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


def _split_idents(text: str) -> list[str]:
    names = [part.strip() for part in text.split(",") if part.strip()]
    for name in names:
        if not _IDENT_RE.match(name):
            raise ParseError(f"invalid column name {name!r} in layout spec")
    if len(set(names)) != len(names):
        raise ParseError(f"duplicate column in layout spec: {names}")
    return names


def parse_layout_spec(spec: str) -> Layout:
    """Parse a layout spec string into a :class:`Layout`.

    Raises:
        ParseError: if the spec does not match the grammar.
    """
    match = _SPEC_RE.match(spec)
    if match is None:
        raise ParseError(f"cannot parse layout spec {spec!r}")
    kind, body = match.group(1), match.group(2)
    if kind == "row":
        names = _split_idents(body)
        if not names:
            raise ParseError("row() layout needs at least one column")
        return RowLayout(names)
    if kind == "column":
        names = _split_idents(body)
        if not names:
            raise ParseError("column() layout needs at least one column")
        return ColumnLayout(names)
    groups: list[list[str]] = []
    for chunk in body.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        if not (chunk.startswith("{") and chunk.endswith("}")):
            raise ParseError(f"group {chunk!r} must be wrapped in braces")
        groups.append(_split_idents(chunk[1:-1]))
    if not groups:
        raise ParseError("groups() layout needs at least one group")
    seen: set[str] = set()
    for group in groups:
        overlap = seen & set(group)
        if overlap:
            raise ParseError(f"column(s) {sorted(overlap)} appear in multiple groups")
        seen.update(group)
    return ColumnGroupLayout(groups)


def render_layout(layout: Layout) -> str:
    """Render a layout back to its spec text (inverse of the parser)."""
    return layout.describe()
