"""Storage layouts, their access-cost model, and column serialization.

Costs are measured in *cells touched* — the machine-independent unit the
adaptive-storage literature reasons in.  The model captures the three
classical effects:

- a row store reads whole tuples, so narrow scans over many rows are
  expensive but wide access to few rows is cheap;
- a column store reads exactly the scanned columns, but materialising
  wide outputs pays a tuple-reconstruction penalty per column stitched
  back together;
- column groups interpolate: columns co-accessed by the workload share a
  group and are read together.

This module is also the engine's physical (de)serialization seam: the
durability layer (:mod:`repro.engine.wal`) persists every column through
:func:`save_column_files`/:func:`open_column_files` — raw per-part
``.npy`` files (the dense payload, the validity mask and any dictionary
encoding) that the out-of-core tier can reopen as read-only
``np.memmap`` views instead of materialised arrays.  ``PRAGMA
storage=memory|mmap`` / ``REPRO_STORAGE`` selects the mode through
:func:`get_config`/:func:`configure`.  The older one-``.npz``-per-column
form (:func:`save_column`/:func:`load_column`) remains for WAL snapshot
blobs and v1 checkpoints.  No pickle anywhere: STRING payloads
round-trip through NumPy unicode arrays, which keeps checkpoint files
inert data.
"""

from __future__ import annotations

import abc
import io
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Iterable, Mapping, Sequence

import numpy as np

#: Random-access penalty for stitching a tuple together across storage
#: units (relative to a sequential cell read).
RECONSTRUCTION_PENALTY = 4.0


@dataclass(frozen=True)
class QueryProfile:
    """What one query touches, as far as storage cost is concerned.

    Attributes:
        filter_columns: columns evaluated for every row.
        project_columns: columns materialised for qualifying rows.
        selectivity: fraction of rows qualifying, in [0, 1].
    """

    filter_columns: frozenset[str]
    project_columns: frozenset[str]
    selectivity: float = 0.1

    @classmethod
    def make(
        cls,
        filters: Iterable[str],
        projects: Iterable[str],
        selectivity: float = 0.1,
    ) -> "QueryProfile":
        """Convenience constructor from any iterables."""
        return cls(
            filter_columns=frozenset(filters),
            project_columns=frozenset(projects),
            selectivity=float(selectivity),
        )

    @property
    def all_columns(self) -> frozenset[str]:
        """Every column the query touches."""
        return self.filter_columns | self.project_columns


class Layout(abc.ABC):
    """A physical layout of a table with ``columns``."""

    def __init__(self, columns: Sequence[str]) -> None:
        self.columns = list(columns)

    @abc.abstractmethod
    def scan_cost(self, profile: QueryProfile, num_rows: int) -> float:
        """Cells touched to execute one query under this layout."""

    @abc.abstractmethod
    def describe(self) -> str:
        """Human-readable layout description."""

    def reorganisation_cost(self, num_rows: int) -> float:
        """Cells touched to rewrite the table into this layout."""
        return float(num_rows * len(self.columns))

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.describe()})"


class RowLayout(Layout):
    """All columns stored together, tuple at a time (NSM)."""

    def scan_cost(self, profile: QueryProfile, num_rows: int) -> float:
        width = len(self.columns)
        # the filter phase drags in whole tuples; projection is then free
        # because qualifying tuples were already read
        return float(num_rows * width)

    def describe(self) -> str:
        return "row(" + ", ".join(self.columns) + ")"


class ColumnLayout(Layout):
    """Every column stored separately (DSM)."""

    def scan_cost(self, profile: QueryProfile, num_rows: int) -> float:
        filter_cost = num_rows * len(profile.filter_columns & set(self.columns))
        project_only = (profile.project_columns - profile.filter_columns) & set(
            self.columns
        )
        reconstruction = (
            profile.selectivity
            * num_rows
            * len(project_only)
            * RECONSTRUCTION_PENALTY
        )
        return float(filter_cost + reconstruction)

    def describe(self) -> str:
        return "column(" + ", ".join(self.columns) + ")"


class ColumnGroupLayout(Layout):
    """Columns partitioned into groups stored together (PAX-like hybrids).

    Args:
        groups: a partition of the table's columns.
    """

    def __init__(self, groups: Sequence[Sequence[str]]) -> None:
        flattened = [column for group in groups for column in group]
        if len(set(flattened)) != len(flattened):
            raise ValueError("column groups must be disjoint")
        super().__init__(flattened)
        self.groups = [list(group) for group in groups if group]

    def scan_cost(self, profile: QueryProfile, num_rows: int) -> float:
        cost = 0.0
        groups_touched_for_projection = 0
        for group in self.groups:
            group_set = set(group)
            if group_set & profile.filter_columns:
                # the whole group is read for the filter scan
                cost += num_rows * len(group)
            elif group_set & profile.project_columns:
                groups_touched_for_projection += 1
                cost += (
                    profile.selectivity
                    * num_rows
                    * len(group)
                    * RECONSTRUCTION_PENALTY
                )
        return float(cost)

    def describe(self) -> str:
        rendered = "; ".join("{" + ", ".join(g) + "}" for g in self.groups)
        return f"groups({rendered})"


# -- column serialization (the durability layer's physical seam) ----------------------
#
# One ``.npz`` per column: ``data`` (STRING payloads as NumPy unicode, so
# nothing needs pickle), optional ``validity``, and the optional
# ``codes``/``dictionary`` pair of a dictionary-encoded STRING column.
# The logical dtype travels out of band (checkpoint manifest / WAL record
# metadata) — the arrays alone do not distinguish INT64 from a sequence
# of integers that happens to back a FLOAT64 column.


def _strings_to_unicode(data: np.ndarray, validity: np.ndarray | None) -> np.ndarray:
    """An object payload of ``str`` as a dense NumPy unicode array.

    Null slots may hold ``None``; they are parked as ``""`` (the validity
    mask, stored alongside, is what distinguishes a null from an actual
    empty string).
    """
    if validity is not None:
        data = data.copy()
        data[~validity] = ""
    if len(data) == 0:
        return np.empty(0, dtype="U1")
    return np.asarray(data, dtype=np.str_)


def column_to_arrays(column: "Column") -> dict[str, np.ndarray]:
    """The dense arrays that fully describe ``column`` (pickle-free)."""
    from repro.engine.types import DataType

    validity = column.validity
    if column.dtype is DataType.STRING:
        arrays = {"data": _strings_to_unicode(column.data, validity)}
        pair = column.dictionary()
        if pair is not None:
            codes, dictionary = pair
            arrays["codes"] = codes
            arrays["dictionary"] = _strings_to_unicode(dictionary, None)
    else:
        arrays = {"data": column.data}
    if validity is not None:
        arrays["validity"] = validity
    return arrays


def column_from_arrays(arrays: dict[str, np.ndarray], dtype: "DataType") -> "Column":
    """Rebuild a column from :func:`column_to_arrays` output."""
    from repro.engine.column import column_from_parts
    from repro.engine.types import DataType

    data = arrays["data"]
    validity = arrays.get("validity")
    if validity is not None:
        validity = validity.astype(bool)
    if dtype is DataType.STRING:
        data = data.astype(object)
        if validity is not None:
            data = data.copy()
            data[~validity] = None
    column = column_from_parts(np.ascontiguousarray(data) if data.dtype != object else data,
                               dtype, validity)
    codes = arrays.get("codes")
    dictionary = arrays.get("dictionary")
    if codes is not None and dictionary is not None:
        column._codes = codes.astype(np.int32)
        column._dict = dictionary.astype(object)
    return column


def save_column(target: str | IO[bytes], column: "Column") -> None:
    """Serialise one column as an uncompressed ``.npz`` (path or stream)."""
    np.savez(target, **column_to_arrays(column))


def load_column(source: str | IO[bytes], dtype: "DataType") -> "Column":
    """Load a column written by :func:`save_column` (``allow_pickle=False``)."""
    with np.load(source, allow_pickle=False) as npz:
        arrays = {key: npz[key] for key in npz.files}
    return column_from_arrays(arrays, dtype)


def table_to_bytes(table: "Table") -> bytes:
    """A whole table as one self-describing ``.npz`` blob.

    Used for WAL snapshot records (programmatic ``create_table`` /
    ``replace_table`` payloads); checkpoints store one file per column
    instead, via :func:`save_column`.
    """
    payload: dict[str, np.ndarray] = {
        "__names": np.asarray(list(table.column_names), dtype=np.str_)
        if table.num_columns
        else np.empty(0, dtype="U1"),
        "__dtypes": np.asarray(
            [table.schema.type_of(n).name for n in table.column_names], dtype=np.str_
        ),
    }
    for i, name in enumerate(table.column_names):
        for key, array in column_to_arrays(table.column(name)).items():
            payload[f"c{i}.{key}"] = array
    buffer = io.BytesIO()
    np.savez(buffer, **payload)
    return buffer.getvalue()


def table_from_bytes(blob: bytes) -> "Table":
    """Rebuild a table from :func:`table_to_bytes` output."""
    from repro.engine.table import Table
    from repro.engine.types import DataType

    with np.load(io.BytesIO(blob), allow_pickle=False) as npz:
        arrays = {key: npz[key] for key in npz.files}
    names = [str(n) for n in arrays.pop("__names")]
    dtypes = [DataType[str(d)] for d in arrays.pop("__dtypes")]
    columns = []
    for i, (name, dtype) in enumerate(zip(names, dtypes)):
        prefix = f"c{i}."
        parts = {
            key[len(prefix):]: array
            for key, array in arrays.items()
            if key.startswith(prefix)
        }
        columns.append((name, column_from_arrays(parts, dtype)))
    return Table(columns)


# -- out-of-core storage tier ---------------------------------------------------------
#
# Checkpoint v2 stores each column as raw per-part ``.npy`` files
# (``{stem}.data.npy`` plus optional ``validity``/``codes``/
# ``dictionary`` parts).  Unlike the ``.npz`` zip container, a raw
# ``.npy`` can be reopened as a read-only ``np.memmap`` view, so cold
# tables never have to be materialised: the scan path faults in only the
# pages it actually slices, and zone-map pruning skips the read itself.
# The dictionary part is always loaded into RAM — it is tiny (distinct
# values only) and every comparison kernel touches it.

#: Valid values for ``PRAGMA storage`` / ``REPRO_STORAGE``.
STORAGE_MODES = ("memory", "mmap")


@dataclass
class StorageConfig:
    """How checkpointed columns are (re)opened.

    ``memory`` materialises every column as a dense in-RAM array (the
    historical behaviour); ``mmap`` opens checkpoint part files as
    read-only ``np.memmap`` views so cold data stays on disk until a
    scan actually touches it.
    """

    storage: str = "memory"

    @classmethod
    def from_env(cls) -> "StorageConfig":
        mode = os.environ.get("REPRO_STORAGE", "memory").strip().lower()
        if mode not in STORAGE_MODES:
            mode = "memory"
        return cls(storage=mode)


_config = StorageConfig.from_env()


def get_config() -> StorageConfig:
    """The process-wide storage configuration."""
    return _config


def configure(*, storage: str | None = None) -> StorageConfig:
    """Update the storage configuration (``PRAGMA storage`` backend)."""
    if storage is not None:
        mode = str(storage).strip().lower()
        if mode not in STORAGE_MODES:
            raise ValueError(
                f"unknown storage mode {storage!r}; expected one of "
                + ", ".join(STORAGE_MODES)
            )
        _config.storage = mode
    return _config


def _fsync_save(path: Path, array: np.ndarray) -> None:
    """``np.save`` with the bytes flushed to disk before returning."""
    with open(path, "wb") as handle:
        np.save(handle, array)
        handle.flush()
        os.fsync(handle.fileno())


def save_column_files(directory: Path, stem: str, column: "Column") -> dict[str, str]:
    """Write ``column`` as raw per-part ``.npy`` files under ``directory``.

    Returns a mapping from part name (``data``/``validity``/``codes``/
    ``dictionary``) to the file name written, suitable for a checkpoint
    manifest and for :func:`open_column_files`.
    """
    files: dict[str, str] = {}
    for part, array in column_to_arrays(column).items():
        filename = f"{stem}.{part}.npy"
        _fsync_save(Path(directory) / filename, array)
        files[part] = filename
    return files


class ColumnBacking:
    """Handle onto the on-disk part files backing a mapped column.

    Keeps the memmap'd arrays (and through them the OS-level ``mmap``
    objects) reachable so :meth:`release` can drop them explicitly —
    required for checkpoint directories to be deletable on platforms
    with strict open-file semantics.
    """

    __slots__ = ("directory", "files", "arrays")

    def __init__(
        self,
        directory: Path,
        files: Mapping[str, str],
        arrays: Sequence[np.ndarray],
    ) -> None:
        self.directory = Path(directory)
        self.files = dict(files)
        self.arrays = list(arrays)

    def paths(self) -> dict[str, Path]:
        """Part name -> absolute path of the backing file."""
        return {part: self.directory / name for part, name in self.files.items()}

    def mmap_handles(self) -> list:
        """The OS-level mmap objects still held by the backing arrays."""
        return [
            array._mmap
            for array in self.arrays
            if hasattr(array, "_mmap") and array._mmap is not None
        ]

    def release(self) -> None:
        """Drop the array references so the underlying maps can close."""
        self.arrays = []


def open_column_files(
    directory: Path,
    files: Mapping[str, str],
    dtype: "DataType",
    mode: str = "memory",
) -> "Column":
    """Open a column written by :func:`save_column_files`.

    ``mode="memory"`` materialises every part (bit-identical to loading
    the old ``.npz`` form).  ``mode="mmap"`` opens the data/validity/
    codes parts as read-only ``np.memmap`` views and records a
    :class:`ColumnBacking` on the column; the dictionary part (if any)
    is small and always loaded into RAM.
    """
    from repro.engine.column import column_from_parts
    from repro.engine.types import DataType

    directory = Path(directory)
    if mode not in STORAGE_MODES:
        raise ValueError(f"unknown storage mode {mode!r}")
    if mode == "memory":
        arrays = {
            part: np.load(directory / name, allow_pickle=False)
            for part, name in files.items()
        }
        return column_from_arrays(arrays, dtype)

    mapped: list[np.ndarray] = []

    def _map(part: str) -> np.ndarray:
        array = np.load(directory / files[part], mmap_mode="r", allow_pickle=False)
        mapped.append(array)
        return array

    data = _map("data")
    validity = _map("validity").astype(bool, copy=False) if "validity" in files else None
    column = column_from_parts(data, dtype, validity)
    if dtype is DataType.STRING and "codes" in files and "dictionary" in files:
        column._codes = _map("codes")
        column._dict = np.load(
            directory / files["dictionary"], allow_pickle=False
        ).astype(object)
    column._backing = ColumnBacking(directory, files, mapped)
    return column
