"""Storage layouts and their access-cost model.

Costs are measured in *cells touched* — the machine-independent unit the
adaptive-storage literature reasons in.  The model captures the three
classical effects:

- a row store reads whole tuples, so narrow scans over many rows are
  expensive but wide access to few rows is cheap;
- a column store reads exactly the scanned columns, but materialising
  wide outputs pays a tuple-reconstruction penalty per column stitched
  back together;
- column groups interpolate: columns co-accessed by the workload share a
  group and are read together.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Iterable, Sequence

#: Random-access penalty for stitching a tuple together across storage
#: units (relative to a sequential cell read).
RECONSTRUCTION_PENALTY = 4.0


@dataclass(frozen=True)
class QueryProfile:
    """What one query touches, as far as storage cost is concerned.

    Attributes:
        filter_columns: columns evaluated for every row.
        project_columns: columns materialised for qualifying rows.
        selectivity: fraction of rows qualifying, in [0, 1].
    """

    filter_columns: frozenset[str]
    project_columns: frozenset[str]
    selectivity: float = 0.1

    @classmethod
    def make(
        cls,
        filters: Iterable[str],
        projects: Iterable[str],
        selectivity: float = 0.1,
    ) -> "QueryProfile":
        """Convenience constructor from any iterables."""
        return cls(
            filter_columns=frozenset(filters),
            project_columns=frozenset(projects),
            selectivity=float(selectivity),
        )

    @property
    def all_columns(self) -> frozenset[str]:
        """Every column the query touches."""
        return self.filter_columns | self.project_columns


class Layout(abc.ABC):
    """A physical layout of a table with ``columns``."""

    def __init__(self, columns: Sequence[str]) -> None:
        self.columns = list(columns)

    @abc.abstractmethod
    def scan_cost(self, profile: QueryProfile, num_rows: int) -> float:
        """Cells touched to execute one query under this layout."""

    @abc.abstractmethod
    def describe(self) -> str:
        """Human-readable layout description."""

    def reorganisation_cost(self, num_rows: int) -> float:
        """Cells touched to rewrite the table into this layout."""
        return float(num_rows * len(self.columns))

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.describe()})"


class RowLayout(Layout):
    """All columns stored together, tuple at a time (NSM)."""

    def scan_cost(self, profile: QueryProfile, num_rows: int) -> float:
        width = len(self.columns)
        # the filter phase drags in whole tuples; projection is then free
        # because qualifying tuples were already read
        return float(num_rows * width)

    def describe(self) -> str:
        return "row(" + ", ".join(self.columns) + ")"


class ColumnLayout(Layout):
    """Every column stored separately (DSM)."""

    def scan_cost(self, profile: QueryProfile, num_rows: int) -> float:
        filter_cost = num_rows * len(profile.filter_columns & set(self.columns))
        project_only = (profile.project_columns - profile.filter_columns) & set(
            self.columns
        )
        reconstruction = (
            profile.selectivity
            * num_rows
            * len(project_only)
            * RECONSTRUCTION_PENALTY
        )
        return float(filter_cost + reconstruction)

    def describe(self) -> str:
        return "column(" + ", ".join(self.columns) + ")"


class ColumnGroupLayout(Layout):
    """Columns partitioned into groups stored together (PAX-like hybrids).

    Args:
        groups: a partition of the table's columns.
    """

    def __init__(self, groups: Sequence[Sequence[str]]) -> None:
        flattened = [column for group in groups for column in group]
        if len(set(flattened)) != len(flattened):
            raise ValueError("column groups must be disjoint")
        super().__init__(flattened)
        self.groups = [list(group) for group in groups if group]

    def scan_cost(self, profile: QueryProfile, num_rows: int) -> float:
        cost = 0.0
        groups_touched_for_projection = 0
        for group in self.groups:
            group_set = set(group)
            if group_set & profile.filter_columns:
                # the whole group is read for the filter scan
                cost += num_rows * len(group)
            elif group_set & profile.project_columns:
                groups_touched_for_projection += 1
                cost += (
                    profile.selectivity
                    * num_rows
                    * len(group)
                    * RECONSTRUCTION_PENALTY
                )
        return float(cost)

    def describe(self) -> str:
        rendered = "; ".join("{" + ", ".join(g) + "}" for g in self.groups)
        return f"groups({rendered})"
