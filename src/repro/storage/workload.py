"""Workload monitoring for adaptive storage.

Tracks a sliding window of :class:`~repro.storage.layouts.QueryProfile`
records and derives the column co-access affinity matrix H2O's layout
search is driven by.
"""

from __future__ import annotations

from collections import deque
from itertools import combinations
from typing import Deque, Sequence

from repro.storage.layouts import QueryProfile


class WorkloadMonitor:
    """Sliding-window record of recent query profiles.

    Args:
        columns: the table's columns.
        window: how many recent queries to remember.
    """

    def __init__(self, columns: Sequence[str], window: int = 50) -> None:
        self.columns = list(columns)
        self.window = window
        self._profiles: Deque[QueryProfile] = deque(maxlen=window)

    def record(self, profile: QueryProfile) -> None:
        """Add one query to the window."""
        self._profiles.append(profile)

    def __len__(self) -> int:
        return len(self._profiles)

    def profiles(self) -> list[QueryProfile]:
        """The profiles currently in the window, oldest first."""
        return list(self._profiles)

    def affinity(self) -> dict[tuple[str, str], int]:
        """Co-access counts for every unordered column pair in the window."""
        counts: dict[tuple[str, str], int] = {}
        for profile in self._profiles:
            touched = sorted(profile.all_columns)
            for a, b in combinations(touched, 2):
                counts[(a, b)] = counts.get((a, b), 0) + 1
        return counts

    def access_counts(self) -> dict[str, int]:
        """How often each column was touched in the window."""
        counts = {column: 0 for column in self.columns}
        for profile in self._profiles:
            for column in profile.all_columns:
                if column in counts:
                    counts[column] += 1
        return counts

    def suggest_groups(self, min_affinity_fraction: float = 0.5) -> list[list[str]]:
        """Partition columns into groups by affinity.

        Two columns share a group when they were co-accessed in at least
        ``min_affinity_fraction`` of the windowed queries (transitively
        closed via union-find).  Untouched columns each form a singleton.
        """
        threshold = max(1, int(min_affinity_fraction * max(1, len(self._profiles))))
        parent = {column: column for column in self.columns}

        def find(column: str) -> str:
            while parent[column] != column:
                parent[column] = parent[parent[column]]
                column = parent[column]
            return column

        for (a, b), count in self.affinity().items():
            if count >= threshold and a in parent and b in parent:
                parent[find(a)] = find(b)

        groups: dict[str, list[str]] = {}
        for column in self.columns:
            groups.setdefault(find(column), []).append(column)
        return list(groups.values())
