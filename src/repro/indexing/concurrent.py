"""Concurrency control for adaptive indexing (Graefe et al. [22]).

Cracking turns *reads into structural writes*: every query physically
reorganises pieces, so naive concurrent execution over one cracker index
serialises completely.  Graefe et al. showed that piece-level latching
restores concurrency — and, crucially, that contention *evaporates as the
index adapts*: early queries fight over the one huge piece, later queries
touch disjoint small pieces and proceed in parallel.

This module reproduces that dynamic with a deterministic round-based
simulation (Python threads cannot show real parallel speedup, and the
claim is about latch conflicts, not cycles): each round, every client
submits its next range query; queries whose *crack piece sets* overlap
conflict and all but one are retried next round.  The S23 benchmark plots
conflict rate and effective parallelism over time.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass

import numpy as np

from repro.indexing.cracking import CrackerIndex
from repro.workloads.queries import RangeQuery


@dataclass
class RoundStats:
    """Outcome of one simulation round."""

    round_index: int
    submitted: int
    executed: int
    conflicts: int
    pieces: int

    @property
    def parallelism(self) -> float:
        """Executed queries per round (the throughput proxy)."""
        return float(self.executed)


class ConcurrentCrackingSimulator:
    """Simulates ``num_clients`` clients cracking one shared index.

    Args:
        values: the shared column.
        num_clients: concurrent query streams.
        seed: RNG seed (used only for tie-breaking order).
    """

    def __init__(self, values: np.ndarray, num_clients: int = 8, seed: int = 0) -> None:
        if num_clients < 1:
            raise ValueError("need at least one client")
        self.index = CrackerIndex(np.asarray(values).copy())
        self.num_clients = num_clients
        self._rng = np.random.default_rng(seed)
        self.rounds: list[RoundStats] = []

    # -- piece inspection -------------------------------------------------------------

    def _piece_of(self, value: float, kind: int) -> int:
        """Id (ordinal) of the piece the crack for (value, kind) would hit.

        Existing cracks make the operation latch-free on that bound: we
        return -1 for "no piece touched".
        """
        cracks = self.index._cracks
        key = (value, kind)
        idx = bisect_left(cracks, key, key=lambda c: (c[0], c[1]))
        if idx < len(cracks) and cracks[idx][0] == value and cracks[idx][1] == kind:
            return -1  # boundary already exists: read-only lookup
        return idx  # the piece between cracks idx-1 and idx

    def touched_pieces(self, query: RangeQuery) -> set[int]:
        """Piece ids a query would have to write-latch."""
        pieces = set()
        low_piece = self._piece_of(query.low, 0)
        high_piece = self._piece_of(query.high, 0)
        if low_piece >= 0:
            pieces.add(low_piece)
        if high_piece >= 0:
            pieces.add(high_piece)
        return pieces

    # -- simulation -------------------------------------------------------------------

    def run(self, client_queries: list[list[RangeQuery]]) -> list[RoundStats]:
        """Run until every client's queue drains; returns per-round stats.

        Args:
            client_queries: one queue per client (first = next).
        """
        if len(client_queries) != self.num_clients:
            raise ValueError("need exactly one queue per client")
        queues = [list(queue) for queue in client_queries]
        round_index = 0
        while any(queues):
            round_index += 1
            submitted = [
                (client, queue[0]) for client, queue in enumerate(queues) if queue
            ]
            latched: set[int] = set()
            executed = 0
            conflicts = 0
            order = list(range(len(submitted)))
            self._rng.shuffle(order)
            for position in order:
                client, query = submitted[position]
                pieces = self.touched_pieces(query)
                if pieces & latched:
                    conflicts += 1
                    continue  # retried next round
                latched |= pieces
                self.index.lookup_range(query.low, query.high, True, False)
                queues[client].pop(0)
                executed += 1
            self.rounds.append(
                RoundStats(
                    round_index=round_index,
                    submitted=len(submitted),
                    executed=executed,
                    conflicts=conflicts,
                    pieces=self.index.num_pieces,
                )
            )
        return self.rounds

    # -- summaries ---------------------------------------------------------------------

    def conflict_rate(self, first: int | None = None, last: int | None = None) -> float:
        """Conflicts per submission over a round range."""
        rounds = self.rounds
        if first is not None or last is not None:
            rounds = rounds[first:last]
        submitted = sum(r.submitted for r in rounds)
        if submitted == 0:
            return 0.0
        return sum(r.conflicts for r in rounds) / submitted

    def serial_rounds_equivalent(self) -> int:
        """Rounds a fully serialised execution would have needed."""
        return sum(r.executed for r in self.rounds)
