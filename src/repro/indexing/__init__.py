"""Adaptive indexing (paper §2.3).

Implements the database-cracking family the tutorial surveys:

- :class:`CrackerIndex` — incremental, query-driven index refinement
  (database cracking [29]), with the stochastic variants of [23] that stay
  robust under sequential workloads.
- :class:`HybridCrackSortIndex` — the crack/sort hybrids of [33].
- :class:`UpdatableCrackerIndex` — cracking under updates [30].
- :class:`SidewaysCracker` — sideways cracking for multi-column tuple
  reconstruction [31].
- :class:`SortedIndex` / :class:`ScanIndex` — the classical comparators
  (full index built up front; no index at all).
- :class:`ISAXIndex` — the data-series index of the time-series cluster [68].

All indexes implement the engine's :class:`~repro.engine.catalog.RangeIndex`
protocol and count the *logical work* (elements touched) they perform, which
is what the convergence plots in EXPERIMENTS.md report.
"""

from repro.indexing.cracking import CrackerIndex, CrackingVariant
from repro.indexing.baselines import ScanIndex, SortedIndex
from repro.indexing.hybrid import HybridCrackSortIndex
from repro.indexing.updates import UpdatableCrackerIndex
from repro.indexing.sideways import SidewaysCracker
from repro.indexing.sax import paa_transform, sax_symbols, sax_lower_bound_distance
from repro.indexing.isax import ISAXIndex
from repro.indexing.concurrent import ConcurrentCrackingSimulator
from repro.indexing.partitioned import PartitionedAdaptiveIndex

__all__ = [
    "ConcurrentCrackingSimulator",
    "CrackerIndex",
    "CrackingVariant",
    "HybridCrackSortIndex",
    "ISAXIndex",
    "PartitionedAdaptiveIndex",
    "ScanIndex",
    "SidewaysCracker",
    "SortedIndex",
    "UpdatableCrackerIndex",
    "paa_transform",
    "sax_lower_bound_distance",
    "sax_symbols",
]
