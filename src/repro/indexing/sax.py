"""SAX primitives: PAA, symbolisation, and the MINDIST lower bound.

These are the building blocks of the iSAX family of data-series indexes
that the paper's time-series cluster ([68]) builds on.

A series is first reduced by Piecewise Aggregate Approximation (PAA) to
``word_length`` segment means, then each mean is discretised against the
breakpoints of a standard normal distribution into one of ``cardinality``
symbols.  The MINDIST function between a query's PAA and a SAX word lower
bounds the true Euclidean distance, which is what makes pruned search
exact.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np
from scipy.stats import norm


def paa_transform(series: np.ndarray, word_length: int) -> np.ndarray:
    """Piecewise Aggregate Approximation: per-segment means.

    Handles series whose length is not a multiple of ``word_length`` by
    distributing elements as evenly as possible.

    Args:
        series: 1-D array, or 2-D array of shape (num_series, length).
        word_length: number of segments.
    """
    arr = np.atleast_2d(np.asarray(series, dtype=np.float64))
    n = arr.shape[1]
    if word_length <= 0 or word_length > n:
        raise ValueError(f"word_length must be in [1, {n}], got {word_length}")
    bounds = np.linspace(0, n, word_length + 1)
    segments = [
        arr[:, int(np.floor(bounds[i])): int(np.ceil(bounds[i + 1]))].mean(axis=1)
        for i in range(word_length)
    ]
    result = np.stack(segments, axis=1)
    return result[0] if np.asarray(series).ndim == 1 else result


@lru_cache(maxsize=64)
def breakpoints(cardinality: int) -> np.ndarray:
    """The ``cardinality - 1`` standard-normal quantile breakpoints."""
    if cardinality < 2:
        raise ValueError("cardinality must be at least 2")
    quantiles = np.arange(1, cardinality) / cardinality
    return norm.ppf(quantiles)


def sax_symbols(paa: np.ndarray, cardinality: int) -> np.ndarray:
    """Discretise PAA values into integer symbols in ``[0, cardinality)``.

    Symbol 0 is the lowest band.  Works on 1-D or 2-D input.
    """
    return np.searchsorted(breakpoints(cardinality), np.asarray(paa)).astype(np.int64)


def symbol_bounds(symbol: int, cardinality: int) -> tuple[float, float]:
    """The value band ``[low, high)`` a symbol covers (±inf at the ends)."""
    points = breakpoints(cardinality)
    low = -np.inf if symbol == 0 else float(points[symbol - 1])
    high = np.inf if symbol == cardinality - 1 else float(points[symbol])
    return low, high


def sax_lower_bound_distance(
    query_paa: np.ndarray,
    word: np.ndarray,
    cardinalities: np.ndarray | int,
    series_length: int,
) -> float:
    """MINDIST: a lower bound on the Euclidean distance between the query
    and any series whose SAX word is ``word``.

    Supports per-symbol cardinalities (as iSAX words have).
    """
    query_paa = np.asarray(query_paa, dtype=np.float64)
    word = np.asarray(word, dtype=np.int64)
    if np.isscalar(cardinalities) or np.asarray(cardinalities).ndim == 0:
        cards = np.full(len(word), int(cardinalities))
    else:
        cards = np.asarray(cardinalities, dtype=np.int64)
    total = 0.0
    for value, symbol, cardinality in zip(query_paa, word, cards):
        if cardinality < 2:
            continue  # a 1-symbol segment covers the whole real line
        low, high = symbol_bounds(int(symbol), int(cardinality))
        if value < low:
            gap = low - value
        elif value > high:
            gap = value - high
        else:
            gap = 0.0
        total += gap * gap
    scale = series_length / len(word)
    return float(np.sqrt(scale * total))
