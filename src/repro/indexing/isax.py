"""iSAX: an indexable SAX tree for data-series similarity search.

Series are summarised by iSAX words — SAX words whose *per-symbol*
cardinality can differ.  A node's word uses ``bits[i]`` bits for segment
``i``; splitting a full leaf promotes one segment by a bit, halving its
value band and redistributing the leaf's series between two children.

Search:

- :meth:`ISAXIndex.approximate_search` descends to the leaf the query's
  own word would land in and scans only that leaf — the fast, inexact mode
  interactive exploration uses first.
- :meth:`ISAXIndex.exact_search` then runs best-first search over the tree
  using the MINDIST lower bound to prune — exact, and usually touches a
  small fraction of the data (reproduced by the S15 benchmark).

The index also supports *adaptive* building in the spirit of [68]: pass
``adaptive=True`` and raw series are parked unconverted in leaves until a
query actually visits them.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.indexing.sax import paa_transform, sax_lower_bound_distance, sax_symbols


@dataclass
class _Node:
    """One tree node.  ``bits[i]`` is the number of bits of segment i's
    symbol used by ``word[i]``."""

    word: np.ndarray
    bits: np.ndarray
    children: dict[tuple[int, ...], "_Node"] = field(default_factory=dict)
    series_ids: list[int] = field(default_factory=list)
    split_segment: int | None = None

    @property
    def is_leaf(self) -> bool:
        return self.split_segment is None


class ISAXIndex:
    """An iSAX tree over a fixed collection of z-normalised series.

    Args:
        series: array of shape (num_series, length).
        word_length: number of PAA segments.
        max_bits: maximum bits per segment (cardinality ``2**max_bits``).
        leaf_capacity: maximum series per leaf before splitting.
        adaptive: park raw series in leaves and split lazily on first
            query touch (ADS-style) instead of eagerly at build time.
    """

    def __init__(
        self,
        series: np.ndarray,
        word_length: int = 8,
        max_bits: int = 8,
        leaf_capacity: int = 64,
        adaptive: bool = False,
    ) -> None:
        self._series = np.atleast_2d(np.asarray(series, dtype=np.float64))
        self.word_length = word_length
        self.max_bits = max_bits
        self.leaf_capacity = leaf_capacity
        self.adaptive = adaptive
        self.series_length = self._series.shape[1]
        self._paa = paa_transform(self._series, word_length)
        self._max_symbols = sax_symbols(self._paa, 2**max_bits)
        self._root = _Node(
            word=np.zeros(word_length, dtype=np.int64),
            bits=np.zeros(word_length, dtype=np.int64),
        )
        self.distance_computations = 0
        self.nodes_visited = 0
        for series_id in range(len(self._series)):
            self._insert(series_id, defer_splits=adaptive)

    # -- construction -----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._series)

    def _symbol_at(self, series_id: int, segment: int, bits: int) -> int:
        """Symbol of one segment at the given (reduced) cardinality."""
        if bits <= 0:
            return 0
        return int(self._max_symbols[series_id, segment]) >> (self.max_bits - bits)

    def _child_key(self, node: _Node, series_id: int) -> tuple[int, ...]:
        segment = node.split_segment
        assert segment is not None
        bits = int(node.bits[segment]) + 1
        return (segment, self._symbol_at(series_id, segment, bits))

    def _insert(self, series_id: int, defer_splits: bool) -> None:
        node = self._root
        while not node.is_leaf:
            key = self._child_key(node, series_id)
            node = self._ensure_child(node, key)
        node.series_ids.append(series_id)
        if not defer_splits:
            self._maybe_split(node)

    def _ensure_child(self, node: _Node, key: tuple[int, ...]) -> _Node:
        if key not in node.children:
            segment, symbol = key
            word = node.word.copy()
            bits = node.bits.copy()
            word[segment] = symbol
            bits[segment] = bits[segment] + 1
            node.children[key] = _Node(word=word, bits=bits)
        return node.children[key]

    def _maybe_split(self, node: _Node) -> None:
        while len(node.series_ids) > self.leaf_capacity:
            segment = self._pick_split_segment(node)
            if segment is None:
                return  # all segments at max cardinality; oversized leaf stays
            node.split_segment = segment
            ids = node.series_ids
            node.series_ids = []
            for series_id in ids:
                child = self._ensure_child(node, self._child_key(node, series_id))
                child.series_ids.append(series_id)
            # recurse into any child that is itself oversized
            for child in node.children.values():
                self._maybe_split(child)
            return

    def _pick_split_segment(self, node: _Node) -> int | None:
        """Split on the promotable segment whose next bit best balances
        the leaf's series."""
        best_segment = None
        best_balance = -1.0
        for segment in range(self.word_length):
            if node.bits[segment] >= self.max_bits:
                continue
            bits = int(node.bits[segment]) + 1
            symbols = [self._symbol_at(sid, segment, bits) for sid in node.series_ids]
            unique = set(symbols)
            if len(unique) < 2:
                continue
            counts = np.bincount(symbols)
            counts = counts[counts > 0]
            balance = 1.0 - float(counts.max()) / float(counts.sum())
            if balance > best_balance:
                best_balance = balance
                best_segment = segment
        if best_segment is not None:
            return best_segment
        # no segment separates the series at the next bit; promote the
        # first promotable one anyway to make (eventual) progress
        for segment in range(self.word_length):
            if node.bits[segment] < self.max_bits:
                bits = int(node.bits[segment]) + 1
                symbols = {self._symbol_at(sid, segment, bits) for sid in node.series_ids}
                if len(symbols) >= 2:
                    return segment
        return None

    # -- search ------------------------------------------------------------------------

    def _euclidean(self, series_id: int, query: np.ndarray) -> float:
        self.distance_computations += 1
        return float(np.linalg.norm(self._series[series_id] - query))

    def _leaf_for(self, query: np.ndarray) -> _Node:
        """Descend to the leaf the query's own word selects (splitting
        deferred leaves on the way when in adaptive mode)."""
        paa = paa_transform(query, self.word_length)
        max_symbols = sax_symbols(paa, 2**self.max_bits)
        node = self._root
        while True:
            self.nodes_visited += 1
            if node.is_leaf and self.adaptive and len(node.series_ids) > self.leaf_capacity:
                self._maybe_split(node)
            if node.is_leaf:
                return node
            segment = node.split_segment
            assert segment is not None
            bits = int(node.bits[segment]) + 1
            symbol = int(max_symbols[segment]) >> (self.max_bits - bits)
            key = (segment, symbol)
            if key not in node.children:
                # query falls in an empty band: scan the nearest child
                if not node.children:
                    return node
                key = min(
                    node.children,
                    key=lambda k: abs(k[1] - symbol) if k[0] == segment else 1_000_000,
                )
            node = node.children[key]

    def approximate_search(self, query: np.ndarray, k: int = 1) -> list[tuple[int, float]]:
        """k nearest neighbours *within the query's own leaf* (inexact).

        Returns ``(series_id, distance)`` pairs, nearest first.
        """
        query = np.asarray(query, dtype=np.float64)
        leaf = self._leaf_for(query)
        candidates = [(self._euclidean(sid, query), sid) for sid in leaf.series_ids]
        candidates.sort()
        return [(sid, dist) for dist, sid in candidates[:k]]

    def exact_search(self, query: np.ndarray, k: int = 1) -> list[tuple[int, float]]:
        """Exact k-NN via best-first traversal with MINDIST pruning."""
        query = np.asarray(query, dtype=np.float64)
        paa = paa_transform(query, self.word_length)
        best: list[tuple[float, int]] = []  # max-heap via negated distances
        considered: set[int] = set()

        def consider(series_id: int) -> None:
            if series_id in considered:
                return
            considered.add(series_id)
            dist = self._euclidean(series_id, query)
            if len(best) < k:
                heapq.heappush(best, (-dist, series_id))
            elif dist < -best[0][0]:
                heapq.heapreplace(best, (-dist, series_id))

        # seed the pruning bound with the approximate answer
        for series_id, _ in self.approximate_search(query, k=k):
            consider(series_id)

        counter = 0
        frontier: list[tuple[float, int, _Node]] = [(0.0, counter, self._root)]
        while frontier:
            bound, _, node = heapq.heappop(frontier)
            if len(best) == k and bound >= -best[0][0]:
                break
            self.nodes_visited += 1
            if node.is_leaf:
                for series_id in node.series_ids:
                    consider(series_id)
                continue
            for child in node.children.values():
                child_bound = sax_lower_bound_distance(
                    paa, child.word, 2**child.bits, self.series_length
                )
                if len(best) < k or child_bound < -best[0][0]:
                    counter += 1
                    heapq.heappush(frontier, (child_bound, counter, child))
        return sorted([(sid, -neg) for neg, sid in best], key=lambda x: x[1])

    # -- introspection -------------------------------------------------------------------

    def leaves(self) -> Iterator[_Node]:
        """Iterate all leaf nodes."""
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                yield node
            else:
                stack.extend(node.children.values())

    @property
    def num_leaves(self) -> int:
        """Number of leaves currently in the tree."""
        return sum(1 for _ in self.leaves())

    def reset_counters(self) -> None:
        """Zero the search-effort counters."""
        self.distance_computations = 0
        self.nodes_visited = 0
