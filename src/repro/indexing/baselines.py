"""Comparator indexes for the adaptive-indexing experiments.

- :class:`SortedIndex` — the "full index" baseline: pay a complete sort on
  the first query (or at build time), then answer every range with two
  binary searches.
- :class:`ScanIndex` — the "no index" baseline: every query scans the
  whole column.

Both count logical work the same way the cracker index does, so the three
series are directly comparable in the S1 convergence benchmark.
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np


class SortedIndex:
    """A fully sorted secondary index built eagerly or on first use.

    Args:
        values: column payload.
        lazy: when True, the sort cost is charged to the first lookup
            (which is how the cracking papers plot the comparison); when
            False it is charged at construction.
    """

    def __init__(self, values: np.ndarray, lazy: bool = True) -> None:
        self._raw = np.asarray(values)
        self._sorted_values: np.ndarray | None = None
        self._positions: np.ndarray | None = None
        self.work_touched = 0
        if not lazy:
            self._build()

    def _build(self) -> None:
        if self._sorted_values is not None:
            return
        order = np.argsort(self._raw, kind="stable")
        self._sorted_values = self._raw[order]
        self._positions = order.astype(np.int64)
        n = len(self._raw)
        # charge n log2 n comparisons for the sort
        self.work_touched += int(n * max(1.0, math.log2(max(2, n))))

    @property
    def is_built(self) -> bool:
        """True once the sort has happened."""
        return self._sorted_values is not None

    def reset_counters(self) -> None:
        """Zero the work counter."""
        self.work_touched = 0

    def lookup_range(
        self,
        low: Any,
        high: Any,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> np.ndarray:
        """Row positions of values in the given (possibly open) range."""
        self._build()
        assert self._sorted_values is not None and self._positions is not None
        n = len(self._sorted_values)
        start = 0
        end = n
        if low is not None:
            side = "left" if low_inclusive else "right"
            start = int(np.searchsorted(self._sorted_values, low, side=side))
        if high is not None:
            side = "right" if high_inclusive else "left"
            end = int(np.searchsorted(self._sorted_values, high, side=side))
        if end < start:
            end = start
        self.work_touched += int(2 * max(1.0, math.log2(max(2, n)))) + (end - start)
        return self._positions[start:end].copy()


class ScanIndex:
    """The no-index baseline: a full scan per lookup."""

    def __init__(self, values: np.ndarray) -> None:
        self._values = np.asarray(values)
        self.work_touched = 0

    def reset_counters(self) -> None:
        """Zero the work counter."""
        self.work_touched = 0

    def lookup_range(
        self,
        low: Any,
        high: Any,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> np.ndarray:
        """Row positions of values in the given (possibly open) range."""
        mask = np.ones(len(self._values), dtype=bool)
        if low is not None:
            mask &= self._values >= low if low_inclusive else self._values > low
        if high is not None:
            mask &= self._values <= high if high_inclusive else self._values < high
        self.work_touched += len(self._values)
        return np.flatnonzero(mask).astype(np.int64)
