"""Hybrid adaptive indexing: crack-crack / crack-sort ([33]).

The hybrids of Idreos et al. split the column into initial *partitions*
(modelling the chunks in which data arrives or fits in memory).  Per query:

1. In each partition, the qualifying key range is located *adaptively* —
   either by cracking the partition (``crack`` flavour) or by fully sorting
   it on first touch (``sort`` flavour).
2. Qualifying keys are *merged out* of the partitions into a final,
   incrementally growing sorted index; later queries that hit already
   merged ranges are answered from the final index alone.

The practical upshot, reproduced by the S3 benchmark: hybrids pay modest
per-query costs early (like cracking) yet converge to full-index speed
much faster (like sort), because merged ranges never get touched again.
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np

from repro.indexing.cracking import CrackerIndex, CrackingVariant


class _SortedRun:
    """The final index: a growing sorted run of (value, position) pairs."""

    def __init__(self) -> None:
        self.values = np.empty(0, dtype=np.float64)
        self.positions = np.empty(0, dtype=np.int64)

    def merge(self, values: np.ndarray, positions: np.ndarray) -> int:
        """Merge new pairs in; returns elements touched."""
        if len(values) == 0:
            return 0
        order = np.argsort(values, kind="stable")
        new_values = values[order]
        new_positions = positions[order]
        insert_at = np.searchsorted(self.values, new_values)
        self.values = np.insert(self.values, insert_at, new_values)
        self.positions = np.insert(self.positions, insert_at, new_positions)
        return len(values) + int(math.log2(max(2, len(self.values)))) * len(values)

    def lookup(
        self, low: Any, high: Any, low_inclusive: bool, high_inclusive: bool
    ) -> tuple[np.ndarray, int]:
        """Positions in range plus elements touched."""
        n = len(self.values)
        start, end = 0, n
        if low is not None:
            start = int(np.searchsorted(self.values, low, side="left" if low_inclusive else "right"))
        if high is not None:
            end = int(np.searchsorted(self.values, high, side="right" if high_inclusive else "left"))
        end = max(end, start)
        touched = int(2 * max(1.0, math.log2(max(2, n)))) + (end - start) if n else 0
        return self.positions[start:end].copy(), touched


class HybridCrackSortIndex:
    """Hybrid adaptive index with crack or sort initial-partition handling.

    Args:
        values: column payload.
        num_partitions: how many initial partitions to split into.
        flavour: ``"crack"`` (hybrid crack-crack: partitions are cracked)
            or ``"sort"`` (hybrid sort-sort: a partition is fully sorted the
            first time a query touches it).
    """

    def __init__(
        self,
        values: np.ndarray,
        num_partitions: int = 16,
        flavour: str = "crack",
    ) -> None:
        if flavour not in ("crack", "sort"):
            raise ValueError(f"unknown hybrid flavour {flavour!r}")
        self.flavour = flavour
        values = np.asarray(values)
        n = len(values)
        bounds = np.linspace(0, n, num_partitions + 1, dtype=np.int64)
        self._partitions: list[_Partition] = []
        for i in range(num_partitions):
            lo, hi = int(bounds[i]), int(bounds[i + 1])
            if hi > lo:
                self._partitions.append(_Partition(values[lo:hi], base_offset=lo, flavour=flavour))
        self._final = _SortedRun()
        # ranges already merged into the final index, as a sorted list of
        # disjoint closed intervals over the value domain
        self._merged: list[tuple[float, float]] = []
        self.work_touched = 0

    def reset_counters(self) -> None:
        """Zero the work counter."""
        self.work_touched = 0

    def lookup_range(
        self,
        low: Any,
        high: Any,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> np.ndarray:
        """Row positions in range; merges newly touched ranges into the
        final sorted index as a side effect."""
        lo_key = -math.inf if low is None else float(low)
        hi_key = math.inf if high is None else float(high)
        if not self._covered(lo_key, hi_key):
            moved_values: list[np.ndarray] = []
            moved_positions: list[np.ndarray] = []
            for partition in self._partitions:
                vals, poss, touched = partition.extract(
                    low, high, low_inclusive, high_inclusive
                )
                self.work_touched += touched
                if len(vals):
                    moved_values.append(vals)
                    moved_positions.append(poss)
            if moved_values:
                self.work_touched += self._final.merge(
                    np.concatenate(moved_values), np.concatenate(moved_positions)
                )
            self._remember(lo_key, hi_key)
        positions, touched = self._final.lookup(low, high, low_inclusive, high_inclusive)
        self.work_touched += touched
        return positions

    # -- merged-range bookkeeping ----------------------------------------------------

    def _covered(self, lo: float, hi: float) -> bool:
        return any(mlo <= lo and hi <= mhi for mlo, mhi in self._merged)

    def _remember(self, lo: float, hi: float) -> None:
        intervals = self._merged + [(lo, hi)]
        intervals.sort()
        merged: list[tuple[float, float]] = []
        for interval in intervals:
            if merged and interval[0] <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], interval[1]))
            else:
                merged.append(interval)
        self._merged = merged


class _Partition:
    """One initial partition, organised adaptively."""

    def __init__(self, values: np.ndarray, base_offset: int, flavour: str) -> None:
        self._flavour = flavour
        self._base_offset = base_offset
        self._live = np.ones(len(values), dtype=bool)  # not yet merged out
        if flavour == "crack":
            self._cracker = CrackerIndex(values, variant=CrackingVariant.STANDARD)
            self._values = values
        else:
            self._values = np.asarray(values)
            self._order: np.ndarray | None = None
            self._sorted: np.ndarray | None = None

    def extract(
        self, low: Any, high: Any, low_inclusive: bool, high_inclusive: bool
    ) -> tuple[np.ndarray, np.ndarray, int]:
        """Remove and return qualifying (values, base positions); plus work."""
        if self._flavour == "crack":
            before = self._cracker.work_touched
            local = self._cracker.lookup_range(low, high, low_inclusive, high_inclusive)
            touched = self._cracker.work_touched - before
        else:
            touched = 0
            if self._sorted is None:
                self._order = np.argsort(self._values, kind="stable")
                self._sorted = self._values[self._order]
                n = len(self._values)
                touched += int(n * max(1.0, math.log2(max(2, n))))
            start, end = 0, len(self._sorted)
            if low is not None:
                start = int(np.searchsorted(self._sorted, low, side="left" if low_inclusive else "right"))
            if high is not None:
                end = int(np.searchsorted(self._sorted, high, side="right" if high_inclusive else "left"))
            end = max(end, start)
            local = self._order[start:end]
            touched += end - start
        fresh = local[self._live[local]]
        self._live[fresh] = False
        return (
            self._values[fresh].astype(np.float64),
            fresh.astype(np.int64) + self._base_offset,
            touched,
        )
