"""Cracking under updates ([30]).

New values are not pushed into the cracked column eagerly: they wait in a
*pending insertions* buffer (deletions in a *pending deletions* set) and
are merged lazily, only when a query's range actually touches them — the
core idea of "Updating a Cracked Database".  A query therefore pays for
exactly the updates relevant to it, and a cold region of the domain can
accumulate updates indefinitely at zero query cost.

This implementation merges by insertion into the cracked area, shifting
crack offsets after the insertion points; the ripple optimisation of the
original paper (shuffling only piece boundaries) is approximated by
charging work proportional to the merged values plus the shifted tail.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.indexing.cracking import CrackerIndex, CrackingVariant


class UpdatableCrackerIndex:
    """A cracker index that absorbs inserts and deletes adaptively.

    Positions handed out refer to a logical, append-only row id space:
    the initial rows get ids ``0..n-1`` and every insert gets the next id.
    """

    def __init__(
        self,
        values: np.ndarray,
        variant: CrackingVariant | str = CrackingVariant.STANDARD,
        seed: int = 0,
    ) -> None:
        self._cracker = CrackerIndex(values, variant=variant, seed=seed)
        self._next_row_id = len(self._cracker)
        self._pending_values: list[float] = []
        self._pending_ids: list[int] = []
        self._deleted: set[int] = set()
        self.work_touched = 0
        self.merges_performed = 0

    def __len__(self) -> int:
        return self._next_row_id - len(self._deleted)

    @property
    def pending_count(self) -> int:
        """Number of inserts waiting to be merged."""
        return len(self._pending_values)

    def reset_counters(self) -> None:
        """Zero the work counters."""
        self.work_touched = 0
        self.merges_performed = 0
        self._cracker.reset_counters()

    def insert(self, value: Any) -> int:
        """Queue one insert; returns the new row id.  O(1)."""
        row_id = self._next_row_id
        self._next_row_id += 1
        self._pending_values.append(float(value))
        self._pending_ids.append(row_id)
        return row_id

    def delete(self, row_id: int) -> None:
        """Queue a delete by row id.  O(1)."""
        self._deleted.add(row_id)

    def lookup_range(
        self,
        low: Any,
        high: Any,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> np.ndarray:
        """Row ids of live values in range, merging relevant pending inserts."""
        self._merge_relevant(low, high, low_inclusive, high_inclusive)
        before = self._cracker.work_touched
        positions = self._cracker.lookup_range(low, high, low_inclusive, high_inclusive)
        self.work_touched += self._cracker.work_touched - before
        if self._deleted:
            keep = np.asarray([p not in self._deleted for p in positions], dtype=bool)
            positions = positions[keep]
        return positions

    # -- internals --------------------------------------------------------------------

    def _in_range(self, value: float, low: Any, high: Any, low_inc: bool, high_inc: bool) -> bool:
        if low is not None and (value < low or (value == low and not low_inc)):
            return False
        if high is not None and (value > high or (value == high and not high_inc)):
            return False
        return True

    def _merge_relevant(self, low: Any, high: Any, low_inc: bool, high_inc: bool) -> None:
        if not self._pending_values:
            return
        # scanning the pending buffer is part of the query's cost
        self.work_touched += len(self._pending_values)
        hits = [
            i
            for i, v in enumerate(self._pending_values)
            if self._in_range(v, low, high, low_inc, high_inc)
        ]
        if not hits:
            return
        merge_values = np.asarray([self._pending_values[i] for i in hits])
        merge_ids = np.asarray([self._pending_ids[i] for i in hits], dtype=np.int64)
        hit_set = set(hits)
        self._pending_values = [v for i, v in enumerate(self._pending_values) if i not in hit_set]
        self._pending_ids = [p for i, p in enumerate(self._pending_ids) if i not in hit_set]
        self._insert_into_cracker(merge_values, merge_ids)
        self.merges_performed += 1

    def _insert_into_cracker(self, values: np.ndarray, row_ids: np.ndarray) -> None:
        cracker = self._cracker
        order = np.argsort(values, kind="stable")
        values = values[order]
        row_ids = row_ids[order]
        # place each value at the start of the piece it belongs to; since
        # `values` is ascending the target offsets are non-decreasing, which
        # keeps (offset, value) pairs aligned for the shift computation
        insert_offsets = np.asarray(
            [self._target_offset(float(v)) for v in values], dtype=np.int64
        )
        cracker._values = np.insert(cracker._values, insert_offsets, values)
        cracker._positions = np.insert(cracker._positions, insert_offsets, row_ids)
        new_cracks = []
        for crack_value, kind, offset in cracker._cracks:
            # a crack shifts right by one for every insert that lands
            # strictly before it, plus inserts landing exactly at its
            # boundary that satisfy its predicate (values belonging to an
            # empty piece on its left side)
            shift = int(np.searchsorted(insert_offsets, offset, side="left"))
            eq_hi = int(np.searchsorted(insert_offsets, offset, side="right"))
            if eq_hi > shift:
                side = "left" if kind == 0 else "right"
                shift += int(
                    np.searchsorted(values[shift:eq_hi], crack_value, side=side)
                )
            new_cracks.append((crack_value, kind, offset + shift))
        cracker._cracks = new_cracks
        # ripple-approximate cost: merged values + log-structured shifting
        self.work_touched += len(values) + len(cracker._cracks)

    def _target_offset(self, value: float) -> int:
        """Offset of the piece a merged value belongs in (no new cracks).

        The value goes to the *start* of its piece: the offset of the last
        crack whose predicate it fails (or 0 when it satisfies them all).
        """
        cracks = self._cracker._cracks
        for j, (crack_value, kind, offset) in enumerate(cracks):
            belongs_left = value < crack_value if kind == 0 else value <= crack_value
            if belongs_left:
                return cracks[j - 1][2] if j > 0 else 0
        return cracks[-1][2] if cracks else 0

    def is_consistent(self) -> bool:
        """Validate the underlying cracker invariants (property tests)."""
        return self._cracker.is_consistent()
