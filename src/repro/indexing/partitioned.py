"""Partitioned adaptive indexing (HAIL / adaptive indexing in Hadoop [53]).

Big-data engines process data in *blocks/partitions*; [53] shows adaptive
indexing drops into that model naturally: each partition keeps cheap
min/max statistics (zone maps) for pruning, and builds its own adaptive
index incrementally as queries touch it.  Cold partitions never pay any
indexing cost; hot partitions converge like a normal cracker column.

:class:`PartitionedAdaptiveIndex` implements that block-local behaviour
and satisfies the engine's ``RangeIndex`` protocol, so it can serve as a
drop-in scan accelerator for partition-resident tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.indexing.cracking import CrackerIndex, CrackingVariant


@dataclass
class PartitionStats:
    """Zone-map entry for one partition."""

    start: int
    end: int
    min_value: float
    max_value: float
    queries_touched: int = 0


class PartitionedAdaptiveIndex:
    """Per-partition cracker indexes behind a zone map.

    Args:
        values: the column payload.
        partition_size: rows per partition (the HDFS-block analogue).
        variant: cracking variant used inside partitions.
        seed: RNG seed for stochastic variants.
    """

    def __init__(
        self,
        values: np.ndarray,
        partition_size: int = 65_536,
        variant: CrackingVariant | str = CrackingVariant.STANDARD,
        seed: int = 0,
    ) -> None:
        if partition_size <= 0:
            raise ValueError("partition_size must be positive")
        values = np.asarray(values)
        self.partition_size = partition_size
        self._stats: list[PartitionStats] = []
        self._crackers: dict[int, CrackerIndex] = {}
        self._values = values
        self._variant = variant
        self._seed = seed
        for start in range(0, len(values), partition_size):
            end = min(start + partition_size, len(values))
            chunk = values[start:end]
            self._stats.append(
                PartitionStats(
                    start=start,
                    end=end,
                    min_value=float(chunk.min()) if len(chunk) else 0.0,
                    max_value=float(chunk.max()) if len(chunk) else 0.0,
                )
            )
        self.partitions_pruned = 0
        self.partitions_scanned = 0
        self.work_touched = 0

    @property
    def num_partitions(self) -> int:
        """Partitions in the zone map."""
        return len(self._stats)

    @property
    def partitions_indexed(self) -> int:
        """Partitions that have built (any) adaptive index so far."""
        return len(self._crackers)

    def reset_counters(self) -> None:
        """Zero the work counters."""
        self.partitions_pruned = 0
        self.partitions_scanned = 0
        self.work_touched = 0
        for cracker in self._crackers.values():
            cracker.reset_counters()

    def _cracker_for(self, partition: int) -> CrackerIndex:
        if partition not in self._crackers:
            stats = self._stats[partition]
            self._crackers[partition] = CrackerIndex(
                self._values[stats.start : stats.end],
                variant=self._variant,
                seed=self._seed + partition,
            )
        return self._crackers[partition]

    def lookup_range(
        self,
        low: Any,
        high: Any,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> np.ndarray:
        """Global row positions in range; prunes partitions via the zone
        map and cracks only the touched partitions."""
        chunks: list[np.ndarray] = []
        for partition, stats in enumerate(self._stats):
            if low is not None and (
                stats.max_value < low or (stats.max_value == low and not low_inclusive)
            ):
                self.partitions_pruned += 1
                continue
            if high is not None and (
                stats.min_value > high
                or (stats.min_value == high and not high_inclusive)
            ):
                self.partitions_pruned += 1
                continue
            self.partitions_scanned += 1
            stats.queries_touched += 1
            cracker = self._cracker_for(partition)
            before = cracker.work_touched
            local = cracker.lookup_range(low, high, low_inclusive, high_inclusive)
            self.work_touched += cracker.work_touched - before
            if len(local):
                chunks.append(local + stats.start)
        if not chunks:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(chunks)

    def hot_partitions(self, k: int = 5) -> list[PartitionStats]:
        """The k most frequently touched partitions."""
        ranked = sorted(self._stats, key=lambda s: -s.queries_touched)
        return ranked[:k]
