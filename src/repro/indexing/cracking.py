"""Database cracking: adaptive, query-driven index refinement.

The cracker index keeps a copy of the column (the *cracker column*)
together with the original row positions.  Each range query partitions
("cracks") the pieces that overlap the query's bounds so that, afterwards,
the qualifying values are physically contiguous.  Early queries therefore
pay a partitioning cost proportional to the pieces they touch; as more
queries arrive the pieces shrink and per-query cost converges towards that
of a fully sorted index — without ever paying the up-front sort.

Variants (Halim et al., "Stochastic Database Cracking" [23]):

- ``STANDARD`` — crack exactly at the query bounds.  Optimal for random
  workloads but degenerates to quadratic behaviour when queries sweep the
  domain sequentially (each query re-partitions one huge unsorted piece).
- ``STOCHASTIC`` — before cracking at a query bound, any overlapping piece
  larger than ``random_crack_threshold`` is first cracked at a uniformly
  random pivot inside the piece (the DDR strategy).  This bounds the size
  of unsorted pieces regardless of the workload pattern.
- ``CENTER`` — like STOCHASTIC but pre-cracks at the piece midpoint value
  (the DDC strategy): deterministic, binary-search-like convergence.

Work accounting: every element read or moved during partitioning and every
element copied out as a result increments ``work_touched``.  The
convergence benchmarks report this logical metric alongside wall-clock
time because it is machine-independent.
"""

from __future__ import annotations

import enum
from bisect import bisect_left, insort
from typing import Any

import numpy as np

from repro.obs.metrics import register_stats_source
from repro.obs.tracing import trace


class CrackingVariant(enum.Enum):
    """Pivot-selection strategy used when cracking a piece."""

    STANDARD = "standard"
    STOCHASTIC = "stochastic"
    CENTER = "center"


class CrackerIndex:
    """An adaptive cracker index over one numeric column.

    Implements the engine's ``RangeIndex`` protocol, so it can be registered
    with a :class:`~repro.engine.catalog.Database` and picked up by the
    planner; every query through it refines the index as a side effect.

    Args:
        values: the column payload (any numeric NumPy array).
        variant: pivot-selection strategy; see :class:`CrackingVariant`.
        random_crack_threshold: pieces larger than this get a stochastic /
            center pre-crack first (ignored for the STANDARD variant).
        seed: RNG seed for the STOCHASTIC variant.
    """

    def __init__(
        self,
        values: np.ndarray,
        variant: CrackingVariant | str = CrackingVariant.STANDARD,
        random_crack_threshold: int = 4096,
        seed: int = 0,
    ) -> None:
        if isinstance(variant, str):
            variant = CrackingVariant(variant)
        self.variant = variant
        self.random_crack_threshold = random_crack_threshold
        self._rng = np.random.default_rng(seed)
        self._values = np.asarray(values).copy()
        self._positions = np.arange(len(self._values), dtype=np.int64)
        # cracks[i] = (value, kind, offset): all elements before `offset`
        # compare (kind == 0 -> "< value", kind == 1 -> "<= value") and all
        # elements at or after `offset` do not.
        self._cracks: list[tuple[Any, int, int]] = []
        self.work_touched = 0
        self.cracks_performed = 0
        register_stats_source("indexing.cracker", self)

    # -- public API -----------------------------------------------------------------

    def metrics(self) -> dict[str, Any]:
        """Convergence state and work counters for the metrics registry."""
        pieces = self.num_pieces
        return {
            "variant": self.variant.value,
            "size": len(self._values),
            "num_pieces": pieces,
            "mean_piece_size": len(self._values) / pieces if pieces else 0.0,
            "cracks_performed": self.cracks_performed,
            "work_touched": self.work_touched,
        }

    def __len__(self) -> int:
        return len(self._values)

    @property
    def num_pieces(self) -> int:
        """Number of physical pieces the column is currently split into."""
        offsets = {0, len(self._values)}
        offsets.update(offset for _, _, offset in self._cracks)
        return max(1, len(offsets) - 1)

    def reset_counters(self) -> None:
        """Zero the work counters (piece structure is kept)."""
        self.work_touched = 0
        self.cracks_performed = 0

    def lookup_range(
        self,
        low: Any,
        high: Any,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> np.ndarray:
        """Row positions of values in the given range, cracking on the way.

        ``low``/``high`` of None mean unbounded on that side.
        """
        with trace("index.crack_lookup", low=low, high=high):
            start = 0
            end = len(self._values)
            if low is not None:
                # boundary such that everything before it is < low (inclusive
                # lookup) or <= low (exclusive lookup)
                start = self._crack(low, kind=0 if low_inclusive else 1)
            if high is not None:
                end = self._crack(high, kind=1 if high_inclusive else 0)
            if end < start:
                end = start
            self.work_touched += end - start
            return self._positions[start:end].copy()

    def values_in_range(
        self,
        low: Any,
        high: Any,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> np.ndarray:
        """Like :meth:`lookup_range` but returns the values themselves."""
        start = 0
        end = len(self._values)
        if low is not None:
            start = self._crack(low, kind=0 if low_inclusive else 1)
        if high is not None:
            end = self._crack(high, kind=1 if high_inclusive else 0)
        if end < start:
            end = start
        self.work_touched += end - start
        return self._values[start:end].copy()

    def is_consistent(self) -> bool:
        """Validate all piece invariants (used by property tests)."""
        previous_offset = 0
        for value, kind, offset in self._cracks:
            if offset < previous_offset:
                return False
            left = self._values[:offset]
            right = self._values[offset:]
            if kind == 0:
                if left.size and left.max() >= value:
                    return False
                if right.size and right.min() < value:
                    return False
            else:
                if left.size and left.max() > value:
                    return False
                if right.size and right.min() <= value:
                    return False
            previous_offset = offset
        return True

    # -- internals ----------------------------------------------------------------------

    def _crack(self, value: Any, kind: int) -> int:
        """Return the boundary offset for (value, kind), cracking if needed."""
        key = (value, kind)
        idx = bisect_left(self._cracks, key, key=lambda c: (c[0], c[1]))
        if idx < len(self._cracks):
            candidate = self._cracks[idx]
            if candidate[0] == value and candidate[1] == kind:
                return candidate[2]
        piece_start = self._cracks[idx - 1][2] if idx > 0 else 0
        piece_end = self._cracks[idx][2] if idx < len(self._cracks) else len(self._values)

        if self.variant is not CrackingVariant.STANDARD:
            piece_start, piece_end = self._pre_crack(value, piece_start, piece_end)

        offset = self._partition(piece_start, piece_end, value, kind)
        insort(self._cracks, (value, kind, offset), key=lambda c: (c[0], c[1]))
        self.cracks_performed += 1
        return offset

    def _pre_crack(self, value: Any, start: int, end: int) -> tuple[int, int]:
        """Stochastic/center pre-cracking of oversized pieces.

        Repeatedly splits the piece containing ``value``'s boundary at a
        data-driven pivot until it is below the threshold, registering each
        split as a regular crack.  Returns the bounds of the final (small)
        sub-piece in which the query-bound crack will land.
        """
        while end - start > self.random_crack_threshold:
            segment = self._values[start:end]
            lo = segment.min()
            if lo == segment.max():
                break  # constant piece: no pivot can split it
            if self.variant is CrackingVariant.STOCHASTIC:
                pivot = segment[int(self._rng.integers(0, len(segment)))]
            else:  # CENTER: median-of-three as a cheap center estimate
                candidates = (segment[0], segment[len(segment) // 2], segment[-1])
                pivot = sorted(candidates)[1]
            # crack "< pivot" normally; a minimal pivot would produce an
            # empty left side, so crack "<= pivot" there instead
            pre_kind = 1 if pivot == lo else 0
            offset = self._partition(start, end, pivot, pre_kind)
            insort(self._cracks, (pivot, pre_kind, offset), key=lambda c: (c[0], c[1]))
            self.cracks_performed += 1
            # descend into the half where the boundary for `value` lies
            boundary_left = value < pivot if pre_kind == 0 else value <= pivot
            if boundary_left:
                end = offset
            else:
                start = offset
        return start, end

    def _partition(self, start: int, end: int, value: Any, kind: int) -> int:
        """Partition ``[start, end)`` so the left side satisfies the crack
        predicate; returns the boundary offset.  Counts the work."""
        if end <= start:
            return start
        segment = self._values[start:end]
        mask = segment < value if kind == 0 else segment <= value
        left_count = int(mask.sum())
        if 0 < left_count < len(segment):
            order = np.argsort(~mask, kind="stable")
            self._values[start:end] = segment[order]
            self._positions[start:end] = self._positions[start:end][order]
        self.work_touched += end - start
        return start + left_count
