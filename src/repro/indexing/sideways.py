"""Sideways cracking: self-organising tuple reconstruction ([31]).

Plain cracking reorganises one column; a ``SELECT B WHERE A ...`` query
must then gather B values through the cracker's position map — random
access that grows with result size.  Sideways cracking instead maintains a
*cracker map* per (head, tail) column pair: the two columns are stored and
cracked **together**, so after cracking, qualifying tail values are read
sequentially with no reconstruction step.  Maps are created and refined
lazily, only for the column pairs queries actually use — the "partial
sideways" behaviour of the paper.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Any, Mapping, Sequence

import numpy as np


class CrackerMap:
    """One (head, tail) column pair cracked together."""

    def __init__(self, head: np.ndarray, tail: np.ndarray) -> None:
        if len(head) != len(tail):
            raise ValueError("head and tail columns must have equal length")
        self._head = np.asarray(head).copy()
        self._tail = np.asarray(tail).copy()
        self._cracks: list[tuple[Any, int, int]] = []
        self.work_touched = 0

    def __len__(self) -> int:
        return len(self._head)

    def lookup(
        self,
        low: Any,
        high: Any,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> np.ndarray:
        """Tail values whose head value falls in the range (cracks lazily)."""
        start = 0
        end = len(self._head)
        if low is not None:
            start = self._crack(low, kind=0 if low_inclusive else 1)
        if high is not None:
            end = self._crack(high, kind=1 if high_inclusive else 0)
        end = max(end, start)
        self.work_touched += end - start
        return self._tail[start:end].copy()

    def _crack(self, value: Any, kind: int) -> int:
        key = (value, kind)
        idx = bisect_left(self._cracks, key, key=lambda c: (c[0], c[1]))
        if idx < len(self._cracks) and self._cracks[idx][:2] == key:
            return self._cracks[idx][2]
        piece_start = self._cracks[idx - 1][2] if idx > 0 else 0
        piece_end = self._cracks[idx][2] if idx < len(self._cracks) else len(self._head)
        segment = self._head[piece_start:piece_end]
        mask = segment < value if kind == 0 else segment <= value
        left_count = int(mask.sum())
        if 0 < left_count < len(segment):
            order = np.argsort(~mask, kind="stable")
            self._head[piece_start:piece_end] = segment[order]
            self._tail[piece_start:piece_end] = self._tail[piece_start:piece_end][order]
        # both arrays are rewritten: double the single-column cracking cost
        self.work_touched += 2 * (piece_end - piece_start)
        insort(self._cracks, (value, kind, piece_start + left_count), key=lambda c: (c[0], c[1]))
        return piece_start + left_count

    def is_consistent(self) -> bool:
        """Validate piece invariants on the head column (property tests)."""
        previous = 0
        for value, kind, offset in self._cracks:
            if offset < previous:
                return False
            left, right = self._head[:offset], self._head[offset:]
            if kind == 0:
                if left.size and left.max() >= value or right.size and right.min() < value:
                    return False
            else:
                if left.size and left.max() > value or right.size and right.min() <= value:
                    return False
            previous = offset
        return True


class SidewaysCracker:
    """Lazy collection of cracker maps sharing one head (selection) column.

    Args:
        head: the selection column's payload.
        tails: all projectable columns, by name; maps are built lazily the
            first time a query projects a given column.
    """

    def __init__(self, head: np.ndarray, tails: Mapping[str, np.ndarray]) -> None:
        self._head = np.asarray(head)
        self._tail_sources = dict(tails)
        self._maps: dict[str, CrackerMap] = {}
        self.maps_created = 0

    @property
    def work_touched(self) -> int:
        """Total elements touched across all maps."""
        return sum(m.work_touched for m in self._maps.values())

    def map_for(self, tail: str) -> CrackerMap:
        """The cracker map for one tail column, creating it on first use."""
        if tail not in self._maps:
            if tail not in self._tail_sources:
                raise KeyError(f"unknown tail column {tail!r}")
            self._maps[tail] = CrackerMap(self._head, self._tail_sources[tail])
            self.maps_created += 1
        return self._maps[tail]

    def select_project(
        self,
        low: Any,
        high: Any,
        tails: Sequence[str],
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> dict[str, np.ndarray]:
        """``SELECT tails WHERE low <=? head <=? high`` via cracker maps."""
        return {
            tail: self.map_for(tail).lookup(low, high, low_inclusive, high_inclusive)
            for tail in tails
        }
