"""Rapid sampling for visualizations with ordering guarantees ([12]).

For a bar chart of per-group means, viewers read the *order* of the bars,
not their exact heights.  IFOCUS-style sampling therefore draws rows per
group only until every pair of adjacent bars is separated with high
confidence — groups whose means are far apart settle after a handful of
samples, and only genuinely close pairs need deep sampling.

The implementation runs rounds of per-group sampling, maintains a
Hoeffding-style confidence interval per group mean, and stops sampling a
group once its interval is disjoint from every other *active* group's
interval.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np


@dataclass
class OrderingResult:
    """Outcome of an ordering-guaranteed sampling run."""

    order: list[Any]  # group keys, smallest mean first
    estimates: dict[Any, float]
    samples_per_group: dict[Any, int]
    correct_probability: float

    @property
    def total_samples(self) -> int:
        """Total rows drawn across all groups."""
        return sum(self.samples_per_group.values())


class OrderedSampler:
    """Samples grouped values until the group-mean ordering is settled.

    Args:
        groups: per-row group keys.
        values: per-row measure values.
        confidence: target probability that the returned order is correct.
        batch: rows drawn per group per round.
        seed: RNG seed.
    """

    def __init__(
        self,
        groups: Sequence[Any],
        values: np.ndarray,
        confidence: float = 0.95,
        batch: int = 10,
        seed: int = 0,
    ) -> None:
        self._values_by_group: dict[Any, np.ndarray] = {}
        groups_arr = np.asarray(groups, dtype=object)
        values = np.asarray(values, dtype=np.float64)
        for key in sorted(set(groups_arr.tolist()), key=str):
            self._values_by_group[key] = values[groups_arr == key]
        self.confidence = confidence
        self.batch = batch
        self._rng = np.random.default_rng(seed)
        spans = [
            float(v.max() - v.min()) if len(v) else 1.0
            for v in self._values_by_group.values()
        ]
        self._range = max(max(spans), 1e-9)

    def run(self, max_rounds: int = 200) -> OrderingResult:
        """Sample until the ordering is settled (or groups are exhausted)."""
        keys = list(self._values_by_group)
        drawn: dict[Any, list[float]] = {k: [] for k in keys}
        permutations = {
            k: self._rng.permutation(len(self._values_by_group[k])) for k in keys
        }
        cursors = {k: 0 for k in keys}
        active = set(keys)
        delta = (1.0 - self.confidence) / max(1, len(keys))

        def interval(key: Any) -> tuple[float, float]:
            samples = drawn[key]
            n = len(samples)
            if n == 0:
                return (-math.inf, math.inf)
            if cursors[key] >= len(self._values_by_group[key]):
                mean = float(np.mean(samples))
                return (mean, mean)  # exhausted: exact
            epsilon = self._range * math.sqrt(math.log(2.0 / delta) / (2.0 * n))
            mean = float(np.mean(samples))
            return (mean - epsilon, mean + epsilon)

        for _ in range(max_rounds):
            if not active:
                break
            for key in list(active):
                values = self._values_by_group[key]
                start = cursors[key]
                end = min(start + self.batch, len(values))
                if start < end:
                    drawn[key].extend(values[permutations[key][start:end]].tolist())
                    cursors[key] = end
                if end >= len(values):
                    pass  # exhausted; interval collapses to a point
            # retire groups whose interval is disjoint from all others
            intervals = {k: interval(k) for k in keys}
            for key in list(active):
                lo, hi = intervals[key]
                separated = all(
                    other == key or hi < intervals[other][0] or lo > intervals[other][1]
                    for other in keys
                )
                exhausted = cursors[key] >= len(self._values_by_group[key])
                if separated or exhausted:
                    active.discard(key)

        estimates = {
            k: float(np.mean(drawn[k])) if drawn[k] else 0.0 for k in keys
        }
        order = sorted(keys, key=lambda k: estimates[k])
        return OrderingResult(
            order=order,
            estimates=estimates,
            samples_per_group={k: len(drawn[k]) for k in keys},
            correct_probability=self.confidence,
        )

    def true_order(self) -> list[Any]:
        """Ground-truth ordering (full-data means), for evaluation."""
        means = {k: float(v.mean()) for k, v in self._values_by_group.items()}
        return sorted(means, key=lambda k: means[k])
