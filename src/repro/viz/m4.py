"""M4-style query-result reduction for line visualizations ([11]).

A line chart rendered on ``w`` pixel columns cannot show more detail than
4 values per column: the first, last, minimum and maximum of the points
falling in that column.  Reducing a long series to those 4·w rows is
visually lossless at the target width and shrinks transferred results by
orders of magnitude — the interactive-visualization optimisation the
tutorial covers under "dynamic reduction of query result sets".
"""

from __future__ import annotations

import numpy as np


def m4_reduce(
    x: np.ndarray,
    y: np.ndarray,
    width: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Reduce a series to at most ``4 * width`` points (M4).

    Args:
        x: monotonically plottable x values (e.g. timestamps).
        y: the measure.
        width: pixel columns of the target chart.

    Returns:
        (x, y) of the reduced series, in x order.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if len(x) != len(y):
        raise ValueError("x and y must have equal length")
    n = len(x)
    if n == 0 or width <= 0:
        return np.empty(0), np.empty(0)
    if n <= 4 * width:
        order = np.argsort(x, kind="stable")
        return x[order], y[order]
    lo, hi = float(x.min()), float(x.max())
    span = hi - lo or 1.0
    columns = np.clip(((x - lo) / span * width).astype(np.int64), 0, width - 1)
    keep: set[int] = set()
    order = np.argsort(x, kind="stable")
    sorted_columns = columns[order]
    boundaries = np.flatnonzero(sorted_columns[1:] != sorted_columns[:-1]) + 1
    starts = np.concatenate([[0], boundaries])
    ends = np.concatenate([boundaries, [n]])
    for start, end in zip(starts, ends):
        bucket = order[start:end]
        keep.add(int(bucket[0]))                       # first
        keep.add(int(bucket[-1]))                      # last
        keep.add(int(bucket[np.argmin(y[bucket])]))    # min
        keep.add(int(bucket[np.argmax(y[bucket])]))    # max
    kept = np.asarray(sorted(keep, key=lambda i: (x[i], i)), dtype=np.int64)
    return x[kept], y[kept]


def _rasterise(x: np.ndarray, y: np.ndarray, width: int, height: int) -> np.ndarray:
    """Binary pixel matrix of the min-max envelope per pixel column."""
    image = np.zeros((width, height), dtype=bool)
    if len(x) == 0:
        return image
    x_lo, x_hi = float(x.min()), float(x.max())
    y_lo, y_hi = float(y.min()), float(y.max())
    x_span = x_hi - x_lo or 1.0
    y_span = y_hi - y_lo or 1.0
    columns = np.clip(((x - x_lo) / x_span * width).astype(np.int64), 0, width - 1)
    rows = np.clip(((y - y_lo) / y_span * height).astype(np.int64), 0, height - 1)
    for column in np.unique(columns):
        mask = columns == column
        image[column, rows[mask].min() : rows[mask].max() + 1] = True
    return image


def reduction_error(
    x_full: np.ndarray,
    y_full: np.ndarray,
    x_reduced: np.ndarray,
    y_reduced: np.ndarray,
    width: int = 200,
    height: int = 100,
) -> float:
    """Fraction of differing pixels between full and reduced renderings.

    0.0 means the reduced series renders pixel-identically at the given
    raster size — M4's correctness claim at ``width`` matching the
    reduction width.
    """
    full = _rasterise(np.asarray(x_full, float), np.asarray(y_full, float), width, height)
    reduced = _rasterise(
        np.asarray(x_reduced, float), np.asarray(y_reduced, float), width, height
    )
    return float(np.mean(full != reduced))
