"""Visualization-side optimisations (paper §2.1).

- :func:`m4_reduce` — dynamic query-result reduction for line charts
  ([11]): per pixel column keep min/max/first/last, which renders
  pixel-identically at a fraction of the rows.
- :class:`OrderedSampler` — rapid sampling with ordering guarantees
  ([12]): sample group means only until the bar-chart *ordering* is
  settled with high probability.
- :mod:`repro.viz.spec` — a small declarative visualization algebra in
  the spirit of the data-visualization-management-system vision ([66]);
  specs compile to engine SQL.
"""

from repro.viz.m4 import m4_reduce, reduction_error
from repro.viz.ordering import OrderedSampler, OrderingResult
from repro.viz.spec import VizSpec, compile_spec

__all__ = [
    "OrderedSampler",
    "OrderingResult",
    "VizSpec",
    "compile_spec",
    "m4_reduce",
    "reduction_error",
]
