"""A declarative visualization algebra compiling to engine SQL ([66]).

The DVMS vision argues visualizations should be *declared* so the data
system can optimise them.  :class:`VizSpec` captures the declarative
core — mark type, x/y encodings, aggregate, filter, ordering, limit — and
:func:`compile_spec` lowers a spec to the engine's SQL dialect, applying
two optimisations automatically:

- aggregate bar/line specs group in the engine instead of fetching rows;
- raw line specs above the resolution budget are flagged for M4 reduction
  (the caller applies :func:`repro.viz.m4.m4_reduce` on the result).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

from repro.errors import ReproError

Mark = Literal["bar", "line", "point"]
Aggregate = Literal["avg", "sum", "count", "min", "max", ""]


@dataclass
class VizSpec:
    """A declarative chart description.

    Attributes:
        mark: visual mark type.
        table: source table name.
        x: x-encoding column.
        y: y-encoding column ("" allowed for count-only bars).
        aggregate: aggregate applied to y per x group ("" = raw rows).
        where: optional SQL predicate text.
        descending: sort bars by value descending.
        limit: optional row/bar budget.
        width: target pixel width (drives the M4 decision for lines).
    """

    mark: Mark
    table: str
    x: str
    y: str = ""
    aggregate: Aggregate = ""
    where: str = ""
    descending: bool = False
    limit: int | None = None
    width: int = 400

    def validate(self) -> None:
        """Check internal consistency.

        Raises:
            ReproError: on contradictory encodings.
        """
        if self.mark not in ("bar", "line", "point"):
            raise ReproError(f"unknown mark {self.mark!r}")
        if self.aggregate and self.aggregate not in ("avg", "sum", "count", "min", "max"):
            raise ReproError(f"unknown aggregate {self.aggregate!r}")
        if self.aggregate and self.aggregate != "count" and not self.y:
            raise ReproError(f"aggregate {self.aggregate!r} needs a y column")
        if not self.x:
            raise ReproError("a spec needs an x encoding")
        if self.mark in ("line", "point") and self.aggregate == "" and not self.y:
            raise ReproError(f"{self.mark} marks need a y encoding")


@dataclass
class CompiledViz:
    """The lowering of a spec."""

    sql: str
    needs_m4: bool
    value_column: str


def compile_spec(spec: VizSpec) -> CompiledViz:
    """Lower a spec to SQL plus post-processing flags."""
    spec.validate()
    where = f" WHERE {spec.where}" if spec.where else ""
    if spec.aggregate:
        if spec.aggregate == "count":
            select_value = "COUNT(*) AS value"
        else:
            select_value = f"{spec.aggregate.upper()}({spec.y}) AS value"
        sql = (
            f"SELECT {spec.x}, {select_value} FROM {spec.table}{where} "
            f"GROUP BY {spec.x} ORDER BY value {'DESC' if spec.descending else 'ASC'}"
        )
        if spec.limit is not None:
            sql += f" LIMIT {spec.limit}"
        return CompiledViz(sql=sql, needs_m4=False, value_column="value")
    sql = f"SELECT {spec.x}, {spec.y} FROM {spec.table}{where} ORDER BY {spec.x}"
    if spec.limit is not None:
        sql += f" LIMIT {spec.limit}"
    needs_m4 = spec.mark == "line"
    return CompiledViz(sql=sql, needs_m4=needs_m4, value_column=spec.y)
