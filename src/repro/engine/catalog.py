"""Catalog and the :class:`Database` facade.

``Database`` is the main entry point of the engine substrate: it registers
tables, maintains statistics, hosts secondary indexes (including the
adaptive cracker indexes of the paper's Database Layer), and executes SQL.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Any, Mapping, Protocol, Sequence

import numpy as np

from repro.engine import delta as deltamod
from repro.engine import scanopt
from repro.engine.delta import DeltaStore
from repro.engine.optimizer import optimize_plan
from repro.engine.planner import Plan, plan_statement
from repro.engine.sql.parser import parse
from repro.engine.statistics import TableStatistics, ZoneMap
from repro.engine.table import Table
from repro.engine.types import DataType
from repro.errors import CatalogError
from repro.obs.metrics import get_registry
from repro.obs.profile import ExplainAnalyzeReport, PlanProfiler
from repro.storage import layouts


class RangeIndex(Protocol):
    """Protocol for secondary indexes consulted by table scans.

    Implementations return the *positions* of qualifying rows in the base
    table.  Adaptive implementations (database cracking) are free to refine
    their internal organisation as a side effect of each lookup — that is
    the whole point of adaptive indexing.
    """

    def lookup_range(
        self,
        low: Any,
        high: Any,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> np.ndarray:
        """Row positions with values in the given (possibly open) range."""
        ...


class Database:
    """A database: tables, statistics, indexes, SQL execution.

    In-memory by default; pass ``path=`` to open (or create) a *durable*
    database rooted at a directory — writes go through a write-ahead log
    and survive process death (see :mod:`repro.engine.wal`).
    """

    def __init__(self, name: str = "db", path: str | os.PathLike | None = None) -> None:
        self.name = name
        self._tables: dict[str, Table] = {}
        self._statistics: dict[str, tuple[int, TableStatistics]] = {}
        self._indexes: dict[tuple[str, str], RangeIndex] = {}
        self._catalog_version = 0
        self._data_counter = 0
        self._table_versions: dict[str, int] = {}
        # write path: per-table delta stores plus caches keyed on
        # (table data version, delta version)
        self._deltas: dict[str, DeltaStore] = {}
        self._tails: dict[str, tuple[int, Table]] = {}
        self._effective: dict[str, tuple[tuple[int, int], Table]] = {}
        self._effective_stats: dict[str, tuple[tuple[int, int], TableStatistics]] = {}
        self._plan_cache: OrderedDict[str, tuple[int, bool, Plan]] = OrderedDict()
        self._plan_cache_lock = threading.Lock()
        # sharding: per-table partition layout (see repro.engine.shards)
        self._shard_layouts: dict[str, Any] = {}
        self.queries_executed = 0
        # durability: None for in-memory databases; recovery replays the
        # WAL with _replaying set so replayed writes are not re-logged
        self._closed = False
        self._replaying = False
        self._pragma_set: set[str] = set()
        self._durability = None
        if path is not None:
            from repro.engine import wal as walmod

            self._durability = walmod.DurabilityManager(path)
            self._durability.open_into(self)

    # -- durability ----------------------------------------------------------------

    @property
    def durability(self):
        """The :class:`~repro.engine.wal.DurabilityManager`, or None."""
        return self._durability

    @property
    def is_durable(self) -> bool:
        return self._durability is not None

    def _check_open(self) -> None:
        if self._closed:
            raise CatalogError("database is closed")

    def _wal_active(self) -> bool:
        """True when writes must be logged (durable, logging on, not replaying)."""
        if self._durability is None or self._replaying:
            return False
        from repro.engine import wal as walmod

        return walmod.get_config().wal and self._durability.wal is not None

    def _log_record(self, meta: dict[str, Any], blob: bytes | None = None) -> None:
        if self._wal_active():
            self._durability.wal.append(meta, blob)

    def _log_snapshot(self, op: str, name: str, table: Table) -> None:
        """Log a DDL operation as a full-table snapshot record."""
        if not self._wal_active():
            return
        from repro.storage import layouts

        self._durability.wal.append(
            {"op": op, "table": name}, layouts.table_to_bytes(table)
        )

    def _install_recovered(
        self,
        name: str,
        table: Table,
        stats: TableStatistics | None,
        sharding: dict | None = None,
    ) -> None:
        """Register a checkpoint-restored table without logging anything."""
        self._encode_strings(table)  # no-op for columns whose codes came from disk
        self._tables[name] = table
        self._reset_delta(name)
        self._bump_catalog(name)
        if stats is not None:
            self._statistics[name] = (self._table_versions.get(name, 0), stats)
        if sharding is not None:
            from repro.engine import shards as shardsmod

            self._shard_layouts[name] = shardsmod.ShardLayout.from_manifest(sharding)
            self._register_shard_index(name)
        else:
            self._shard_layouts.pop(name, None)

    def cached_statistics(self, name: str) -> TableStatistics | None:
        """Cached statistics for a table's main iff still current, else None.

        The checkpoint writer persists exactly what is cached — nothing
        is computed at checkpoint time; missing statistics are recomputed
        lazily after recovery.
        """
        entry = self._statistics.get(name)
        if entry is None or entry[0] != self._table_versions.get(name, 0):
            return None
        return entry[1]

    def checkpoint(self) -> str:
        """Merge pending deltas, then atomically persist the whole catalog.

        Returns the checkpoint directory path.  The old WAL is retired —
        recovery afterwards starts from this snapshot.

        Raises:
            CatalogError: for an in-memory database.
        """
        from repro.obs.tracing import trace

        self._check_open()
        if self._durability is None:
            raise CatalogError(
                "checkpoint requires a durable database (open with Database(path=...))"
            )
        registry = get_registry()
        with registry.timer("write.checkpoint_time").time(), trace(
            "write.checkpoint", tables=len(self._tables)
        ):
            self.flush_deltas()
            directory = self._durability.checkpoint(self)
            if layouts.get_config().storage == "mmap":
                self._adopt_checkpoint(directory)
                self._durability.release_live_dirs()
        return str(directory)

    def _adopt_checkpoint(self, directory: str | os.PathLike) -> None:
        """Re-home every main onto the just-written checkpoint's files.

        In mmap mode the freshly written part files are byte-for-byte
        the current mains (deltas were flushed first), so the catalog
        swaps its in-RAM or live-dir-backed columns for read-only maps
        of the checkpoint — this is also how a running session goes out
        of core (``PRAGMA storage=mmap`` followed by a checkpoint).  No
        version bumps: content is identical by construction, so cached
        plans, statistics, zone maps and indexes all stay valid.
        """
        import json

        directory = Path(directory)
        manifest = json.loads((directory / "MANIFEST.json").read_text())
        for table_meta in manifest["tables"]:
            name = table_meta["name"]
            if name not in self._tables:
                continue
            columns = []
            for column_meta in table_meta["columns"]:
                dtype = DataType[column_meta["dtype"]]
                columns.append((
                    column_meta["name"],
                    layouts.open_column_files(
                        directory, column_meta["files"], dtype, mode="mmap"
                    ),
                ))
            remapped = Table(columns)
            self._encode_strings(remapped)  # codes come back from disk
            self._tables[name] = remapped
            self._tails.pop(name, None)
            self._effective.pop(name, None)

    def close(self) -> None:
        """Flush and close the database; idempotent.

        Durable databases fsync any unsynced WAL tail; the shared worker
        pool is shut down deterministically (it restarts lazily if some
        other database issues a parallel query later).
        """
        if self._closed:
            return
        self._closed = True
        if self._durability is not None:
            self._durability.close()
            self._release_mmaps()
            self._durability.release_live_dirs()
        from repro.engine import parallel

        parallel.shutdown_pool()

    def _release_mmaps(self) -> None:
        """Close every memory map held by this database's tables.

        Without this, checkpoint directories stay undeletable on
        platforms with strict open-file semantics (Windows) for as long
        as the process lives.  Best-effort: maps still pinned by
        user-held column references are left to the garbage collector.
        """
        import gc

        backings = []
        for table in self._tables.values():
            for column_name in table.column_names:
                backing = table.column(column_name).backing
                if backing is not None:
                    backings.append(backing)
        if not backings:
            return
        handles = []
        for backing in backings:
            handles.extend(backing.mmap_handles())
            backing.release()
        # drop every internal reference that may pin a mapped array
        self._tables.clear()
        self._statistics.clear()
        self._effective.clear()
        self._effective_stats.clear()
        self._tails.clear()
        self._deltas.clear()
        self._indexes.clear()
        with self._plan_cache_lock:
            self._plan_cache.clear()
        gc.collect()
        for handle in handles:
            try:
                handle.close()
            except BufferError:  # a caller still holds a view
                pass

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- versioning ----------------------------------------------------------------

    @property
    def catalog_version(self) -> int:
        """Monotonic counter bumped by every *structural* change — DDL,
        table replacement, index (un)registration; cached plans are valid
        only for the version they were planned under.  Delta appends and
        tombstones deliberately do **not** bump it: an append changes no
        schema, no index set and no plan shape, so the plan cache
        survives the write (the per-table data version below keys the
        data-dependent caches instead)."""
        return self._catalog_version

    def _bump_catalog(self, table: str | None = None) -> None:
        """Advance the catalog version (naming the changed table, if any)
        and drop every cached plan — the catalog they were bound against
        no longer exists."""
        self._catalog_version += 1
        if table is not None:
            self._bump_data(table)
        with self._plan_cache_lock:
            self._plan_cache.clear()

    def _bump_data(self, table: str) -> None:
        """Advance a table's *data* version: its contents changed (merge,
        UPDATE, replacement) but the catalog shape did not.  Invalidates
        statistics and effective-table caches without touching cached
        plans."""
        self._data_counter += 1
        self._table_versions[table] = self._data_counter

    def _reset_delta(self, name: str) -> None:
        """Fresh (empty) delta store tracking the current main table."""
        main = self._tables.get(name)
        if main is None:
            self._deltas.pop(name, None)
        else:
            self._deltas[name] = DeltaStore(main.num_rows)
        self._tails.pop(name, None)
        self._effective.pop(name, None)
        self._effective_stats.pop(name, None)

    @staticmethod
    def _encode_strings(table: Table) -> None:
        """Eagerly dictionary-encode the STRING columns of a table."""
        if not scanopt.get_config().dict_encode:
            return
        for name in table.column_names:
            column = table.column(name)
            if column.dtype is DataType.STRING:
                column.encode_dictionary()

    # -- DDL ---------------------------------------------------------------------

    def create_table(self, name: str, table: Table | Mapping[str, Sequence[Any]]) -> Table:
        """Register a table under ``name``.

        Accepts either a built :class:`Table` or a ``{column: values}``
        mapping.

        Raises:
            CatalogError: if the name is already taken.
        """
        if name in self._tables:
            raise CatalogError(f"table {name!r} already exists")
        if not isinstance(table, Table):
            table = Table.from_dict(table)
        self._log_snapshot("create", name, table)
        self._encode_strings(table)
        self._tables[name] = table
        self._reset_delta(name)
        self._bump_catalog(name)
        self._maybe_auto_shard(name)
        return table

    def drop_table(self, name: str) -> None:
        """Remove a table and everything attached to it."""
        if name not in self._tables:
            raise CatalogError(f"unknown table {name!r}")
        self._log_record({"op": "drop", "table": name})
        del self._tables[name]
        self._statistics.pop(name, None)
        self._table_versions.pop(name, None)
        self._shard_layouts.pop(name, None)
        self._reset_delta(name)
        for key in [k for k in self._indexes if k[0] == name]:
            del self._indexes[key]
        self._bump_catalog()

    def replace_table(self, name: str, table: Table) -> None:
        """Swap the contents of an existing table.

        Statistics, indexes and the pending delta attached to the old
        contents are dropped, since they no longer describe the data.
        """
        if name not in self._tables:
            raise CatalogError(f"unknown table {name!r}")
        self._log_snapshot("replace", name, table)
        self._encode_strings(table)
        self._tables[name] = table
        self._statistics.pop(name, None)
        self._shard_layouts.pop(name, None)
        self._reset_delta(name)
        for key in [k for k in self._indexes if k[0] == name]:
            del self._indexes[key]
        self._bump_catalog(name)
        self._maybe_auto_shard(name)

    def table_names(self) -> list[str]:
        """Registered table names, sorted."""
        return sorted(self._tables)

    def has_table(self, name: str) -> bool:
        """True if a table with this name exists."""
        return name in self._tables

    def get_table(self, name: str) -> Table:
        """The named table, as queries see it.

        While the table has pending writes this is the *effective* table
        — live main rows followed by live delta rows, cached per (data
        version, delta version).  With a clean delta it is the columnar
        main itself, zero-copy.

        Raises:
            CatalogError: if the table does not exist.
        """
        main = self.main_table(name)
        store = self._deltas.get(name)
        if store is None or store.is_clean():
            return main
        key = (self._table_versions.get(name, 0), store.version)
        cached = self._effective.get(name)
        if cached is not None and cached[0] == key:
            return cached[1]
        effective = deltamod.merged_table(main, self.delta_tail(name), store)
        self._effective[name] = (key, effective)
        return effective

    def main_table(self, name: str) -> Table:
        """The columnar main of a table, ignoring any pending delta.

        The scan fast paths (zone maps, index probes) are aligned to the
        main's row positions; the executor unions in the delta tail
        separately.

        Raises:
            CatalogError: if the table does not exist.
        """
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(f"unknown table {name!r}") from None

    # -- delta store ---------------------------------------------------------------

    def _delta(self, name: str) -> DeltaStore:
        """The delta store of an existing table (created lazily)."""
        store = self._deltas.get(name)
        if store is None:
            store = DeltaStore(self.main_table(name).num_rows)
            self._deltas[name] = store
        return store

    def delta_store_if_dirty(self, name: str) -> DeltaStore | None:
        """The table's delta store when it has pending writes, else None.

        The executor's scan hot path calls this first: a None means the
        columnar main is the whole truth and every fast path applies
        unchanged.
        """
        store = self._deltas.get(name)
        if store is None or store.is_clean():
            return None
        return store

    def delta_tail(self, name: str) -> Table:
        """All pending delta rows (dead ones included, keeping positions
        stable) as a columnar table, cached per delta version."""
        store = self._delta(name)
        version = store.version
        cached = self._tails.get(name)
        if cached is not None and cached[0] == version:
            return cached[1]
        tail = deltamod.tail_table(store, self.main_table(name))
        self._tails[name] = (version, tail)
        return tail

    def delta_pressure(self, name: str) -> int:
        """Pending inserts + tombstones awaiting the next merge."""
        store = self._deltas.get(name)
        return 0 if store is None else store.write_pressure

    def flush_deltas(self, name: str | None = None) -> None:
        """Merge pending deltas into the columnar main now (all tables,
        or just one)."""
        names = [name] if name is not None else list(self._tables)
        for table_name in names:
            if table_name not in self._tables:
                raise CatalogError(f"unknown table {table_name!r}")
            self._merge_delta(table_name, reason="flush")

    def _maybe_merge(self, name: str) -> None:
        if self._replaying:
            # replay must not race ahead of history: merges happen exactly
            # where the log's merge markers say they happened
            return
        store = self._deltas.get(name)
        if store is None:
            return
        if store.write_pressure >= deltamod.get_config().delta_rows and not store.is_clean():
            self._merge_delta(name, reason="threshold")

    def _merge_delta(self, name: str, reason: str) -> None:
        """Fold a table's delta into its columnar main.

        Pure appends maintain every attached structure incrementally —
        dictionary codes ride through :func:`~repro.engine.delta.merged_table`,
        cached zone maps are extended in place of a rebuild, and cached
        statistics are absorbed with the O(delta) tail summary.  A merge
        that compacts tombstones shifts row positions, so it drops
        positional structures (registered indexes, cached stats) instead.
        """
        from repro.obs.tracing import trace

        store = self._deltas.get(name)
        if store is None or store.is_clean():
            self._reset_delta(name)
            return
        # a merge changes physical state only, but it is still logged: the
        # marker keeps replayed merge timing (and hence physical layout)
        # faithful, and arms the crash_mid_merge injection point
        self._log_record({"op": "merge", "table": name, "reason": reason})
        if self._durability is not None and not self._replaying:
            self._durability.crash_point(
                "crash_mid_merge", self._durability.wal.records_logged
            )
        registry = get_registry()
        pending = store.pending_inserts
        tombstones = store.main_tombstones + len(store.dead_delta)
        with registry.timer("write.merge_time").time(), trace(
            "write.merge", table=name, rows=pending, tombstones=tombstones, reason=reason
        ):
            main = self._tables[name]
            pure_append = tombstones == 0
            new_main = self.get_table(name)  # the effective table IS the merge result
            self._encode_strings(new_main)  # encodes columns that never had codes
            # a sharded table re-applies its layout: appended rows route
            # to their shards by key, range bounds track the new value
            # distribution, and the extents stay contiguous
            layout = self._shard_layouts.get(name)
            re_clustered = False
            if layout is not None:
                from repro.engine import shards as shardsmod

                new_main, layout, layout_identity = shardsmod.apply_layout(
                    new_main, layout.mode, layout.key, layout.num_shards,
                    uid=layout.uid,
                )
                self._shard_layouts[name] = layout
                re_clustered = not layout_identity
            if (
                self._durability is not None
                and main.is_mapped
                and layouts.get_config().storage == "mmap"
            ):
                # never rewrite the checkpoint files a mapped main points
                # at — they are the recovery source until the next
                # checkpoint.  The merged image is spilled to a live
                # scratch dir (write-temp-then-rename) and remapped.
                new_main = self._durability.spill_table(
                    name,
                    new_main,
                    {
                        column: new_main.schema.type_of(column)
                        for column in new_main.column_names
                    },
                )
            seeded: TableStatistics | None = None
            entry = self._statistics.get(name)
            if (
                pure_append
                and not re_clustered
                and entry is not None
                and entry[0] == self._table_versions.get(name, 0)
            ):
                seeded = deltamod.extend_statistics(entry[1], new_main, main.num_rows)
            self._tables[name] = new_main
            if not pure_append or re_clustered:
                # compaction/re-clustering renumbered rows: positional
                # indexes are stale
                index_keys = [k for k in self._indexes if k[0] == name]
                for key in index_keys:
                    del self._indexes[key]
                if index_keys:
                    self._bump_catalog(name)
                else:
                    self._bump_data(name)
            else:
                self._bump_data(name)
            self._reset_delta(name)
            if seeded is not None:
                self._statistics[name] = (self._table_versions.get(name, 0), seeded)
            else:
                self._statistics.pop(name, None)
            if layout is not None:
                from repro.engine import shards as shardsmod

                self._register_shard_index(name)
                shardsmod.record_layout_metrics(layout)
        registry.counter("write.merges").inc()
        registry.counter("write.merge_rows").inc(pending)
        if not self._replaying and name not in self._shard_layouts:
            self._maybe_auto_shard(name)

    # -- statistics ---------------------------------------------------------------

    def _main_statistics(self, name: str) -> TableStatistics:
        """Statistics of the columnar main, lazily computed and cached
        under the table's data version."""
        table = self.main_table(name)
        version = self._table_versions.get(name, 0)
        entry = self._statistics.get(name)
        if entry is None or entry[0] != version:
            entry = (version, TableStatistics.from_table(table))
            self._statistics[name] = entry
        return entry[1]

    def statistics(self, name: str) -> TableStatistics:
        """Statistics for a table as queries see it, lazily cached.

        With a clean delta these are the (exact) main statistics.  While
        writes are pending, the cached main statistics are *absorbed*
        with an O(delta) summary of the live delta rows — row/null
        counts and min/max reflect the pending writes exactly; distinct
        counts and histograms are approximate until the next merge.
        """
        main_stats = self._main_statistics(name)
        store = self.delta_store_if_dirty(name)
        if store is None:
            return main_stats
        key = (self._table_versions.get(name, 0), store.version)
        cached = self._effective_stats.get(name)
        if cached is not None and cached[0] == key:
            return cached[1]
        tail = self.delta_tail(name)
        live = store.live_delta_mask()
        if live is not None:
            tail = tail.filter(live)
        effective = deltamod.effective_statistics(main_stats, tail, store.main_tombstones)
        self._effective_stats[name] = (key, effective)
        return effective

    def invalidate_statistics(self, name: str) -> None:
        """Drop cached statistics (e.g. after the table was replaced)."""
        self._statistics.pop(name, None)
        self._effective_stats.pop(name, None)

    def zone_map(self, name: str) -> ZoneMap:
        """Zone map of the columnar *main* at the configured ``zone_rows``
        granularity.

        Zones are aligned to main row positions — the executor applies
        them to the main and evaluates the delta tail directly, so the
        map deliberately ignores pending writes.  (Tombstoned main rows
        stay summarised: bounds over a superset keep FAIL/PASS sound,
        and the scan ANDs the live mask afterwards.)  Cached inside the
        version-checked statistics entry; merges extend it incrementally.
        """
        return self._main_statistics(name).zone_map(
            self.main_table(name), scanopt.get_config().zone_rows
        )

    # -- indexes -------------------------------------------------------------------

    def register_index(self, table: str, column: str, index: RangeIndex) -> None:
        """Attach a secondary index to ``table.column``.

        The planner will route qualifying range predicates through it.
        Index positions refer to main row positions, so a pending delta
        is merged first — the index then describes exactly the table the
        caller just observed via :meth:`get_table`.

        On a sharded table the main was re-clustered when its layout was
        applied, so positions in a caller-built index refer to a row
        order that no longer exists.  The registration is honoured by
        rebuilding the index partition-local from the live column (the
        same form the automatic shard-key index takes) — probes then
        prune shards and return current row positions.
        """
        if table not in self._tables:
            raise CatalogError(f"unknown table {table!r}")
        if column not in self.main_table(table).schema:
            raise CatalogError(f"table {table!r} has no column {column!r}")
        if self.delta_store_if_dirty(table) is not None:
            self._merge_delta(table, reason="register_index")
        layout = self._shard_layouts.get(table)
        if layout is not None:
            from repro.engine import shards as shardsmod

            main = self.main_table(table)
            if main.schema.type_of(column) not in (DataType.INT64, DataType.FLOAT64):
                raise CatalogError(
                    f"cannot index {table}.{column}: a sharded table needs a "
                    "numeric column to back a partition-local cracker"
                )
            data = main.column(column)
            if data.validity is not None or (
                data.data.dtype.kind == "f" and bool(np.isnan(data.data).any())
            ):
                raise CatalogError(
                    f"cannot index {table}.{column}: NULLs/NaNs cannot back a "
                    "partition-local cracker on a sharded table"
                )
            index = shardsmod.ShardedCrackerIndex(data, layout)
        self._indexes[(table, column)] = index
        self._bump_catalog()  # cached plans may now prefer an index probe

    def unregister_index(self, table: str, column: str) -> None:
        """Detach the index on ``table.column`` if present."""
        if self._indexes.pop((table, column), None) is not None:
            self._bump_catalog()  # cached plans may reference the index

    def index_for(self, table: str, column: str) -> RangeIndex | None:
        """The registered index on ``table.column``, or None."""
        return self._indexes.get((table, column))

    # -- sharding ------------------------------------------------------------------

    def shard_layout(self, name: str):
        """The table's :class:`~repro.engine.shards.ShardLayout`, or None."""
        return self._shard_layouts.get(name)

    def _effective_rows(self, name: str) -> int:
        """Main rows plus pending delta inserts (the post-merge size)."""
        store = self._deltas.get(name)
        pending = 0 if store is None else store.pending_inserts
        return self.main_table(name).num_rows + pending

    def table_version(self, name: str) -> int:
        """The table's monotonic data version (keys the shard ship cache)."""
        return self._table_versions.get(name, 0)

    def apply_sharding(
        self,
        name: str,
        num_shards: int,
        shard_by: str | None = None,
        log: bool = True,
    ) -> None:
        """(Re)partition a table into ``num_shards`` extents, or unshard.

        ``shard_by`` is a ``hash``/``hash(col)``/``range(col)`` spec; the
        default is a hash of the table's first column.  The arguments are
        explicit — never read from the live config — so a replayed WAL
        ``shard`` record reproduces exactly the layout that was logged.
        A pending delta is merged first; rows are then stably reordered
        into shard order (a no-op when they already are, e.g. range
        partitioning of a monotone key).  ``num_shards`` of 0 or 1 drops
        the layout without touching the data.
        """
        from repro.engine import shards as shardsmod

        if name not in self._tables:
            raise CatalogError(f"unknown table {name!r}")
        if num_shards <= 1:
            if self._shard_layouts.pop(name, None) is not None:
                self._drop_shard_indexes(name)
                if log:
                    self._log_record({"op": "shard", "table": name, "shards": 0})
                self._bump_catalog(name)
            return
        mode, key = "hash", None
        if shard_by is not None:
            try:
                mode, key = shardsmod.parse_shard_by(shard_by)
            except ValueError as exc:
                raise CatalogError(str(exc)) from None
        if key is None:
            key = self.main_table(name).column_names[0]
        if key not in self.main_table(name).schema:
            raise CatalogError(f"table {name!r} has no column {key!r}")
        if self.delta_store_if_dirty(name) is not None:
            self._merge_delta(name, reason="shard")
        main = self._tables[name]
        try:
            new_main, layout, identity = shardsmod.apply_layout(
                main, mode, key, num_shards
            )
        except ValueError as exc:
            raise CatalogError(str(exc)) from None
        if log:
            self._log_record(
                {
                    "op": "shard",
                    "table": name,
                    "shards": num_shards,
                    "mode": mode,
                    "key": key,
                }
            )
        self._drop_shard_indexes(name)
        if identity:
            # same rows in the same order: stats, zone maps and mapped
            # backings stay valid; only cached plans must re-bind
            self._shard_layouts[name] = layout
            self._bump_catalog()
        else:
            if (
                self._durability is not None
                and main.is_mapped
                and layouts.get_config().storage == "mmap"
            ):
                new_main = self._durability.spill_table(
                    name,
                    new_main,
                    {
                        column: new_main.schema.type_of(column)
                        for column in new_main.column_names
                    },
                )
            self._encode_strings(new_main)
            self._tables[name] = new_main
            self._shard_layouts[name] = layout
            self._statistics.pop(name, None)
            for index_key in [k for k in self._indexes if k[0] == name]:
                del self._indexes[index_key]
            self._reset_delta(name)
            self._bump_catalog(name)
        self._register_shard_index(name)
        shardsmod.record_layout_metrics(layout)

    def _drop_shard_indexes(self, name: str) -> None:
        """Remove partition-local cracker indexes of a retired layout."""
        from repro.engine.shards import ShardedCrackerIndex

        for key in [
            k
            for k, index in self._indexes.items()
            if k[0] == name and isinstance(index, ShardedCrackerIndex)
        ]:
            del self._indexes[key]

    def _register_shard_index(self, name: str) -> None:
        """Attach a partition-local cracker index on the shard key.

        Installed directly (not via :meth:`register_index`, which would
        re-enter the merge path) and only when the key column can back a
        cracker exactly: numeric, no NULLs, no NaNs.  Skipped when an
        index on the key already exists — after an identity (pure
        append) merge the surviving index is still truthful.  Also
        skipped for mapped tables: building the cracker (and its NaN
        scan) would fault in every page, and out-of-core scans must stay
        on the streamed path where pruning skips reads and ``io.*`` is
        accounted.
        """
        from repro.engine import shards as shardsmod

        layout = self._shard_layouts.get(name)
        if layout is None or not shardsmod.get_config().shard_index:
            return
        main = self.main_table(name)
        if main.is_mapped:
            return
        if layout.key not in main.schema:
            return
        if (name, layout.key) in self._indexes:
            return
        if main.schema.type_of(layout.key) not in (DataType.INT64, DataType.FLOAT64):
            return
        column = main.column(layout.key)
        if column.validity is not None:
            return
        if column.data.dtype.kind == "f" and bool(np.isnan(column.data).any()):
            return
        self._indexes[(name, layout.key)] = shardsmod.ShardedCrackerIndex(
            column, layout
        )
        self._bump_catalog()  # cached plans may now prefer an index probe

    def _maybe_auto_shard(self, name: str) -> None:
        """Shard a table per the live config when it crosses the row floor.

        Live-path only: replay reproduces sharding from the WAL's own
        ``shard`` records instead, so a changed environment config can
        never fork recovery away from history.
        """
        if self._replaying or name in self._shard_layouts:
            return
        from repro.engine import shards as shardsmod

        config = shardsmod.get_config()
        if config.shards < 2:
            return
        if self._effective_rows(name) < config.shard_min_rows:
            return
        try:
            self.apply_sharding(name, config.shards, shard_by=config.shard_by)
        except CatalogError:
            # the configured default does not fit this table (e.g. range
            # on a text first column): leave it unsharded rather than
            # failing DML that never mentioned sharding
            pass

    # -- query execution --------------------------------------------------------------

    def plan(self, sql: str) -> Plan:
        """Parse and plan a query without executing it (plan-cache aware)."""
        return self._plan_cached(sql)[0]

    def _plan_cached(self, sql: str) -> tuple[Plan, bool]:
        """``(plan, cache_hit)`` for a SQL string.

        The cache is an LRU keyed on the exact SQL text; each entry
        remembers the catalog version *and* the optimizer setting it was
        planned under and is only served while both are current (DDL,
        table replacement and index changes bump the version and clear
        the cache; toggling ``PRAGMA optimizer`` makes old entries
        stale).  Exploration workloads re-issue the same statements
        constantly, so repeat queries skip parse/bind/plan/optimize
        entirely — what is cached is the fully *optimized* plan.
        """
        config = scanopt.get_config()
        if not config.plan_cache:
            plan = plan_statement(parse(sql), self)
            if config.optimizer:
                optimize_plan(plan, self)
            return plan, False
        registry = get_registry()
        optimized = bool(config.optimizer)
        with self._plan_cache_lock:
            entry = self._plan_cache.get(sql)
            if (
                entry is not None
                and entry[0] == self._catalog_version
                and entry[1] == optimized
            ):
                self._plan_cache.move_to_end(sql)
                registry.counter("plan_cache.hits").inc()
                return entry[2], True
        plan = plan_statement(parse(sql), self)
        if optimized:
            optimize_plan(plan, self)
        registry.counter("plan_cache.misses").inc()
        with self._plan_cache_lock:
            self._plan_cache[sql] = (self._catalog_version, optimized, plan)
            self._plan_cache.move_to_end(sql)
            while len(self._plan_cache) > config.plan_cache_size:
                self._plan_cache.popitem(last=False)
        return plan, False

    def explain(self, sql: str) -> str:
        """Textual plan for a query (like EXPLAIN)."""
        return self.plan(sql).explain()

    def sql(self, query: str) -> Table:
        """Parse, plan and execute a SELECT statement.

        Execution runs under the query governor (:mod:`repro.resilience`):
        ``PRAGMA timeout_ms`` / ``memory_budget_kb`` bound the query, a
        Ctrl-C surfaces as a clean
        :class:`~repro.errors.QueryCancelledError`, and with ``PRAGMA
        degrade=1`` a degradable aggregate that blows its budget returns
        an approximate answer with confidence bounds instead of failing.
        """
        self._check_open()
        plan = self.plan(query)
        self.queries_executed += 1
        registry = get_registry()
        registry.counter("engine.queries").inc()
        with registry.timer("engine.query_time").time():
            return self._run_governed(plan)

    def _run_governed(self, plan: Plan) -> Table:
        """Execute a plan under a fresh :class:`~repro.resilience.QueryContext`.

        A governor violation unwinds the tracer (abandoned spans are
        closed, not leaked), bumps the matching ``resilience.*`` counter
        and either re-raises or — when degradation is on and the plan
        qualifies — re-routes through the sampling-based approximate
        answer *outside* the expired context.
        """
        from repro import resilience
        from repro.engine.executor import execute_plan
        from repro.errors import (
            MemoryBudgetError,
            QueryCancelledError,
            QueryTimeoutError,
            ResourceError,
        )
        from repro.obs.tracing import get_tracer

        registry = get_registry()
        config = resilience.get_config()
        context = resilience.context_from_config(config)
        tracer = get_tracer()
        depth = tracer.open_depth()
        try:
            with resilience.activate(context):
                return execute_plan(plan, self)
        except ResourceError as exc:
            tracer.unwind(depth)
            if isinstance(exc, QueryTimeoutError):
                registry.counter("resilience.timeouts").inc()
            elif isinstance(exc, QueryCancelledError):
                registry.counter("resilience.cancellations").inc()
            elif isinstance(exc, MemoryBudgetError):
                registry.counter("resilience.memory_exceeded").inc()
            if config.degrade and not context.cancelled:
                from repro.resilience.degrade import degradable, degraded_answer

                if degradable(plan):
                    registry.counter("resilience.degradations").inc()
                    return degraded_answer(
                        plan,
                        self,
                        max_rows=config.degrade_rows,
                        reason=str(exc),
                    )
            raise
        except KeyboardInterrupt:
            context.cancel()
            tracer.unwind(depth)
            registry.counter("resilience.cancellations").inc()
            raise QueryCancelledError("query interrupted") from None

    def explain_analyze(self, query: str) -> ExplainAnalyzeReport:
        """Execute a SELECT under the profiler and return the report.

        The report carries per-plan-node wall time, input/output row
        counts and bytes touched; render it with
        :meth:`~repro.obs.profile.ExplainAnalyzeReport.render`.
        """
        plan, hit = self._plan_cached(query)
        report = self._profile_plan(plan)
        if hit:
            report.notes.append("plan cache: hit")
        return report

    def _profile_plan(self, plan: Plan) -> ExplainAnalyzeReport:
        from repro.engine.executor import execute_plan

        profiler = PlanProfiler()
        self.queries_executed += 1
        registry = get_registry()
        registry.counter("engine.queries_profiled").inc()
        with registry.timer("engine.query_time").time():
            execute_plan(plan, self, profiler=profiler)
        assert profiler.root is not None
        return ExplainAnalyzeReport(root=profiler.root, notes=list(plan.notes))

    def execute(self, statement_sql: str) -> Table | int:
        """Execute any supported statement.

        SELECTs return their result :class:`Table`; DML statements return
        the number of rows affected; DDL statements return 0.  Mutating a
        table drops its cached statistics and any registered indexes,
        since both describe the old contents.

        ``PRAGMA threads[=N]`` and ``PRAGMA morsel_rows[=N]`` read or set
        the morsel-driven parallel executor's knobs; ``PRAGMA
        timeout_ms``, ``memory_budget_kb``, ``degrade``, ``max_retries``
        and ``faults`` tune the query governor; ``PRAGMA dict_encode``,
        ``zone_rows``, ``plan_cache``, ``plan_cache_size`` and
        ``optimizer`` tune the scan-acceleration layer and the rule-based
        plan optimizer.  The read form returns a one-row settings table.
        """
        from repro.engine.sql.ast import (
            CreateTableStatement,
            DeleteStatement,
            DropTableStatement,
            ExplainStatement,
            InsertStatement,
            SelectStatement,
            UpdateStatement,
        )
        from repro.engine.sql.parser import parse_statement

        self._check_open()
        stripped = statement_sql.strip().rstrip(";").strip()
        if stripped[:6].upper() == "PRAGMA":
            return self._execute_pragma(stripped[6:].strip())
        statement = parse_statement(statement_sql)
        if isinstance(statement, SelectStatement):
            return self.sql(statement_sql)
        if isinstance(statement, ExplainStatement):
            return self._execute_explain(statement, stripped)
        if isinstance(statement, CreateTableStatement):
            self.create_table(statement.table, _empty_table(statement.columns))
            return 0
        if isinstance(statement, DropTableStatement):
            self.drop_table(statement.table)
            return 0
        if isinstance(statement, InsertStatement):
            return self._execute_insert(statement, stripped)
        if isinstance(statement, DeleteStatement):
            return self._execute_delete(statement, stripped)
        if isinstance(statement, UpdateStatement):
            return self._execute_update(statement, stripped)
        raise CatalogError(f"unsupported statement {type(statement).__name__}")

    #: integer-valued governor pragmas routed to ``repro.resilience.configure``
    _RESILIENCE_INT_PRAGMAS = frozenset(
        {
            "timeout_ms",
            "memory_budget_kb",
            "degrade",
            "degrade_rows",
            "max_retries",
            "fault_seed",
        }
    )

    def _execute_pragma(self, body: str) -> Table | int:
        """``PRAGMA <name>[=<value>]``: parallel-execution and governor knobs.

        The set form returns 0 (like DDL); the read form returns a
        one-row table with the current setting.  ``PRAGMA faults`` is the
        one string-valued pragma (a fault-injection spec, or ``off``);
        everything else takes an integer.  ``PRAGMA delta_rows`` tunes
        the write path's merge threshold (0 = merge on every write) and
        immediately merges any table already over the new threshold.
        ``PRAGMA wal`` / ``wal_sync`` / ``wal_batch`` tune the durability
        layer.  A bare ``PRAGMA`` lists every setting with its source.
        """
        from repro import resilience
        from repro.engine import parallel
        from repro.engine import wal as walmod

        if not body.strip():
            return self.settings_table()
        name, _, value = body.partition("=")
        name = name.strip().lower()
        value = value.strip()
        wal_knobs = {"wal", "wal_batch"}
        if name in wal_knobs:
            if value:
                try:
                    parsed = int(value)
                except ValueError:
                    raise CatalogError(
                        f"PRAGMA {name} expects an integer, got {value!r}"
                    ) from None
                try:
                    walmod.configure(**{name: parsed})
                except walmod.WalError as exc:
                    raise CatalogError(str(exc)) from None
                self._pragma_set.add(name)
                return 0
            current = getattr(walmod.get_config(), name)
            return Table.from_rows([(name, int(current))], ["pragma", "value"])
        if name == "wal_sync":
            if value:
                try:
                    walmod.configure(wal_sync=value.strip("'\"").strip())
                except walmod.WalError as exc:
                    raise CatalogError(str(exc)) from None
                self._pragma_set.add(name)
                return 0
            return Table.from_rows(
                [(name, walmod.get_config().wal_sync)], ["pragma", "value"]
            )
        if name == "storage":
            if value:
                try:
                    layouts.configure(storage=value.strip("'\"").strip())
                except ValueError as exc:
                    raise CatalogError(str(exc)) from None
                self._pragma_set.add(name)
                return 0
            return Table.from_rows(
                [(name, layouts.get_config().storage)], ["pragma", "value"]
            )
        if name == "shard_by":
            from repro.engine import shards as shardsmod

            if value:
                spec = value.strip("'\"").strip()
                try:
                    shardsmod.configure(shard_by=spec)
                except ValueError as exc:
                    raise CatalogError(str(exc)) from None
                self._pragma_set.add(name)
                return 0
            return Table.from_rows(
                [(name, shardsmod.get_config().shard_by)], ["pragma", "value"]
            )
        shard_knobs = {"shards", "shard_min_rows", "shard_index"}
        if name in shard_knobs:
            from repro.engine import shards as shardsmod

            if value:
                try:
                    parsed = int(value)
                except ValueError:
                    raise CatalogError(
                        f"PRAGMA {name} expects an integer, got {value!r}"
                    ) from None
                try:
                    shardsmod.configure(**{name: parsed})
                except ValueError as exc:
                    raise CatalogError(str(exc)) from None
                self._pragma_set.add(name)
                if name == "shards":
                    config = shardsmod.get_config()
                    for table_name in list(self._tables):
                        existing = self._shard_layouts.get(table_name)
                        if parsed <= 1:
                            self.apply_sharding(table_name, 0)
                        elif existing is not None:
                            if existing.num_shards != parsed:
                                # re-shard in place, keeping the table's spec
                                self.apply_sharding(
                                    table_name,
                                    parsed,
                                    shard_by=f"{existing.mode}({existing.key})",
                                )
                        elif self._effective_rows(table_name) >= config.shard_min_rows:
                            try:
                                self.apply_sharding(
                                    table_name, parsed, shard_by=config.shard_by
                                )
                            except CatalogError:
                                # bulk action: skip tables the default
                                # spec cannot partition (range on text)
                                continue
                return 0
            current = getattr(shardsmod.get_config(), name)
            return Table.from_rows([(name, int(current))], ["pragma", "value"])
        parallel_knobs = {"threads", "morsel_rows", "min_parallel_rows"}
        scanopt_knobs = {
            "dict_encode",
            "zone_rows",
            "plan_cache",
            "plan_cache_size",
            "optimizer",
        }
        if name == "delta_rows":
            if value:
                try:
                    parsed = int(value)
                except ValueError:
                    raise CatalogError(
                        f"PRAGMA {name} expects an integer, got {value!r}"
                    ) from None
                try:
                    deltamod.configure(delta_rows=parsed)
                except ValueError as exc:
                    raise CatalogError(str(exc)) from None
                self._pragma_set.add(name)
                # a lowered threshold may put tables over it immediately
                for table_name in list(self._tables):
                    self._maybe_merge(table_name)
                return 0
            return Table.from_rows(
                [(name, deltamod.get_config().delta_rows)], ["pragma", "value"]
            )
        if name in scanopt_knobs:
            if value:
                try:
                    parsed = int(value)
                except ValueError:
                    raise CatalogError(
                        f"PRAGMA {name} expects an integer, got {value!r}"
                    ) from None
                try:
                    scanopt.configure(**{name: parsed})
                except ValueError as exc:
                    raise CatalogError(str(exc)) from None
                self._pragma_set.add(name)
                if name == "dict_encode" and parsed:
                    # encode tables registered while the knob was off
                    for table in self._tables.values():
                        self._encode_strings(table)
                return 0
            current = getattr(scanopt.get_config(), name)
            return Table.from_rows([(name, int(current))], ["pragma", "value"])
        if name == "faults":
            if value:
                try:
                    resilience.configure(faults=value.strip("'\"").strip())
                except ValueError as exc:
                    raise CatalogError(str(exc)) from None
                self._pragma_set.add(name)
                return 0
            current = resilience.get_config().faults or "off"
            return Table.from_rows([(name, current)], ["pragma", "value"])
        if name in self._RESILIENCE_INT_PRAGMAS:
            if value:
                try:
                    parsed = int(value)
                except ValueError:
                    raise CatalogError(
                        f"PRAGMA {name} expects an integer, got {value!r}"
                    ) from None
                try:
                    resilience.configure(**{name: parsed})
                except ValueError as exc:
                    raise CatalogError(str(exc)) from None
                self._pragma_set.add(name)
                return 0
            current = getattr(resilience.get_config(), name)
            return Table.from_rows([(name, int(current))], ["pragma", "value"])
        if name not in parallel_knobs:
            known = sorted(
                parallel_knobs
                | scanopt_knobs
                | self._RESILIENCE_INT_PRAGMAS
                | {
                    "faults",
                    "delta_rows",
                    "storage",
                    "shards",
                    "shard_by",
                    "shard_min_rows",
                    "shard_index",
                }
            )
            raise CatalogError(f"unknown pragma {name!r}; expected one of {known}")
        if value:
            try:
                parsed = int(value)
            except ValueError:
                raise CatalogError(f"PRAGMA {name} expects an integer, got {value!r}") from None
            try:
                parallel.configure(**{name: parsed})
            except ValueError as exc:
                raise CatalogError(str(exc)) from None
            self._pragma_set.add(name)
            return 0
        config = parallel.get_config()
        return Table.from_rows([(name, getattr(config, name))], ["pragma", "value"])

    def settings_table(self) -> Table:
        """Every tunable with its current value and provenance.

        This is what a bare ``PRAGMA`` (or the shell's ``\\pragma``)
        returns.  The source column distinguishes the built-in default,
        an environment variable, and a ``PRAGMA`` issued through this
        database — recovery-relevant configuration is thereby inspectable
        before trusting a durable session.
        """
        from repro import resilience
        from repro.engine import parallel
        from repro.engine import shards as shardsmod
        from repro.engine import wal as walmod

        shard_cfg = shardsmod.get_config()
        par = parallel.get_config()
        acc = scanopt.get_config()
        gov = resilience.get_config()
        wcfg = walmod.get_config()
        entries: list[tuple[str, Any, str]] = [
            ("threads", par.threads, "REPRO_THREADS"),
            ("morsel_rows", par.morsel_rows, "REPRO_MORSEL_ROWS"),
            ("min_parallel_rows", par.min_parallel_rows, "REPRO_PARALLEL_MIN_ROWS"),
            ("delta_rows", deltamod.get_config().delta_rows, "REPRO_DELTA_ROWS"),
            ("dict_encode", int(acc.dict_encode), "REPRO_DICT_ENCODE"),
            ("zone_rows", acc.zone_rows, "REPRO_ZONE_ROWS"),
            ("plan_cache", int(acc.plan_cache), "REPRO_PLAN_CACHE"),
            ("plan_cache_size", acc.plan_cache_size, "REPRO_PLAN_CACHE_SIZE"),
            ("optimizer", int(acc.optimizer), "REPRO_OPTIMIZER"),
            ("timeout_ms", gov.timeout_ms, "REPRO_TIMEOUT_MS"),
            ("memory_budget_kb", gov.memory_budget_kb, "REPRO_MEMORY_BUDGET_KB"),
            ("degrade", int(gov.degrade), "REPRO_DEGRADE"),
            ("degrade_rows", gov.degrade_rows, "REPRO_DEGRADE_ROWS"),
            ("max_retries", gov.max_retries, "REPRO_MAX_RETRIES"),
            ("faults", gov.faults or "off", "REPRO_FAULTS"),
            ("fault_seed", gov.fault_seed, "REPRO_FAULT_SEED"),
            ("wal", int(wcfg.wal), "REPRO_WAL"),
            ("wal_sync", wcfg.wal_sync, "REPRO_WAL_SYNC"),
            ("wal_batch", wcfg.wal_batch, "REPRO_WAL_BATCH"),
            ("storage", layouts.get_config().storage, "REPRO_STORAGE"),
            ("shards", shard_cfg.shards, "REPRO_SHARDS"),
            ("shard_by", shard_cfg.shard_by, "REPRO_SHARD_BY"),
            ("shard_min_rows", shard_cfg.shard_min_rows, "REPRO_SHARD_MIN_ROWS"),
            ("shard_index", int(shard_cfg.shard_index), "REPRO_SHARD_INDEX"),
        ]
        rows = []
        for pragma, current, env in entries:
            if pragma in self._pragma_set:
                source = "pragma"
            elif (os.environ.get(env) or "").strip():
                source = f"env:{env}"
            else:
                source = "default"
            rows.append((pragma, str(current), source))
        return Table.from_rows(rows, ["pragma", "value", "source"])

    def _execute_explain(self, statement, statement_sql: str) -> Table:
        """EXPLAIN [ANALYZE]: the plan (and measurements) as a one-column
        table of report lines, the way conventional engines present it."""
        import re

        from repro.engine.column import Column
        from repro.engine.types import DataType

        if statement.analyze:
            # route through the plan-cache-aware path (keyed on the inner
            # SELECT text) so repeat EXPLAIN ANALYZE skips planning too
            inner = re.sub(
                r"^\s*EXPLAIN\s+ANALYZE\s+", "", statement_sql, flags=re.IGNORECASE
            )
            lines = self.explain_analyze(inner).lines()
        else:
            plan = plan_statement(statement.statement, self)
            if scanopt.get_config().optimizer:
                optimize_plan(plan, self)
            lines = plan.explain().split("\n")
            lines.extend(f"note: {note}" for note in plan.notes)
        return Table([("plan", Column(lines, dtype=DataType.STRING))])

    def _execute_insert(self, statement, sql: str | None = None) -> int:
        """INSERT: constant-fold + type-check each value, append to the
        table's delta store, feed insert-capable indexes, maybe merge.

        The statement text is WAL-logged *after* validation and coercion
        succeed (a rejected statement changed nothing, so it must not be
        replayed) and *before* any in-memory state changes.

        Values may be any constant expression (``-2``, ``1+1``, ``NULL``)
        — they are folded through the normal expression kernels.  Lossy
        coercions (a fractional float into INT64, a number into STRING)
        raise :class:`~repro.errors.TypeMismatchError` instead of the old
        silent numpy truncation.
        """
        from repro.engine.expressions import fold_constant

        name = statement.table
        table = self.main_table(name)
        names = statement.columns or list(table.column_names)
        unknown = set(names) - set(table.column_names)
        if unknown:
            raise CatalogError(f"unknown column(s) in INSERT: {sorted(unknown)}")
        dtypes = {n: table.schema.type_of(n) for n in table.column_names}
        new_rows: list[tuple[Any, ...]] = []
        for row in statement.rows:
            if len(row) != len(names):
                raise CatalogError(
                    f"INSERT row width {len(row)} does not match {len(names)} columns"
                )
            values: dict[str, Any] = {}
            for column_name, expr in zip(names, row):
                if expr.referenced_columns():
                    raise CatalogError(
                        "INSERT VALUES must be constant expressions "
                        "(no column references)"
                    )
                values[column_name] = deltamod.coerce_scalar(
                    fold_constant(expr), dtypes[column_name], column_name
                )
            new_rows.append(tuple(values.get(n) for n in table.column_names))
        if sql is not None:
            self._log_record({"op": "sql", "stmt": sql})
        store = self._delta(name)
        self._feed_indexes_on_insert(name, table, new_rows)
        store.append(new_rows)
        registry = get_registry()
        registry.counter("write.inserts").inc()
        registry.counter("write.insert_rows").inc(len(new_rows))
        registry.gauge("write.delta_pressure").set(store.write_pressure)
        self._maybe_merge(name)
        return len(new_rows)

    def _feed_indexes_on_insert(
        self, name: str, table: Table, new_rows: list[tuple[Any, ...]]
    ) -> None:
        """Keep registered indexes truthful across an append.

        Insert-capable indexes (the ``UpdatableCrackerIndex`` protocol:
        an O(1) ``insert(value)`` assigning the next logical row id) are
        fed each new value — logical ids line up with main positions plus
        delta offsets because registration merges the delta first.  An
        index without ``insert`` (or facing a value it cannot hold, e.g.
        NULL) is unregistered: it no longer describes the table.
        """
        index_keys = [k for k in self._indexes if k[0] == name]
        if not index_keys:
            return
        positions = {n: i for i, n in enumerate(table.column_names)}
        for key in index_keys:
            index = self._indexes[key]
            insert = getattr(index, "insert", None)
            column_pos = positions[key[1]]
            values = [row[column_pos] for row in new_rows]
            if insert is None or any(
                v is None or isinstance(v, (str, bool)) for v in values
            ):
                del self._indexes[key]
                self._bump_catalog(name)
                continue
            for value in values:
                insert(value)

    def _execute_delete(self, statement, sql: str | None = None) -> int:
        """DELETE: tombstone matching rows instead of materialising a
        filtered copy of the table.  Main rows flip a bit in the delta
        store's dead mask, delta rows land in its dead set; nothing moves
        until the next merge compacts the table.

        WAL logging: the unfiltered form goes through
        :meth:`replace_table`, which logs an (empty) snapshot record; the
        WHERE form logs the statement text once matches are computed and
        at least one row is affected."""
        from repro.engine.expressions import truth_mask

        name = statement.table
        main = self.main_table(name)
        store = self._delta(name)
        registry = get_registry()
        if statement.where is None:
            affected = main.num_rows - store.main_tombstones + store.live_delta_count()
            # dropping every row is a structural reset, like replace_table
            self.replace_table(name, main.slice(0, 0))
            registry.counter("write.deletes").inc()
            registry.counter("write.delete_rows").inc(affected)
            return affected
        mask_main = truth_mask(statement.where, main)
        live_main = store.live_main_mask()
        if live_main is not None:
            mask_main &= live_main
        affected = int(mask_main.sum())
        dead_delta: list[int] = []
        if store.rows:
            tail = self.delta_tail(name)
            mask_tail = truth_mask(statement.where, tail)
            live_delta = store.live_delta_mask()
            if live_delta is not None:
                mask_tail &= live_delta
            dead_delta = np.flatnonzero(mask_tail).tolist()
            affected += len(dead_delta)
        if affected == 0:
            return 0
        if sql is not None:
            self._log_record({"op": "sql", "stmt": sql})
        self._notify_index_deletes(name, mask_main, dead_delta, main.num_rows)
        store.mark_main_deleted(mask_main)
        store.mark_delta_deleted(dead_delta)
        registry.counter("write.deletes").inc()
        registry.counter("write.delete_rows").inc(affected)
        registry.gauge("write.delta_pressure").set(store.write_pressure)
        self._maybe_merge(name)
        return affected

    def _notify_index_deletes(
        self, name: str, mask_main: np.ndarray, dead_delta: list[int], main_rows: int
    ) -> None:
        """Forward tombstones to delete-capable indexes.

        Purely an optimisation: the scan filters probe positions through
        the live masks regardless, so an index without ``delete`` stays
        registered and correct — it just returns dead positions the scan
        then drops.
        """
        for key in [k for k in self._indexes if k[0] == name]:
            delete = getattr(self._indexes[key], "delete", None)
            if delete is None:
                continue
            for position in np.flatnonzero(mask_main):
                delete(int(position))
            for index in dead_delta:
                delete(main_rows + index)

    def _execute_update(self, statement, sql: str | None = None) -> int:
        """UPDATE: vectorised in-place column rewrite.

        The statement text is WAL-logged after every assignment has been
        evaluated and coerced, immediately before the new table is
        installed — a type error mid-statement therefore logs nothing.

        Only assigned columns are copied — unassigned columns are shared
        with the old table — and assignments patch the payload with one
        masked write under the same typed-coercion contract as INSERT.
        Pending delta rows are rewritten tuple-wise.  Row order and
        column order are preserved; indexes on assigned columns are
        dropped (their values changed in place), others stay valid.
        """
        from repro.engine.expressions import fold_constant, truth_mask

        name = statement.table
        main = self.main_table(name)
        store = self._delta(name)
        mask_main = (
            truth_mask(statement.where, main)
            if statement.where is not None
            else np.ones(main.num_rows, dtype=bool)
        )
        live_main = store.live_main_mask()
        if live_main is not None:
            mask_main &= live_main
        affected = int(mask_main.sum())
        tail = self.delta_tail(name) if store.rows else None
        mask_tail = None
        if tail is not None:
            mask_tail = (
                truth_mask(statement.where, tail)
                if statement.where is not None
                else np.ones(tail.num_rows, dtype=bool)
            )
            live_delta = store.live_delta_mask()
            if live_delta is not None:
                mask_tail &= live_delta
            affected += int(mask_tail.sum())
        dict_encode = scanopt.get_config().dict_encode
        new_columns = {n: main.column(n) for n in main.column_names}
        new_rows = [list(row) for row in store.rows]
        positions = {n: i for i, n in enumerate(main.column_names)}
        assigned: list[str] = []
        for column_name, expr in statement.assignments:
            if column_name not in main.schema:
                raise CatalogError(f"unknown column {column_name!r} in UPDATE")
            assigned.append(column_name)
            dtype = main.schema.type_of(column_name)
            new_values = expr.evaluate(main)
            updated = deltamod.assign_column(
                new_columns[column_name], new_values, mask_main
            )
            if dtype is DataType.STRING and dict_encode:
                updated.encode_dictionary()
            new_columns[column_name] = updated
            if mask_tail is not None and mask_tail.any():
                if expr.referenced_columns():
                    tail_values = expr.evaluate(tail)
                    folded = None
                else:
                    folded = deltamod.coerce_scalar(
                        fold_constant(expr), dtype, column_name
                    )
                    tail_values = None
                for index in np.flatnonzero(mask_tail):
                    value = (
                        folded
                        if tail_values is None
                        else deltamod.coerce_scalar(
                            tail_values[int(index)], dtype, column_name
                        )
                    )
                    new_rows[int(index)][positions[column_name]] = value
        if sql is not None:
            self._log_record({"op": "sql", "stmt": sql})
        self._tables[name] = Table(
            [(n, new_columns[n]) for n in main.column_names]
        )
        if new_rows:
            store.rows = [tuple(row) for row in new_rows]
        store.touch()
        index_keys = [
            k for k in self._indexes if k[0] == name and k[1] in assigned
        ]
        for key in index_keys:
            del self._indexes[key]
        if index_keys:
            self._bump_catalog(name)
        else:
            self._bump_data(name)
        registry = get_registry()
        registry.counter("write.updates").inc()
        registry.counter("write.update_rows").inc(affected)
        return affected

_TYPE_WORDS = {
    "INT": "INT64", "INTEGER": "INT64", "BIGINT": "INT64",
    "FLOAT": "FLOAT64", "DOUBLE": "FLOAT64", "REAL": "FLOAT64",
    "TEXT": "STRING", "STRING": "STRING", "VARCHAR": "STRING",
    "BOOL": "BOOL", "BOOLEAN": "BOOL",
}


def _empty_table(columns: list[tuple[str, str]]) -> Table:
    """An empty Table from CREATE TABLE (name, type word) pairs."""
    from repro.engine.column import Column
    from repro.engine.types import DataType

    built = []
    for name, type_word in columns:
        if type_word not in _TYPE_WORDS:
            raise CatalogError(f"unknown column type {type_word!r}")
        built.append((name, Column.empty(DataType[_TYPE_WORDS[type_word]])))
    return Table(built)
