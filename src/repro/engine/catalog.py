"""Catalog and the :class:`Database` facade.

``Database`` is the main entry point of the engine substrate: it registers
tables, maintains statistics, hosts secondary indexes (including the
adaptive cracker indexes of the paper's Database Layer), and executes SQL.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Mapping, Protocol, Sequence

import numpy as np

from repro.engine import scanopt
from repro.engine.optimizer import optimize_plan
from repro.engine.planner import Plan, plan_statement
from repro.engine.sql.parser import parse
from repro.engine.statistics import TableStatistics, ZoneMap
from repro.engine.table import Table
from repro.engine.types import DataType
from repro.errors import CatalogError
from repro.obs.metrics import get_registry
from repro.obs.profile import ExplainAnalyzeReport, PlanProfiler


class RangeIndex(Protocol):
    """Protocol for secondary indexes consulted by table scans.

    Implementations return the *positions* of qualifying rows in the base
    table.  Adaptive implementations (database cracking) are free to refine
    their internal organisation as a side effect of each lookup — that is
    the whole point of adaptive indexing.
    """

    def lookup_range(
        self,
        low: Any,
        high: Any,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> np.ndarray:
        """Row positions with values in the given (possibly open) range."""
        ...


class Database:
    """An in-memory database: tables, statistics, indexes, SQL execution."""

    def __init__(self, name: str = "db") -> None:
        self.name = name
        self._tables: dict[str, Table] = {}
        self._statistics: dict[str, tuple[int, TableStatistics]] = {}
        self._indexes: dict[tuple[str, str], RangeIndex] = {}
        self._catalog_version = 0
        self._table_versions: dict[str, int] = {}
        self._plan_cache: OrderedDict[str, tuple[int, bool, Plan]] = OrderedDict()
        self._plan_cache_lock = threading.Lock()
        self.queries_executed = 0

    # -- versioning ----------------------------------------------------------------

    @property
    def catalog_version(self) -> int:
        """Monotonic counter bumped by every DDL / table replacement /
        index (un)registration; cached plans and statistics are valid
        only for the version they were built under."""
        return self._catalog_version

    def _bump_catalog(self, table: str | None = None) -> None:
        """Advance the catalog version (naming the changed table, if any)
        and drop every cached plan — the catalog they were bound against
        no longer exists."""
        self._catalog_version += 1
        if table is not None:
            self._table_versions[table] = self._catalog_version
        with self._plan_cache_lock:
            self._plan_cache.clear()

    @staticmethod
    def _encode_strings(table: Table) -> None:
        """Eagerly dictionary-encode the STRING columns of a table."""
        if not scanopt.get_config().dict_encode:
            return
        for name in table.column_names:
            column = table.column(name)
            if column.dtype is DataType.STRING:
                column.encode_dictionary()

    # -- DDL ---------------------------------------------------------------------

    def create_table(self, name: str, table: Table | Mapping[str, Sequence[Any]]) -> Table:
        """Register a table under ``name``.

        Accepts either a built :class:`Table` or a ``{column: values}``
        mapping.

        Raises:
            CatalogError: if the name is already taken.
        """
        if name in self._tables:
            raise CatalogError(f"table {name!r} already exists")
        if not isinstance(table, Table):
            table = Table.from_dict(table)
        self._encode_strings(table)
        self._tables[name] = table
        self._bump_catalog(name)
        return table

    def drop_table(self, name: str) -> None:
        """Remove a table and everything attached to it."""
        if name not in self._tables:
            raise CatalogError(f"unknown table {name!r}")
        del self._tables[name]
        self._statistics.pop(name, None)
        self._table_versions.pop(name, None)
        for key in [k for k in self._indexes if k[0] == name]:
            del self._indexes[key]
        self._bump_catalog()

    def replace_table(self, name: str, table: Table) -> None:
        """Swap the contents of an existing table.

        Statistics and indexes attached to the old contents are dropped,
        since they no longer describe the data.
        """
        if name not in self._tables:
            raise CatalogError(f"unknown table {name!r}")
        self._encode_strings(table)
        self._tables[name] = table
        self._statistics.pop(name, None)
        for key in [k for k in self._indexes if k[0] == name]:
            del self._indexes[key]
        self._bump_catalog(name)

    def table_names(self) -> list[str]:
        """Registered table names, sorted."""
        return sorted(self._tables)

    def has_table(self, name: str) -> bool:
        """True if a table with this name exists."""
        return name in self._tables

    def get_table(self, name: str) -> Table:
        """The named table.

        Raises:
            CatalogError: if the table does not exist.
        """
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(f"unknown table {name!r}") from None

    # -- statistics ---------------------------------------------------------------

    def statistics(self, name: str) -> TableStatistics:
        """Statistics for a table, computed lazily and cached.

        The cache entry carries the table version it was computed under;
        replacing the table (directly or via INSERT/UPDATE/DELETE) bumps
        the version, so stale statistics can never be served.
        """
        table = self.get_table(name)
        version = self._table_versions.get(name, 0)
        entry = self._statistics.get(name)
        if entry is None or entry[0] != version:
            entry = (version, TableStatistics.from_table(table))
            self._statistics[name] = entry
        return entry[1]

    def invalidate_statistics(self, name: str) -> None:
        """Drop cached statistics (e.g. after the table was replaced)."""
        self._statistics.pop(name, None)

    def zone_map(self, name: str) -> ZoneMap:
        """Zone map of a table at the configured ``zone_rows`` granularity.

        Cached inside the (version-checked) statistics entry, so a
        replaced table always gets fresh zones.
        """
        return self.statistics(name).zone_map(
            self.get_table(name), scanopt.get_config().zone_rows
        )

    # -- indexes -------------------------------------------------------------------

    def register_index(self, table: str, column: str, index: RangeIndex) -> None:
        """Attach a secondary index to ``table.column``.

        The planner will route qualifying range predicates through it.
        """
        if table not in self._tables:
            raise CatalogError(f"unknown table {table!r}")
        if column not in self.get_table(table).schema:
            raise CatalogError(f"table {table!r} has no column {column!r}")
        self._indexes[(table, column)] = index
        self._bump_catalog()  # cached plans may now prefer an index probe

    def unregister_index(self, table: str, column: str) -> None:
        """Detach the index on ``table.column`` if present."""
        if self._indexes.pop((table, column), None) is not None:
            self._bump_catalog()  # cached plans may reference the index

    def index_for(self, table: str, column: str) -> RangeIndex | None:
        """The registered index on ``table.column``, or None."""
        return self._indexes.get((table, column))

    # -- query execution --------------------------------------------------------------

    def plan(self, sql: str) -> Plan:
        """Parse and plan a query without executing it (plan-cache aware)."""
        return self._plan_cached(sql)[0]

    def _plan_cached(self, sql: str) -> tuple[Plan, bool]:
        """``(plan, cache_hit)`` for a SQL string.

        The cache is an LRU keyed on the exact SQL text; each entry
        remembers the catalog version *and* the optimizer setting it was
        planned under and is only served while both are current (DDL,
        table replacement and index changes bump the version and clear
        the cache; toggling ``PRAGMA optimizer`` makes old entries
        stale).  Exploration workloads re-issue the same statements
        constantly, so repeat queries skip parse/bind/plan/optimize
        entirely — what is cached is the fully *optimized* plan.
        """
        config = scanopt.get_config()
        if not config.plan_cache:
            plan = plan_statement(parse(sql), self)
            if config.optimizer:
                optimize_plan(plan, self)
            return plan, False
        registry = get_registry()
        optimized = bool(config.optimizer)
        with self._plan_cache_lock:
            entry = self._plan_cache.get(sql)
            if (
                entry is not None
                and entry[0] == self._catalog_version
                and entry[1] == optimized
            ):
                self._plan_cache.move_to_end(sql)
                registry.counter("plan_cache.hits").inc()
                return entry[2], True
        plan = plan_statement(parse(sql), self)
        if optimized:
            optimize_plan(plan, self)
        registry.counter("plan_cache.misses").inc()
        with self._plan_cache_lock:
            self._plan_cache[sql] = (self._catalog_version, optimized, plan)
            self._plan_cache.move_to_end(sql)
            while len(self._plan_cache) > config.plan_cache_size:
                self._plan_cache.popitem(last=False)
        return plan, False

    def explain(self, sql: str) -> str:
        """Textual plan for a query (like EXPLAIN)."""
        return self.plan(sql).explain()

    def sql(self, query: str) -> Table:
        """Parse, plan and execute a SELECT statement.

        Execution runs under the query governor (:mod:`repro.resilience`):
        ``PRAGMA timeout_ms`` / ``memory_budget_kb`` bound the query, a
        Ctrl-C surfaces as a clean
        :class:`~repro.errors.QueryCancelledError`, and with ``PRAGMA
        degrade=1`` a degradable aggregate that blows its budget returns
        an approximate answer with confidence bounds instead of failing.
        """
        plan = self.plan(query)
        self.queries_executed += 1
        registry = get_registry()
        registry.counter("engine.queries").inc()
        with registry.timer("engine.query_time").time():
            return self._run_governed(plan)

    def _run_governed(self, plan: Plan) -> Table:
        """Execute a plan under a fresh :class:`~repro.resilience.QueryContext`.

        A governor violation unwinds the tracer (abandoned spans are
        closed, not leaked), bumps the matching ``resilience.*`` counter
        and either re-raises or — when degradation is on and the plan
        qualifies — re-routes through the sampling-based approximate
        answer *outside* the expired context.
        """
        from repro import resilience
        from repro.engine.executor import execute_plan
        from repro.errors import (
            MemoryBudgetError,
            QueryCancelledError,
            QueryTimeoutError,
            ResourceError,
        )
        from repro.obs.tracing import get_tracer

        registry = get_registry()
        config = resilience.get_config()
        context = resilience.context_from_config(config)
        tracer = get_tracer()
        depth = tracer.open_depth()
        try:
            with resilience.activate(context):
                return execute_plan(plan, self)
        except ResourceError as exc:
            tracer.unwind(depth)
            if isinstance(exc, QueryTimeoutError):
                registry.counter("resilience.timeouts").inc()
            elif isinstance(exc, QueryCancelledError):
                registry.counter("resilience.cancellations").inc()
            elif isinstance(exc, MemoryBudgetError):
                registry.counter("resilience.memory_exceeded").inc()
            if config.degrade and not context.cancelled:
                from repro.resilience.degrade import degradable, degraded_answer

                if degradable(plan):
                    registry.counter("resilience.degradations").inc()
                    return degraded_answer(
                        plan,
                        self,
                        max_rows=config.degrade_rows,
                        reason=str(exc),
                    )
            raise
        except KeyboardInterrupt:
            context.cancel()
            tracer.unwind(depth)
            registry.counter("resilience.cancellations").inc()
            raise QueryCancelledError("query interrupted") from None

    def explain_analyze(self, query: str) -> ExplainAnalyzeReport:
        """Execute a SELECT under the profiler and return the report.

        The report carries per-plan-node wall time, input/output row
        counts and bytes touched; render it with
        :meth:`~repro.obs.profile.ExplainAnalyzeReport.render`.
        """
        plan, hit = self._plan_cached(query)
        report = self._profile_plan(plan)
        if hit:
            report.notes.append("plan cache: hit")
        return report

    def _profile_plan(self, plan: Plan) -> ExplainAnalyzeReport:
        from repro.engine.executor import execute_plan

        profiler = PlanProfiler()
        self.queries_executed += 1
        registry = get_registry()
        registry.counter("engine.queries_profiled").inc()
        with registry.timer("engine.query_time").time():
            execute_plan(plan, self, profiler=profiler)
        assert profiler.root is not None
        return ExplainAnalyzeReport(root=profiler.root, notes=list(plan.notes))

    def execute(self, statement_sql: str) -> Table | int:
        """Execute any supported statement.

        SELECTs return their result :class:`Table`; DML statements return
        the number of rows affected; DDL statements return 0.  Mutating a
        table drops its cached statistics and any registered indexes,
        since both describe the old contents.

        ``PRAGMA threads[=N]`` and ``PRAGMA morsel_rows[=N]`` read or set
        the morsel-driven parallel executor's knobs; ``PRAGMA
        timeout_ms``, ``memory_budget_kb``, ``degrade``, ``max_retries``
        and ``faults`` tune the query governor; ``PRAGMA dict_encode``,
        ``zone_rows``, ``plan_cache``, ``plan_cache_size`` and
        ``optimizer`` tune the scan-acceleration layer and the rule-based
        plan optimizer.  The read form returns a one-row settings table.
        """
        from repro.engine.sql.ast import (
            CreateTableStatement,
            DeleteStatement,
            DropTableStatement,
            ExplainStatement,
            InsertStatement,
            SelectStatement,
            UpdateStatement,
        )
        from repro.engine.sql.parser import parse_statement

        stripped = statement_sql.strip().rstrip(";").strip()
        if stripped[:6].upper() == "PRAGMA":
            return self._execute_pragma(stripped[6:].strip())
        statement = parse_statement(statement_sql)
        if isinstance(statement, SelectStatement):
            return self.sql(statement_sql)
        if isinstance(statement, ExplainStatement):
            return self._execute_explain(statement, stripped)
        if isinstance(statement, CreateTableStatement):
            self.create_table(statement.table, _empty_table(statement.columns))
            return 0
        if isinstance(statement, DropTableStatement):
            self.drop_table(statement.table)
            return 0
        if isinstance(statement, InsertStatement):
            return self._execute_insert(statement)
        if isinstance(statement, DeleteStatement):
            return self._execute_delete(statement)
        if isinstance(statement, UpdateStatement):
            return self._execute_update(statement)
        raise CatalogError(f"unsupported statement {type(statement).__name__}")

    #: integer-valued governor pragmas routed to ``repro.resilience.configure``
    _RESILIENCE_INT_PRAGMAS = frozenset(
        {
            "timeout_ms",
            "memory_budget_kb",
            "degrade",
            "degrade_rows",
            "max_retries",
            "fault_seed",
        }
    )

    def _execute_pragma(self, body: str) -> Table | int:
        """``PRAGMA <name>[=<value>]``: parallel-execution and governor knobs.

        The set form returns 0 (like DDL); the read form returns a
        one-row table with the current setting.  ``PRAGMA faults`` is the
        one string-valued pragma (a fault-injection spec, or ``off``);
        everything else takes an integer.
        """
        from repro import resilience
        from repro.engine import parallel

        name, _, value = body.partition("=")
        name = name.strip().lower()
        value = value.strip()
        parallel_knobs = {"threads", "morsel_rows", "min_parallel_rows"}
        scanopt_knobs = {
            "dict_encode",
            "zone_rows",
            "plan_cache",
            "plan_cache_size",
            "optimizer",
        }
        if name in scanopt_knobs:
            if value:
                try:
                    parsed = int(value)
                except ValueError:
                    raise CatalogError(
                        f"PRAGMA {name} expects an integer, got {value!r}"
                    ) from None
                try:
                    scanopt.configure(**{name: parsed})
                except ValueError as exc:
                    raise CatalogError(str(exc)) from None
                if name == "dict_encode" and parsed:
                    # encode tables registered while the knob was off
                    for table in self._tables.values():
                        self._encode_strings(table)
                return 0
            current = getattr(scanopt.get_config(), name)
            return Table.from_rows([(name, int(current))], ["pragma", "value"])
        if name == "faults":
            if value:
                try:
                    resilience.configure(faults=value.strip("'\"").strip())
                except ValueError as exc:
                    raise CatalogError(str(exc)) from None
                return 0
            current = resilience.get_config().faults or "off"
            return Table.from_rows([(name, current)], ["pragma", "value"])
        if name in self._RESILIENCE_INT_PRAGMAS:
            if value:
                try:
                    parsed = int(value)
                except ValueError:
                    raise CatalogError(
                        f"PRAGMA {name} expects an integer, got {value!r}"
                    ) from None
                try:
                    resilience.configure(**{name: parsed})
                except ValueError as exc:
                    raise CatalogError(str(exc)) from None
                return 0
            current = getattr(resilience.get_config(), name)
            return Table.from_rows([(name, int(current))], ["pragma", "value"])
        if name not in parallel_knobs:
            known = sorted(
                parallel_knobs
                | scanopt_knobs
                | self._RESILIENCE_INT_PRAGMAS
                | {"faults"}
            )
            raise CatalogError(f"unknown pragma {name!r}; expected one of {known}")
        if value:
            try:
                parsed = int(value)
            except ValueError:
                raise CatalogError(f"PRAGMA {name} expects an integer, got {value!r}") from None
            try:
                parallel.configure(**{name: parsed})
            except ValueError as exc:
                raise CatalogError(str(exc)) from None
            return 0
        config = parallel.get_config()
        return Table.from_rows([(name, getattr(config, name))], ["pragma", "value"])

    def _execute_explain(self, statement, statement_sql: str) -> Table:
        """EXPLAIN [ANALYZE]: the plan (and measurements) as a one-column
        table of report lines, the way conventional engines present it."""
        import re

        from repro.engine.column import Column
        from repro.engine.types import DataType

        if statement.analyze:
            # route through the plan-cache-aware path (keyed on the inner
            # SELECT text) so repeat EXPLAIN ANALYZE skips planning too
            inner = re.sub(
                r"^\s*EXPLAIN\s+ANALYZE\s+", "", statement_sql, flags=re.IGNORECASE
            )
            lines = self.explain_analyze(inner).lines()
        else:
            plan = plan_statement(statement.statement, self)
            if scanopt.get_config().optimizer:
                optimize_plan(plan, self)
            lines = plan.explain().split("\n")
            lines.extend(f"note: {note}" for note in plan.notes)
        return Table([("plan", Column(lines, dtype=DataType.STRING))])

    def _execute_insert(self, statement) -> int:
        from repro.engine.column import Column
        from repro.engine.expressions import Literal

        table = self.get_table(statement.table)
        names = statement.columns or list(table.column_names)
        unknown = set(names) - set(table.column_names)
        if unknown:
            raise CatalogError(f"unknown column(s) in INSERT: {sorted(unknown)}")
        new_rows: list[dict[str, Any]] = []
        for row in statement.rows:
            if len(row) != len(names):
                raise CatalogError(
                    f"INSERT row width {len(row)} does not match {len(names)} columns"
                )
            values: dict[str, Any] = {}
            for name, expr in zip(names, row):
                if not isinstance(expr, Literal):
                    raise CatalogError("INSERT VALUES must be literals")
                values[name] = expr.value
            new_rows.append(values)
        columns = []
        for name in table.column_names:
            existing = table.column(name)
            appended = [row.get(name) for row in new_rows]
            columns.append(
                (name, existing.concat(Column(appended, dtype=existing.dtype)))
            )
        self.replace_table(statement.table, Table(columns))
        return len(new_rows)

    def _execute_delete(self, statement) -> int:
        from repro.engine.expressions import truth_mask

        table = self.get_table(statement.table)
        if statement.where is None:
            affected = table.num_rows
            self.replace_table(statement.table, table.slice(0, 0))
            return affected
        mask = truth_mask(statement.where, table)
        affected = int(mask.sum())
        self.replace_table(statement.table, table.filter(~mask))
        return affected

    def _execute_update(self, statement) -> int:
        from repro.engine.column import Column
        from repro.engine.expressions import truth_mask

        table = self.get_table(statement.table)
        mask = (
            truth_mask(statement.where, table)
            if statement.where is not None
            else np.ones(table.num_rows, dtype=bool)
        )
        affected = int(mask.sum())
        result = table
        for column_name, expr in statement.assignments:
            if column_name not in table.schema:
                raise CatalogError(f"unknown column {column_name!r} in UPDATE")
            new_values = expr.evaluate(table)
            old = result.column(column_name)
            merged = [
                new_values[i] if mask[i] else old[i] for i in range(table.num_rows)
            ]
            result = result.with_column(
                column_name, Column(merged, dtype=old.dtype)
            )
        self.replace_table(statement.table, result)
        return affected

_TYPE_WORDS = {
    "INT": "INT64", "INTEGER": "INT64", "BIGINT": "INT64",
    "FLOAT": "FLOAT64", "DOUBLE": "FLOAT64", "REAL": "FLOAT64",
    "TEXT": "STRING", "STRING": "STRING", "VARCHAR": "STRING",
    "BOOL": "BOOL", "BOOLEAN": "BOOL",
}


def _empty_table(columns: list[tuple[str, str]]) -> Table:
    """An empty Table from CREATE TABLE (name, type word) pairs."""
    from repro.engine.column import Column
    from repro.engine.types import DataType

    built = []
    for name, type_word in columns:
        if type_word not in _TYPE_WORDS:
            raise CatalogError(f"unknown column type {type_word!r}")
        built.append((name, Column.empty(DataType[_TYPE_WORDS[type_word]])))
    return Table(built)
