"""Logical planning: name binding, rewrites, and index selection.

The planner turns a parsed :class:`~repro.engine.sql.ast.SelectStatement`
into a tree of plan nodes.  Rewrites applied, in order:

1. **Name binding** — qualified references (``t.col``) are resolved against
   the FROM/JOIN tables; right-side join columns that clash with left names
   are renamed ``right_<name>`` to match the executor's join output.
2. **Predicate splitting and pushdown** — the WHERE clause is split into
   conjuncts; conjuncts that reference only base-table columns are pushed
   into the scan so they can use an index.
3. **Index selection** — a pushed conjunct of the form ``col < c``,
   ``col BETWEEN a AND b`` or ``col = c`` on a column with a registered
   index becomes an index range probe instead of a full scan filter.

The paper's Database Layer section (adaptive indexing) plugs in exactly at
step 3: cracker indexes register themselves with the catalog and the scan
consults them, refining them as a side effect of query processing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.engine import expressions as ex
from repro.engine.sql.ast import (
    AggregateCall,
    JoinClause,
    OrderItem,
    SelectItem,
    SelectStatement,
)
from repro.errors import BindError

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.catalog import Database


# -- plan nodes -------------------------------------------------------------------------


@dataclass
class RangeProbe:
    """A single-column range usable by an ordered/adaptive index.

    ``low``/``high`` of None mean unbounded on that side.  Bounds are
    half-open or closed per the ``*_inclusive`` flags.
    """

    column: str
    low: Any = None
    high: Any = None
    low_inclusive: bool = True
    high_inclusive: bool = True

    def describe(self) -> str:
        """Human-readable rendering used by EXPLAIN."""
        lo = "-inf" if self.low is None else repr(self.low)
        hi = "+inf" if self.high is None else repr(self.high)
        lb = "[" if self.low_inclusive else "("
        rb = "]" if self.high_inclusive else ")"
        return f"{self.column} in {lb}{lo}, {hi}{rb}"


@dataclass
class PlanNode:
    """Base class for logical plan nodes."""

    def children(self) -> list["PlanNode"]:
        """Child nodes, outermost first."""
        return []

    def label(self) -> str:
        """One-line description used by EXPLAIN."""
        return type(self).__name__


@dataclass
class ScanNode(PlanNode):
    """Scan a base table, optionally through an index probe and a residual
    filter predicate.

    The optimizer may additionally set ``columns`` (projection pruning:
    only the named columns are materialised) and ``empty`` (a provably
    contradictory predicate: the scan returns no rows, but the predicate
    is kept and type-checked against an empty slice so dtype errors
    surface exactly as an unoptimized scan would raise them).
    """

    table: str
    predicate: ex.Expression | None = None
    probe: RangeProbe | None = None
    columns: list[str] | None = None
    empty: bool = False

    def label(self) -> str:
        parts = [f"Scan({self.table}"]
        if self.empty:
            parts.append(", empty")
        if self.probe is not None:
            parts.append(f", index: {self.probe.describe()}")
        if self.predicate is not None:
            parts.append(f", filter: {self.predicate.to_sql()}")
        if self.columns is not None:
            parts.append(f", columns: [{', '.join(self.columns)}]")
        return "".join(parts) + ")"


@dataclass
class JoinNode(PlanNode):
    """Hash equi-join of a child plan with a base table.

    The optimizer may set ``right_predicate`` (an inner-join filter pushed
    below the join, phrased in the right table's own column names) and
    ``right_columns`` (projection pruning of the right input).
    """

    child: PlanNode
    clause: JoinClause
    right_predicate: ex.Expression | None = None
    right_columns: list[str] | None = None

    def children(self) -> list[PlanNode]:
        return [self.child]

    def label(self) -> str:
        parts = [
            f"HashJoin({self.clause.kind}, {self.clause.table}, "
            f"{self.clause.left_column} = {self.clause.right_column}"
        ]
        if self.right_predicate is not None:
            parts.append(f", right filter: {self.right_predicate.to_sql()}")
        if self.right_columns is not None:
            parts.append(f", right columns: [{', '.join(self.right_columns)}]")
        return "".join(parts) + ")"


@dataclass
class FilterNode(PlanNode):
    """Residual filter above joins."""

    child: PlanNode
    predicate: ex.Expression

    def children(self) -> list[PlanNode]:
        return [self.child]

    def label(self) -> str:
        return f"Filter({self.predicate.to_sql()})"


@dataclass
class AggregateNode(PlanNode):
    """Hash aggregation with optional grouping."""

    child: PlanNode
    group_exprs: list[ex.Expression]
    group_names: list[str]
    aggregates: list[tuple[str, AggregateCall]]

    def children(self) -> list[PlanNode]:
        return [self.child]

    def label(self) -> str:
        keys = ", ".join(self.group_names) or "<global>"
        aggs = ", ".join(f"{n}={c.to_sql()}" for n, c in self.aggregates)
        return f"Aggregate(keys: {keys}; aggs: {aggs})"


@dataclass
class FusedAggregateNode(AggregateNode):
    """Filter+aggregate fused into one per-morsel pipeline.

    Produced by the optimizer from ``Aggregate -> Scan(filter)``: the
    executor evaluates the scan predicate and the partial aggregation
    morsel by morsel without materialising the filtered table in between,
    consulting the zone map to skip FAIL zones and wholesale-accept PASS
    zones.  Subclasses :class:`AggregateNode` (same fields, ``child`` is
    the :class:`ScanNode`) so shape-based consumers — graceful
    degradation in particular — treat it as the aggregate it is.
    """

    def label(self) -> str:
        keys = ", ".join(self.group_names) or "<global>"
        aggs = ", ".join(f"{n}={c.to_sql()}" for n, c in self.aggregates)
        return f"FusedAggregate(keys: {keys}; aggs: {aggs})"


@dataclass
class ProjectNode(PlanNode):
    """Evaluate a non-aggregate select list."""

    child: PlanNode
    items: list[SelectItem]

    def children(self) -> list[PlanNode]:
        return [self.child]

    def label(self) -> str:
        return "Project(" + ", ".join(i.to_sql() for i in self.items) + ")"


@dataclass
class DistinctNode(PlanNode):
    """SELECT DISTINCT: drop duplicate output rows (first wins)."""

    child: PlanNode

    def children(self) -> list[PlanNode]:
        return [self.child]

    def label(self) -> str:
        return "Distinct"


@dataclass
class SortNode(PlanNode):
    """ORDER BY."""

    child: PlanNode
    order_by: list[OrderItem]

    def children(self) -> list[PlanNode]:
        return [self.child]

    def label(self) -> str:
        return "Sort(" + ", ".join(o.to_sql() for o in self.order_by) + ")"


@dataclass
class LimitNode(PlanNode):
    """LIMIT."""

    child: PlanNode
    count: int

    def children(self) -> list[PlanNode]:
        return [self.child]

    def label(self) -> str:
        return f"Limit({self.count})"


@dataclass
class Plan:
    """A complete logical plan plus planning metadata."""

    root: PlanNode
    statement: SelectStatement
    notes: list[str] = field(default_factory=list)

    def explain(self) -> str:
        """Indented textual rendering of the plan tree."""
        lines: list[str] = []

        def walk(node: PlanNode, depth: int) -> None:
            lines.append("  " * depth + node.label())
            for child in node.children():
                walk(child, depth + 1)

        walk(self.root, 0)
        return "\n".join(lines)


# -- planning ----------------------------------------------------------------------------


def plan_statement(statement: SelectStatement, database: "Database") -> Plan:
    """Bind and plan a SELECT statement against ``database``."""
    notes: list[str] = []
    binder = _Binder(statement, database)
    statement = binder.bind()

    conjuncts = split_conjuncts(statement.where) if statement.where is not None else []
    base_columns = set(database.main_table(statement.table).column_names)

    pushed: list[ex.Expression] = []
    residual: list[ex.Expression] = []
    if statement.joins:
        for conj in conjuncts:
            if conj.referenced_columns() <= base_columns:
                pushed.append(conj)
            else:
                residual.append(conj)
    else:
        pushed = conjuncts

    probe, remaining = _select_index(pushed, statement.table, database)
    if probe is not None:
        notes.append(f"index probe on {probe.describe()}")

    node: PlanNode = ScanNode(
        table=statement.table,
        predicate=_conjoin(remaining),
        probe=probe,
    )
    for clause in statement.joins:
        node = JoinNode(child=node, clause=clause)
    residual_pred = _conjoin(residual)
    if residual_pred is not None:
        node = FilterNode(child=node, predicate=residual_pred)

    if statement.is_aggregate:
        group_names = [
            _group_output_name(expr, statement.items) for expr in statement.group_by
        ]
        aggregates = statement.aggregates() + statement.having_aggregates
        node = AggregateNode(
            child=node,
            group_exprs=list(statement.group_by),
            group_names=group_names,
            aggregates=aggregates,
        )
        if statement.having is not None:
            node = FilterNode(child=node, predicate=statement.having)
        if statement.order_by:
            node = SortNode(child=node, order_by=list(statement.order_by))
        # project away synthetic HAVING columns and order the output
        wanted = [i.output_name() for i in statement.items if not i.star]
        keep = wanted or group_names
        if keep:
            node = ProjectNode(
                child=node,
                items=[SelectItem(expression=ex.ColumnRef(n), alias=n) for n in keep],
            )
    else:
        output_names = {
            i.output_name() for i in statement.items if not i.star
        }
        sort_uses_aliases = statement.order_by and all(
            o.expression.referenced_columns() <= output_names for o in statement.order_by
        )
        if statement.order_by and not sort_uses_aliases:
            node = SortNode(child=node, order_by=list(statement.order_by))
        node = ProjectNode(child=node, items=list(statement.items))
        if statement.distinct:
            node = DistinctNode(child=node)
        if statement.order_by and sort_uses_aliases:
            node = SortNode(child=node, order_by=list(statement.order_by))
    if statement.limit is not None:
        node = LimitNode(child=node, count=statement.limit)

    return Plan(root=node, statement=statement, notes=notes)


def _group_output_name(expr: ex.Expression, items: list[SelectItem]) -> str:
    """Output column name for a group key, honouring select-list aliases.

    Matching must go through :meth:`~repro.engine.expressions.Expression.same_as`
    (never ``==`` or ``in``, which build comparison nodes instead of
    answering membership).
    """
    for item in items:
        if item.expression is not None and item.expression.same_as(expr):
            return item.output_name()
    return ex.strip_outer_parens(expr.to_sql())


def split_conjuncts(predicate: ex.Expression) -> list[ex.Expression]:
    """Flatten nested ANDs into a conjunct list."""
    if isinstance(predicate, ex.And):
        return split_conjuncts(predicate.left) + split_conjuncts(predicate.right)
    return [predicate]


def _conjoin(conjuncts: list[ex.Expression]) -> ex.Expression | None:
    """Rebuild a single predicate from conjuncts (None when empty)."""
    if not conjuncts:
        return None
    result = conjuncts[0]
    for conj in conjuncts[1:]:
        result = ex.And(result, conj)
    return result


def _select_index(
    conjuncts: list[ex.Expression], table: str, database: "Database"
) -> tuple[RangeProbe | None, list[ex.Expression]]:
    """Pick at most one indexable conjunct; return the probe + the rest."""
    for i, conj in enumerate(conjuncts):
        probe = extract_probe(conj)
        if probe is None:
            continue
        if database.index_for(table, probe.column) is None:
            continue
        remaining = conjuncts[:i] + conjuncts[i + 1 :]
        return probe, remaining
    return None, conjuncts


def extract_probe(
    conj: ex.Expression, allow_strings: bool = False
) -> RangeProbe | None:
    """Recognise ``col <op> literal`` / ``literal <op> col`` / BETWEEN shapes.

    Returns None for anything else — including NULL or NaN literals, which
    no range can represent, and (unless ``allow_strings``) string
    literals, which ordered numeric indexes cannot probe.  Also used by
    zone-map pruning to read range conjuncts off a scan predicate.
    """
    if isinstance(conj, ex.And):
        left = extract_probe(conj.left, allow_strings)
        right = extract_probe(conj.right, allow_strings)
        if left is not None and right is not None and left.column == right.column:
            return intersect_probes(left, right)
        return None
    if not isinstance(conj, ex.Comparison):
        return None
    left, right, op = conj.left, conj.right, conj.op
    if isinstance(left, ex.Literal) and isinstance(right, ex.ColumnRef):
        flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "<>": "<>"}
        left, right, op = right, left, flipped[op]
    if not (isinstance(left, ex.ColumnRef) and isinstance(right, ex.Literal)):
        return None
    value = right.value
    if value is None:
        return None
    if isinstance(value, str) and not allow_strings:
        return None
    if isinstance(value, float) and value != value:  # NaN bounds prove nothing
        return None
    name = left.name
    if op == "=":
        return RangeProbe(column=name, low=value, high=value)
    if op == "<":
        return RangeProbe(column=name, high=value, high_inclusive=False)
    if op == "<=":
        return RangeProbe(column=name, high=value)
    if op == ">":
        return RangeProbe(column=name, low=value, low_inclusive=False)
    if op == ">=":
        return RangeProbe(column=name, low=value)
    return None


def intersect_probes(left: RangeProbe, right: RangeProbe) -> RangeProbe | None:
    """Intersect two range probes on the same column.

    Bounds are tightened towards the narrower range.  When two bounds are
    *equal* the exclusive flag wins: ``x >= 5 AND x > 5`` admits 5 only
    through the inclusive conjunct, but the conjunction as a whole excludes
    it, so the merged probe must be exclusive at 5 (a strict max/min over
    the bound values alone would keep whichever inclusivity came first).
    Returns None when the bounds are not mutually orderable (mixed
    str/numeric conjuncts prove nothing about a single column).
    """
    if left.column != right.column:
        return None
    merged = RangeProbe(column=left.column)
    try:
        for part in (left, right):
            if part.low is not None:
                if merged.low is None or part.low > merged.low:
                    merged.low = part.low
                    merged.low_inclusive = part.low_inclusive
                elif part.low == merged.low and not part.low_inclusive:
                    merged.low_inclusive = False
            if part.high is not None:
                if merged.high is None or part.high < merged.high:
                    merged.high = part.high
                    merged.high_inclusive = part.high_inclusive
                elif part.high == merged.high and not part.high_inclusive:
                    merged.high_inclusive = False
    except TypeError:
        # mixed str/numeric bounds are not orderable; no probe
        return None
    return merged


def probe_is_empty(probe: RangeProbe) -> bool:
    """True when no value can satisfy the probe's range."""
    if probe.low is None or probe.high is None:
        return False
    try:
        if probe.low > probe.high:
            return True
        if probe.low == probe.high:
            return not (probe.low_inclusive and probe.high_inclusive)
    except TypeError:
        return False
    return False


# -- binding ----------------------------------------------------------------------------


class _Binder:
    """Resolves qualified column names against the FROM/JOIN tables."""

    def __init__(self, statement: SelectStatement, database: "Database") -> None:
        self._statement = statement
        self._database = database
        base = database.main_table(statement.table)
        self._base_columns = set(base.column_names)
        self._join_columns: dict[str, set[str]] = {}
        for clause in statement.joins:
            join_table = database.main_table(clause.table)
            self._join_columns[clause.table] = set(join_table.column_names)

    def bind(self) -> SelectStatement:
        """Rewrite all name references in place and return the statement."""
        stmt = self._statement
        for clause in stmt.joins:
            self._bind_join(clause)
        for item in stmt.items:
            if item.expression is not None:
                self._bind_expr(item.expression)
            if item.aggregate is not None and item.aggregate.argument is not None:
                self._bind_expr(item.aggregate.argument)
        if stmt.where is not None:
            self._bind_expr(stmt.where)
        for expr in stmt.group_by:
            self._bind_expr(expr)
        if stmt.having is not None:
            self._bind_expr(stmt.having)
        for _, call in stmt.having_aggregates:
            if call.argument is not None:
                self._bind_expr(call.argument)
        for order in stmt.order_by:
            self._bind_order_expr(order)
        return stmt

    def _bind_expr(self, expr: ex.Expression) -> None:
        if isinstance(expr, ex.ColumnRef):
            expr.name = self._resolve(expr.name, in_join_output=True)
            return
        for attr in ("left", "right", "operand"):
            child = getattr(expr, attr, None)
            if isinstance(child, ex.Expression):
                self._bind_expr(child)
        options = getattr(expr, "options", None)
        if options:
            for option in options:
                self._bind_expr(option)

    def _bind_order_expr(self, order: OrderItem) -> None:
        # ORDER BY may reference select-list aliases; leave those alone.
        expr = order.expression
        if isinstance(expr, ex.ColumnRef):
            aliases = {i.output_name() for i in self._statement.items if not i.star}
            if expr.name in aliases:
                return
        self._bind_expr(expr)

    def _resolve(self, name: str, in_join_output: bool) -> str:
        if "." not in name:
            return name
        qualifier, column = name.split(".", 1)
        if qualifier == self._statement.table:
            if column not in self._base_columns:
                raise BindError(f"table {qualifier!r} has no column {column!r}")
            return column
        if qualifier in self._join_columns:
            if column not in self._join_columns[qualifier]:
                raise BindError(f"table {qualifier!r} has no column {column!r}")
            if in_join_output and column in self._base_columns:
                return f"right_{column}"
            return column
        raise BindError(f"unknown table qualifier {qualifier!r} in {name!r}")

    def _bind_join(self, clause: JoinClause) -> None:
        """Normalise an ON clause so left_column is on the probe side and
        right_column belongs to the joined table."""

        def side_of(name: str) -> tuple[str, str]:
            """Return ('left'|'right', bare_column) for one ON operand."""
            if "." in name:
                qualifier, column = name.split(".", 1)
                if qualifier == clause.table:
                    if column not in self._join_columns[clause.table]:
                        raise BindError(f"table {qualifier!r} has no column {column!r}")
                    return "right", column
                if qualifier == self._statement.table:
                    if column not in self._base_columns:
                        raise BindError(f"table {qualifier!r} has no column {column!r}")
                    return "left", column
                if qualifier in self._join_columns:
                    return "left", column  # an earlier join's table
                raise BindError(f"unknown table qualifier {qualifier!r} in {name!r}")
            if name in self._join_columns[clause.table]:
                return "right", name
            return "left", name

        left_side, left_col = side_of(clause.left_column)
        right_side, right_col = side_of(clause.right_column)
        if left_side == right_side:
            side = (
                f"joined table {clause.table!r}"
                if left_side == "right"
                else "left input"
            )
            raise BindError(
                f"ambiguous join condition {clause.to_sql()!r}: both operands "
                f"resolve to the {side}; qualify each side of the ON clause "
                f"with its table name"
            )
        if left_side == "right":
            left_col, right_col = right_col, left_col
        clause.left_column, clause.right_column = left_col, right_col
