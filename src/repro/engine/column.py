"""NumPy-backed columns with out-of-band null masks.

A :class:`Column` is the unit of storage in the engine: a dense payload
array plus an optional boolean validity mask (True = valid).  Columns are
treated as immutable by the query layer; all operations return new columns.
"""

from __future__ import annotations

from typing import Any, Iterator, Sequence

import numpy as np

from repro.engine.types import DataType, coerce_array, infer_type, python_value
from repro.errors import TypeMismatchError


class Column:
    """An immutable typed column of values with optional nulls.

    STRING columns may additionally carry a *dictionary encoding*: an
    int32 code per row (−1 in null slots) indexing a sorted array of
    distinct values.  Codes are order-isomorphic to the strings they
    stand for, so comparisons, DISTINCT, group keys and sort keys can
    operate on the codes without materialising Python strings.  The
    encoding is a cache — it never changes the column's logical value —
    and is propagated for free through ``take``/``filter``/``slice``.

    Args:
        values: payload values; ``None`` entries become nulls.
        dtype: logical type; inferred from the data when omitted.
        validity: boolean mask, True where the value is valid.  When omitted
            it is derived from ``None`` entries in ``values``.
    """

    __slots__ = ("_data", "_validity", "_dtype", "_codes", "_dict", "_backing")

    def __init__(
        self,
        values: Sequence[Any] | np.ndarray,
        dtype: DataType | None = None,
        validity: np.ndarray | None = None,
    ) -> None:
        values_list: Sequence[Any] | np.ndarray
        if isinstance(values, np.ndarray) and values.dtype != object:
            values_list = values
            inferred_validity = None
        else:
            values_list = list(values)
            # Fast path for lists of plain numbers/bools: one vectorised
            # conversion instead of a per-element scan.  A list containing
            # None (or strings/mixed kinds) lands on object/str dtype and
            # falls through to the general per-element path below.
            fast = None
            if dtype is None or dtype is not DataType.STRING:
                try:
                    candidate = np.asarray(values_list)
                except (ValueError, TypeError, OverflowError):
                    candidate = None
                if (
                    candidate is not None
                    and candidate.ndim == 1
                    and candidate.dtype.kind in "biuf"
                ):
                    fast = candidate
            if fast is not None:
                values_list = fast
                inferred_validity = None
            else:
                has_null = any(v is None for v in values_list)
                if has_null:
                    inferred_validity = np.array(
                        [v is not None for v in values_list], dtype=bool
                    )
                else:
                    inferred_validity = None

        if dtype is None:
            non_null = (
                [v for v in values_list if v is not None]
                if inferred_validity is not None
                else values_list
            )
            if len(non_null) == 0:
                dtype = DataType.FLOAT64
            else:
                dtype = infer_type(non_null)

        if inferred_validity is not None:
            fill = _null_fill_value(dtype)
            filled = [fill if v is None else v for v in values_list]
            data = coerce_array(filled, dtype)
        else:
            data = coerce_array(values_list, dtype)

        if validity is None:
            validity = inferred_validity
        elif validity.dtype != bool or len(validity) != len(data):
            raise TypeMismatchError("validity mask must be a bool array matching the data length")
        if validity is not None and bool(validity.all()):
            validity = None

        self._data = data
        self._validity = validity
        self._dtype = dtype
        self._codes = None
        self._dict = None
        self._backing = None

    # -- dictionary encoding ---------------------------------------------------

    def dictionary(self) -> tuple[np.ndarray, np.ndarray] | None:
        """The ``(codes, values)`` dictionary view, or None when unencoded.

        ``codes`` is an int32 array aligned with the column (−1 in null
        slots); ``values`` is the sorted object array of distinct payload
        strings, so ``values[codes[i]]`` reproduces row ``i`` and code
        order equals string order.
        """
        if self._codes is None:
            return None
        return self._codes, self._dict

    def encode_dictionary(self) -> bool:
        """Build (and cache) the dictionary encoding of a STRING column.

        Returns True when an encoding is present afterwards.  Non-STRING
        columns, and pathological payloads that fail to sort, are left
        unencoded — the encoding is an optimisation, never a requirement.
        """
        if self._codes is not None:
            return True
        if self._dtype is not DataType.STRING:
            return False
        data = self._data
        if self._validity is not None:
            # null slots may hold None payloads; park a harmless string
            # there so np.unique can sort the array.
            data = data.copy()
            data[~self._validity] = ""
        try:
            values, inverse = np.unique(data, return_inverse=True)
        except TypeError:
            return False
        codes = inverse.astype(np.int32).reshape(-1)
        if self._validity is not None:
            codes[~self._validity] = -1
        self._codes = codes
        self._dict = values
        return True

    # -- construction helpers -------------------------------------------------

    @classmethod
    def from_numpy(cls, array: np.ndarray, dtype: DataType | None = None) -> "Column":
        """Wrap an existing NumPy array (no copy for non-object dtypes)."""
        return cls(array, dtype=dtype)

    @classmethod
    def empty(cls, dtype: DataType) -> "Column":
        """An empty column of the given type."""
        return cls(np.empty(0, dtype=dtype.numpy_dtype), dtype=dtype)

    # -- basic accessors -------------------------------------------------------

    @property
    def dtype(self) -> DataType:
        """Logical type of the column."""
        return self._dtype

    @property
    def data(self) -> np.ndarray:
        """The dense payload array.  Null slots hold an arbitrary fill value."""
        return self._data

    @property
    def validity(self) -> np.ndarray | None:
        """Boolean validity mask, or None when every value is valid."""
        return self._validity

    @property
    def backing(self):
        """The on-disk :class:`~repro.storage.layouts.ColumnBacking`, or None.

        Only set by the storage layer when this exact column was opened
        as memory-mapped part files; derived columns (slices, filters,
        concats) never carry a backing, so a non-None backing guarantees
        the column's logical content equals the file bytes.
        """
        return self._backing

    @property
    def is_mapped(self) -> bool:
        """True when the column is an mmap view over checkpoint files."""
        return self._backing is not None

    @property
    def has_nulls(self) -> bool:
        """True if the column contains at least one null."""
        return self._validity is not None and not bool(self._validity.all())

    def null_count(self) -> int:
        """Number of null values."""
        if self._validity is None:
            return 0
        return int((~self._validity).sum())

    def __len__(self) -> int:
        return len(self._data)

    def __getitem__(self, index: int) -> Any:
        """Value at ``index`` as a native Python value, or None for null."""
        if self._validity is not None and not self._validity[index]:
            return None
        return python_value(self._data[index])

    def __iter__(self) -> Iterator[Any]:
        for i in range(len(self)):
            yield self[i]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Column):
            return NotImplemented
        return (
            self._dtype == other._dtype
            and len(self) == len(other)
            and all(a == b for a, b in zip(self, other))
        )

    def __hash__(self) -> int:  # pragma: no cover - columns are not hashable
        raise TypeError("Column objects are not hashable")

    def __repr__(self) -> str:
        preview = ", ".join(repr(v) for v in list(self)[:6])
        suffix = ", ..." if len(self) > 6 else ""
        return f"Column<{self._dtype.name}>[{preview}{suffix}] (n={len(self)})"

    # -- vectorised operations -------------------------------------------------

    def to_list(self) -> list[Any]:
        """Materialise as a Python list (nulls become None)."""
        return list(self)

    def valid_data(self) -> np.ndarray:
        """Payload restricted to valid (non-null) slots."""
        if self._validity is None:
            return self._data
        return self._data[self._validity]

    def take(self, indices: np.ndarray) -> "Column":
        """Gather rows by position."""
        data = self._data[indices]
        validity = self._validity[indices] if self._validity is not None else None
        codes = self._codes[indices] if self._codes is not None else None
        return _wrap(data, self._dtype, validity, codes, self._dict)

    def filter(self, mask: np.ndarray) -> "Column":
        """Keep rows where ``mask`` is True."""
        data = self._data[mask]
        validity = self._validity[mask] if self._validity is not None else None
        codes = self._codes[mask] if self._codes is not None else None
        return _wrap(data, self._dtype, validity, codes, self._dict)

    def slice(self, start: int, stop: int) -> "Column":
        """Contiguous row range ``[start, stop)``."""
        data = self._data[start:stop]
        validity = self._validity[start:stop] if self._validity is not None else None
        codes = self._codes[start:stop] if self._codes is not None else None
        return _wrap(data, self._dtype, validity, codes, self._dict)

    def is_null_mask(self) -> np.ndarray:
        """Boolean array, True where the value is null."""
        if self._validity is None:
            return np.zeros(len(self), dtype=bool)
        return ~self._validity

    def concat(self, other: "Column") -> "Column":
        """Append ``other`` (same logical type) after this column."""
        if other.dtype != self._dtype:
            raise TypeMismatchError(
                f"cannot concat {other.dtype.name} column onto {self._dtype.name}"
            )
        data = np.concatenate([self._data, other._data])
        if self._validity is None and other._validity is None:
            validity = None
        else:
            left = self._validity if self._validity is not None else np.ones(len(self), bool)
            right = other._validity if other._validity is not None else np.ones(len(other), bool)
            validity = np.concatenate([left, right])
        return _wrap(data, self._dtype, validity)

    # -- statistics -------------------------------------------------------------

    def min(self) -> Any:
        """Minimum valid value, or None for an all-null/empty column."""
        valid = self.valid_data()
        if len(valid) == 0:
            return None
        if valid.dtype.kind == "U":
            # numpy's minimum ufunc has no loop for fixed-width unicode
            # (mapped string payloads); builtin min compares identically.
            return python_value(min(valid.tolist()))
        return python_value(valid.min())

    def max(self) -> Any:
        """Maximum valid value, or None for an all-null/empty column."""
        valid = self.valid_data()
        if len(valid) == 0:
            return None
        if valid.dtype.kind == "U":
            return python_value(max(valid.tolist()))
        return python_value(valid.max())

    def distinct_count(self) -> int:
        """Number of distinct valid values."""
        if self._codes is not None:
            valid_codes = (
                self._codes if self._validity is None else self._codes[self._validity]
            )
            return len(np.unique(valid_codes))
        valid = self.valid_data()
        if self._dtype is DataType.STRING:
            return len(set(valid))
        return len(np.unique(valid))


def _null_fill_value(dtype: DataType) -> Any:
    """A harmless payload value to park in null slots."""
    if dtype is DataType.STRING:
        return ""
    if dtype is DataType.BOOL:
        return False
    return 0


def _wrap(
    data: np.ndarray,
    dtype: DataType,
    validity: np.ndarray | None,
    codes: np.ndarray | None = None,
    dictionary: np.ndarray | None = None,
) -> Column:
    """Build a Column around prepared arrays without re-inference."""
    col = Column.__new__(Column)
    if validity is not None and bool(validity.all()):
        validity = None
    col._data = data
    col._validity = validity
    col._dtype = dtype
    col._codes = codes
    col._dict = dictionary
    col._backing = None
    return col


def column_from_parts(data: np.ndarray, dtype: DataType, validity: np.ndarray | None = None) -> Column:
    """Public wrapper for building a column from prepared arrays.

    Used by operators that compute payload and validity separately and want
    to avoid the inference cost of the main constructor.
    """
    return _wrap(data, dtype, validity)
