"""Morsel-driven parallel query execution.

Tables are split into fixed-size row *morsels* (Leis et al., SIGMOD'14)
and the data-parallel kernels — predicate evaluation, per-morsel
grouping for hash aggregation, per-morsel sorting — run across a shared
``concurrent.futures`` worker pool.  The kernels are numpy-heavy and
release the GIL, so the default pool is thread-based; an experimental
process pool sits behind ``pool_kind="process"`` for workloads that are
dominated by Python-level work.

Correctness contract: **serial and parallel execution produce
bit-identical results.**  Every kernel is organised so that the final
combining step performs exactly the arithmetic the serial operator would
have performed:

- filters evaluate the predicate mask per morsel and concatenate — mask
  evaluation is row-local, so the concatenated mask equals the serial
  mask bit for bit;
- aggregation computes partial states per morsel and merges them.
  COUNT/COUNT(x) partials are integer counts (addition is exact),
  MIN/MAX partials recombine by min/max (exact, NaN-propagating), and
  integer SUM partials recombine by addition.  Float SUM/AVG and
  DISTINCT aggregates keep *row-index* partials instead and evaluate the
  final aggregate over the merged group exactly like the serial
  operator, preserving numpy's pairwise-summation rounding;
- sorts sort each morsel with the serial multi-key routine and k-way
  merge the runs with a comparator that mirrors the serial null/ASC/DESC
  ordering; ties fall back to morsel order, which reproduces the serial
  stable sort.  Runs whose sort keys contain NaN fall back to the serial
  path (the serial DESC ordering of NaN runs is not reproducible by a
  stable merge).

Small inputs skip the pool entirely: below ``min_parallel_rows`` the
executor uses the serial operators, so interactive point queries never
pay the fan-out overhead.

The pool is also where the query governor's fine-grained checkpoints
live: every morsel task checks the active
:class:`~repro.resilience.QueryContext` before running, and the batch
loop re-checks after each completed morsel — so a deadline or a
cancellation surfaces within roughly one morsel's work.  Fault
tolerance is morsel-granular too: a worker exception (real or injected
via :mod:`repro.resilience.faults`) is retried *serially* on the
calling thread with bounded backoff instead of poisoning the query, and
a broken/unpicklable process pool falls back to the thread pool once.
Retries re-run exactly the kernel the worker would have run, so results
stay bit-identical to serial execution.
"""

from __future__ import annotations

import heapq
import itertools
import math
import os
import pickle
import threading
import time
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from functools import cmp_to_key
from typing import Any, Callable, Sequence

import numpy as np

from repro.engine import operators as ops
from repro.engine.column import Column
from repro.engine.expressions import Expression, strip_outer_parens, truth_mask
from repro.engine.sql.ast import AggregateCall, OrderItem
from repro.engine.table import Table
from repro.engine.types import DataType
from repro.errors import ExecutionError, ResourceError
from repro.obs.metrics import get_registry
from repro.obs.tracing import trace
from repro.resilience import (
    QueryContext,
    current_context,
    get_injector,
)
from repro.resilience import get_config as _resilience_config
from repro.resilience.faults import FaultInjector

DEFAULT_MORSEL_ROWS = 65_536


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, "") or default)
    except ValueError:
        return default


class ParallelConfig:
    """Tunables of the parallel executor (one process-wide instance).

    Attributes:
        threads: worker count; 0 or 1 means serial execution.
        morsel_rows: rows per morsel.
        min_parallel_rows: inputs smaller than this run serially.
        pool_kind: ``"thread"`` (default) or ``"process"`` (experimental;
            requires picklable plans and pays per-task serialisation).
    """

    __slots__ = ("threads", "morsel_rows", "min_parallel_rows", "pool_kind")

    def __init__(self) -> None:
        self.threads = max(0, _env_int("REPRO_THREADS", 0))
        self.morsel_rows = max(1, _env_int("REPRO_MORSEL_ROWS", DEFAULT_MORSEL_ROWS))
        self.min_parallel_rows = max(
            1, _env_int("REPRO_PARALLEL_MIN_ROWS", 2 * self.morsel_rows)
        )
        self.pool_kind = os.environ.get("REPRO_POOL", "thread")


_config = ParallelConfig()
_pool_lock = threading.Lock()
_pool: Executor | None = None
_pool_signature: tuple[int, str] | None = None


def get_config() -> ParallelConfig:
    """The process-wide parallel-execution configuration."""
    return _config


def configure(
    threads: int | None = None,
    morsel_rows: int | None = None,
    min_parallel_rows: int | None = None,
    pool_kind: str | None = None,
) -> ParallelConfig:
    """Update the parallel configuration; omitted fields keep their value.

    Setting ``morsel_rows`` without ``min_parallel_rows`` re-derives the
    serial-fallback threshold as ``2 * morsel_rows``.
    """
    if threads is not None:
        if threads < 0:
            raise ValueError("threads must be >= 0")
        _config.threads = threads
    if morsel_rows is not None:
        if morsel_rows < 1:
            raise ValueError("morsel_rows must be >= 1")
        _config.morsel_rows = morsel_rows
        if min_parallel_rows is None:
            _config.min_parallel_rows = 2 * morsel_rows
    if min_parallel_rows is not None:
        if min_parallel_rows < 1:
            raise ValueError("min_parallel_rows must be >= 1")
        _config.min_parallel_rows = min_parallel_rows
    if pool_kind is not None:
        if pool_kind not in ("thread", "process"):
            raise ValueError("pool_kind must be 'thread' or 'process'")
        _config.pool_kind = pool_kind
    return _config


def set_threads(n: int) -> None:
    """Set the worker count (0 or 1 = serial execution)."""
    configure(threads=n)


def get_threads() -> int:
    """The configured worker count."""
    return _config.threads


def should_parallelize(num_rows: int) -> bool:
    """True when an operator over ``num_rows`` rows should use the pool."""
    return _config.threads >= 2 and num_rows >= _config.min_parallel_rows


def shutdown_pool() -> None:
    """Tear down the shared worker pool (it is rebuilt lazily)."""
    global _pool, _pool_signature
    with _pool_lock:
        if _pool is not None:
            _pool.shutdown(wait=True)
        _pool = None
        _pool_signature = None


def _get_pool() -> Executor:
    """The shared executor, (re)built when threads/pool_kind change."""
    global _pool, _pool_signature
    signature = (_config.threads, _config.pool_kind)
    with _pool_lock:
        if _pool is None or _pool_signature != signature:
            if _pool is not None:
                _pool.shutdown(wait=True)
            if _config.pool_kind == "process":
                _pool = ProcessPoolExecutor(max_workers=_config.threads)
            else:
                _pool = ThreadPoolExecutor(
                    max_workers=_config.threads,
                    thread_name_prefix="repro-morsel",
                )
            _pool_signature = signature
        return _pool


def morsel_ranges(num_rows: int, morsel_rows: int | None = None) -> list[tuple[int, int]]:
    """Split ``[0, num_rows)`` into contiguous ``[start, stop)`` morsels."""
    size = morsel_rows if morsel_rows is not None else _config.morsel_rows
    if num_rows <= 0:
        return []
    return [(start, min(start + size, num_rows)) for start in range(0, num_rows, size)]


def morsel_count(num_rows: int) -> int:
    """Number of morsels the current configuration splits ``num_rows`` into."""
    return len(morsel_ranges(num_rows))


_batch_counter = itertools.count()


class _PoolFailure(Exception):
    """Internal: the pool itself (not a kernel) failed on a morsel."""

    def __init__(self, morsel: tuple[int, int], cause: BaseException) -> None:
        super().__init__(str(cause))
        self.morsel = morsel
        self.cause = cause


def _is_pool_failure(exc: BaseException) -> bool:
    """True for errors that indict the pool, not the kernel.

    A broken process pool, or (process mode only) a pickling failure
    while shipping the task/result across the process boundary.
    """
    if isinstance(exc, BrokenProcessPool):
        return True
    if _config.pool_kind != "process":
        return False
    return isinstance(exc, pickle.PicklingError) or "pickle" in str(exc).lower()


def _cancel(futures: Sequence[Any]) -> None:
    for future in futures:
        future.cancel()


def _run_tasks(fn: Callable[..., Any], arg_tuples: Sequence[tuple]) -> list[Any]:
    """Run ``fn(*args)`` for every tuple on the pool; results in order.

    Records the ``parallel.*`` metrics family: morsel and batch counts,
    the configured worker gauge, and batch wall time.  When the process
    pool itself breaks (worker death, pickling failure) the batch falls
    back to the thread pool once — a second failure surfaces as
    :class:`~repro.errors.ExecutionError` naming the offending morsel.
    """
    registry = get_registry()
    registry.counter("parallel.morsels").inc(len(arg_tuples))
    registry.counter("parallel.batches").inc()
    registry.gauge("parallel.workers").set(_config.threads)
    with registry.timer("parallel.batch_time").time():
        try:
            return _run_batch(fn, arg_tuples)
        except _PoolFailure as failure:
            if _config.pool_kind != "process":
                raise ExecutionError(
                    f"worker pool failed on morsel {failure.morsel[0]}:"
                    f"{failure.morsel[1]}: {failure.cause}"
                ) from failure.cause
            registry.counter("resilience.pool_fallbacks").inc()
            configure(pool_kind="thread")  # pool is rebuilt lazily
            try:
                return _run_batch(fn, arg_tuples)
            except _PoolFailure as second:
                raise ExecutionError(
                    f"worker pool failed on morsel {second.morsel[0]}:"
                    f"{second.morsel[1]} even after thread-pool fallback: "
                    f"{second.cause}"
                ) from second.cause


def _run_batch(fn: Callable[..., Any], arg_tuples: Sequence[tuple]) -> list[Any]:
    """Submit one batch and collect results, enforcing the governor.

    The active :class:`~repro.resilience.QueryContext` is re-checked
    after every completed morsel, so a deadline/cancellation aborts the
    batch within roughly one morsel's work.  Kernel exceptions are
    retried serially; pool-level failures raise :class:`_PoolFailure`.
    """
    ctx = current_context()
    injector = get_injector()
    if _config.pool_kind == "process":
        # the query context holds thread-locals and events that cannot
        # cross the process boundary; the collection loop below still
        # enforces the governor between morsels.  The injector is pure
        # value state (spec + seed; decisions hash the morsel key), so
        # it ships with each task and faults fire in the workers exactly
        # as they would on the thread pool.
        task_ctx: QueryContext | None = None
        task_injector: FaultInjector | None = injector
    else:
        task_ctx, task_injector = ctx, injector
    batch = next(_batch_counter)
    pool = _get_pool()
    futures: list[Any] = []
    try:
        for i, args in enumerate(arg_tuples):
            futures.append(
                pool.submit(_traced_task, fn, args, task_ctx, task_injector, (batch, i))
            )
    except BrokenProcessPool as exc:
        _cancel(futures)
        raise _PoolFailure((batch, len(futures)), exc) from exc
    results: list[Any] = [None] * len(futures)
    for i, future in enumerate(futures):
        try:
            results[i] = future.result()
        except ResourceError:
            _cancel(futures[i + 1 :])
            raise
        except Exception as exc:
            if _is_pool_failure(exc):
                _cancel(futures[i + 1 :])
                raise _PoolFailure((batch, i), exc) from exc
            results[i] = _retry_morsel_serially(fn, arg_tuples[i], (batch, i), exc)
        if ctx is not None:
            try:
                ctx.check()
            except ResourceError:
                _cancel(futures[i + 1 :])
                raise
    return results


def _retry_morsel_serially(
    fn: Callable[..., Any], args: tuple, key: tuple[int, int], exc: BaseException
) -> Any:
    """Re-run a crashed morsel on the calling thread with bounded backoff.

    Retries call the kernel directly — no pool, no fault injection — so
    an injected (or transient) crash recovers to the exact result the
    worker would have produced.  Exhausted retries surface as
    :class:`~repro.errors.ExecutionError` chained to the last failure.
    """
    registry = get_registry()
    registry.counter("resilience.morsel_failures").inc()
    config = _resilience_config()
    last: BaseException = exc
    for attempt in range(config.max_retries):
        if attempt:
            time.sleep(config.retry_backoff_s * (2 ** (attempt - 1)))
        registry.counter("resilience.retries").inc()
        try:
            with trace(
                "resilience.retry",
                kernel=fn.__name__,
                morsel=f"{key[0]}:{key[1]}",
                attempt=attempt + 1,
            ):
                return fn(*args)
        except ResourceError:
            raise
        except Exception as retry_exc:
            last = retry_exc
    raise ExecutionError(
        f"morsel {key[0]}:{key[1]} failed after {config.max_retries} "
        f"retries: {last}"
    ) from last


def _traced_task(
    fn: Callable[..., Any],
    args: tuple,
    ctx: QueryContext | None = None,
    injector: FaultInjector | None = None,
    key: tuple[int, int] | None = None,
) -> Any:
    """One worker-side task: governor checkpoint, fault sites, traced kernel."""
    if ctx is not None:
        ctx.check()
    if injector is not None and key is not None:
        injector.maybe_slow(key)
        injector.maybe_crash(key)
    with trace(
        "parallel.morsel", kernel=fn.__name__, worker=threading.current_thread().name
    ):
        return fn(*args)


# -- filter / scan-predicate kernels ------------------------------------------------


def _mask_morsel(predicate: Expression, table: Table, start: int, stop: int) -> np.ndarray:
    return truth_mask(predicate, table.slice(start, stop))


def parallel_truth_mask(predicate: Expression, table: Table) -> np.ndarray:
    """Evaluate a predicate mask morsel-wise; equals the serial mask."""
    ranges = morsel_ranges(table.num_rows)
    masks = _run_tasks(_mask_morsel, [(predicate, table, s, e) for s, e in ranges])
    return np.concatenate(masks) if masks else np.zeros(0, dtype=bool)


def mask_ranges(
    predicate: Expression, table: Table, ranges: Sequence[tuple[int, int]]
) -> list[np.ndarray]:
    """Predicate masks for explicit row ranges, one array per range.

    Used by zone-map pruning to evaluate only the maybe-zones of a scan
    on the pool; each range runs as one task with the usual governor
    checkpoints and fault-tolerant retries.
    """
    return _run_tasks(_mask_morsel, [(predicate, table, s, e) for s, e in ranges])


def parallel_filter(table: Table, predicate: Expression) -> Table:
    """Morsel-parallel WHERE: keep rows whose predicate is strictly TRUE."""
    with trace("op.filter", rows=table.num_rows, parallel=True, morsels=morsel_count(table.num_rows)):
        return table.filter(parallel_truth_mask(predicate, table))


def streamed_filter(
    table: Table,
    predicate: Expression,
    ranges: Sequence[tuple[int, int, bool]],
    extra_mask: np.ndarray | None = None,
) -> Table:
    """Filter by streaming zone-aligned ranges — skipped rows are never read.

    ``ranges`` is a zone-map classification ``[(start, stop, evaluate)]``
    as produced by :func:`repro.engine.zonemap.classify_ranges`: FAIL
    zones are absent, ``evaluate=False`` marks a PASS zone taken without
    predicate evaluation.  Unlike the mask path, rows outside the listed
    ranges are never sliced — on a memory-mapped table their pages are
    never faulted in.  ``extra_mask`` (full-table length) is ANDed in per
    range, used by the delta store to drop main-side tombstones.

    Bit-identical to ``table.filter(truth_mask & extra_mask)``: the
    ranges partition the surviving rows in ascending order and the MAYBE
    masks come from the same row-local kernel (serially or on the pool).
    """
    if not ranges:
        return table.slice(0, 0)
    eval_ranges = [(start, stop) for start, stop, evaluate in ranges if evaluate]
    rows_to_eval = sum(stop - start for start, stop in eval_ranges)
    if len(eval_ranges) > 1 and should_parallelize(rows_to_eval):
        masks = dict(zip(eval_ranges, mask_ranges(predicate, table, eval_ranges)))
    else:
        ctx = current_context()
        masks = {}
        for start, stop in eval_ranges:
            if ctx is not None:
                ctx.check()
            masks[(start, stop)] = truth_mask(predicate, table.slice(start, stop))
    pieces: list[Table] = []
    for start, stop, evaluate in ranges:
        piece = table.slice(start, stop)
        mask = masks[(start, stop)] if evaluate else None
        if extra_mask is not None:
            live = extra_mask[start:stop]
            mask = live if mask is None else mask & live
        if mask is not None:
            piece = piece.filter(mask)
        pieces.append(piece)
    if len(pieces) == 1:
        return pieces[0]
    return Table(
        {
            name: _concat_stream_columns([p.column(name) for p in pieces])
            for name in table.column_names
        }
    )


def _concat_stream_columns(columns: list[Column]) -> Column:
    """Like :func:`_concat_columns`, but keeps a shared dictionary encoding.

    Streamed pieces all derive from one base column via slice/filter, so
    when every piece still carries the *same* dictionary object their
    codes are directly concatenable — the result stays encoded, matching
    what ``filter`` on the whole column would have produced.
    """
    from repro.engine.column import _wrap

    data = np.concatenate([c.data for c in columns])
    if all(c.validity is None for c in columns):
        validity = None
    else:
        validity = np.concatenate([
            c.validity if c.validity is not None else np.ones(len(c), bool)
            for c in columns
        ])
    dictionary = columns[0]._dict
    if dictionary is not None and all(c._dict is dictionary for c in columns):
        codes = np.concatenate([c._codes for c in columns])
        return _wrap(data, columns[0].dtype, validity, codes, dictionary)
    return _wrap(data, columns[0].dtype, validity)


# -- aggregation ---------------------------------------------------------------------

#: Partial-state modes; see module docstring for the recombination rules.
_MODE_COUNT_STAR = "count_star"
_MODE_COUNT = "count"
_MODE_MINMAX = "minmax"
_MODE_SUM_INT = "sum_int"
_MODE_GATHER = "gather"


def _partial_modes(
    table: Table, aggregates: Sequence[tuple[str, AggregateCall]]
) -> list[str]:
    modes = []
    for _, call in aggregates:
        if call.argument is None:
            modes.append(_MODE_COUNT_STAR)
        elif call.distinct:
            modes.append(_MODE_GATHER)
        elif call.function == "COUNT":
            modes.append(_MODE_COUNT)
        elif call.function in ("MIN", "MAX"):
            modes.append(_MODE_MINMAX)
        elif call.function == "SUM" and call.argument.output_type(table) is not DataType.FLOAT64:
            modes.append(_MODE_SUM_INT)
        else:  # float SUM, AVG: keep indices to preserve pairwise summation
            modes.append(_MODE_GATHER)
    return modes


def _canonical_key(key: tuple) -> tuple:
    """A mergeable group key: NULL and NaN get stable sentinels."""
    parts = []
    for value in key:
        if value is None:
            parts.append((0, None))
        elif isinstance(value, float) and math.isnan(value):
            parts.append((1, None))
        else:
            parts.append((2, value))
    return tuple(parts)


def _aggregate_morsel(
    table: Table,
    start: int,
    stop: int,
    group_exprs: Sequence[Expression],
    aggregates: Sequence[tuple[str, AggregateCall]],
    modes: Sequence[str],
) -> tuple[list[tuple], dict[int, Column]]:
    """Partial aggregation of one morsel.

    Returns ``(groups, gather_columns)`` where each group entry is
    ``(canonical_key, display_key, global_row_indices, size, partials)``
    and ``gather_columns`` holds this morsel's evaluated argument columns
    for gather-mode aggregates (concatenated by the merge step).
    """
    morsel = table.slice(start, stop)
    key_columns = [expr.evaluate(morsel) for expr in group_exprs]
    arg_columns: dict[int, Column] = {}
    for i, (_, call) in enumerate(aggregates):
        if call.argument is not None:
            arg_columns[i] = call.argument.evaluate(morsel)
    if group_exprs:
        grouped = ops._group_rows(key_columns, morsel.num_rows)
    else:
        grouped = [((), np.arange(morsel.num_rows, dtype=np.int64))]
    groups: list[tuple] = []
    for key, idx in grouped:
        size = len(idx)
        partials: list[Any] = []
        for i, (_, call) in enumerate(aggregates):
            mode = modes[i]
            if mode == _MODE_COUNT_STAR:
                partials.append(size)
                continue
            if mode == _MODE_GATHER:
                partials.append(None)  # merged via row indices instead
                continue
            sliced = arg_columns[i].take(idx)
            if mode == _MODE_COUNT:
                partials.append(size - sliced.null_count())
            else:  # minmax / sum_int: the serial kernel is an exact partial
                partials.append(ops._aggregate_values(call, sliced, size))
        groups.append((_canonical_key(key), key, idx + start, size, partials))
    gather_columns = {
        i: arg_columns[i] for i, mode in enumerate(modes) if mode == _MODE_GATHER
    }
    return groups, gather_columns


def _merge_minmax(parts: list[Any], is_min: bool) -> Any:
    values = [p for p in parts if p is not None]
    if not values:
        return None
    for value in values:
        if isinstance(value, float) and math.isnan(value):
            return value  # serial np.min/np.max propagate NaN
    return min(values) if is_min else max(values)


def _merge_sum(parts: list[Any]) -> Any:
    values = [p for p in parts if p is not None]
    if not values:
        return None
    return sum(values)


def _merge_partial_aggregates(
    results: Sequence[tuple[list[tuple], dict[int, Column]]],
    group_exprs: Sequence[Expression],
    aggregates: Sequence[tuple[str, AggregateCall]],
    modes: Sequence[str],
    names: Sequence[str],
) -> Table:
    """Merge per-morsel partial groups into the final aggregate table.

    Group row indices must address the concatenation of the gather
    columns across ``results`` (in order).  First-appearance order across
    morsels reproduces the serial group order, and gather-mode aggregates
    re-evaluate the serial kernel over the merged group's rows — so the
    output is bit-identical to the serial operator over the same input.
    """
    merged: dict[tuple, dict[str, Any]] = {}
    gather_parts: dict[int, list[Column]] = {
        i: [] for i, mode in enumerate(modes) if mode == _MODE_GATHER
    }
    for groups, gather_columns in results:
        for i, column in gather_columns.items():
            gather_parts[i].append(column)
        for ckey, key, idx, size, partials in groups:
            entry = merged.get(ckey)
            if entry is None:
                merged[ckey] = {
                    "key": key,
                    "idx": [idx],
                    "size": size,
                    "partials": [[p] for p in partials],
                }
            else:
                entry["idx"].append(idx)
                entry["size"] += size
                for i, partial in enumerate(partials):
                    entry["partials"][i].append(partial)
    gather_columns_full: dict[int, Column] = {}
    for i, parts in gather_parts.items():
        column = parts[0]
        for part in parts[1:]:
            column = column.concat(part)
        gather_columns_full[i] = column

    out_rows: list[tuple[Any, ...]] = []
    for entry in merged.values():
        row_values: list[Any] = list(entry["key"])
        for i, (_, call) in enumerate(aggregates):
            mode = modes[i]
            parts = entry["partials"][i]
            if mode in (_MODE_COUNT_STAR, _MODE_COUNT):
                row_values.append(sum(parts))
            elif mode == _MODE_MINMAX:
                row_values.append(_merge_minmax(parts, call.function == "MIN"))
            elif mode == _MODE_SUM_INT:
                row_values.append(_merge_sum(parts))
            else:  # gather: evaluate over the merged group like serial
                idx = np.concatenate(entry["idx"])
                sliced = gather_columns_full[i].take(idx)
                row_values.append(ops._aggregate_values(call, sliced, entry["size"]))
        out_rows.append(tuple(row_values))

    if not group_exprs:
        # a global aggregate always emits exactly one row
        return Table.from_rows(out_rows, [name for name, _ in aggregates])
    return Table.from_rows(out_rows, list(names) + [name for name, _ in aggregates])


def parallel_hash_aggregate(
    table: Table,
    group_exprs: Sequence[Expression],
    aggregates: Sequence[tuple[str, AggregateCall]],
    group_names: Sequence[str] | None = None,
) -> Table:
    """Morsel-parallel GROUP BY: per-morsel partials + a merge step.

    Produces exactly the rows (values, order and names) of
    :func:`repro.engine.operators.hash_aggregate`.
    """
    num_rows = table.num_rows
    with trace(
        "op.hash_aggregate",
        rows=num_rows,
        keys=len(group_exprs),
        parallel=True,
        morsels=morsel_count(num_rows),
    ):
        ranges = morsel_ranges(num_rows)
        if not ranges:
            return ops.hash_aggregate(table, group_exprs, aggregates, group_names)
        names = list(group_names) if group_names is not None else [
            strip_outer_parens(e.to_sql()) for e in group_exprs
        ]
        modes = _partial_modes(table, aggregates)
        results = _run_tasks(
            _aggregate_morsel,
            [(table, s, e, group_exprs, aggregates, modes) for s, e in ranges],
        )
        # merge: first-appearance order across morsels == serial group order
        return _merge_partial_aggregates(results, group_exprs, aggregates, modes, names)


def _fused_morsel(
    table: Table,
    start: int,
    stop: int,
    predicate: Expression | None,
    group_exprs: Sequence[Expression],
    aggregates: Sequence[tuple[str, AggregateCall]],
    modes: Sequence[str],
) -> tuple[list[tuple], dict[int, Column], int]:
    """Filter + partial aggregation of one morsel, without materialising
    the filtered table across morsels.

    ``predicate`` of None means the morsel provably passes (a PASS zone).
    Returns ``(groups, gather_columns, kept_rows)`` like
    :func:`_aggregate_morsel`, except group row indices are *local* to
    this morsel's filtered rows — the caller rebases them onto the
    concatenation of all filtered morsels via the kept-row counts.
    """
    morsel = table.slice(start, stop)
    if predicate is not None:
        morsel = morsel.filter(truth_mask(predicate, morsel))
    key_columns = [expr.evaluate(morsel) for expr in group_exprs]
    arg_columns: dict[int, Column] = {}
    for i, (_, call) in enumerate(aggregates):
        if call.argument is not None:
            arg_columns[i] = call.argument.evaluate(morsel)
    if group_exprs:
        grouped = ops._group_rows(key_columns, morsel.num_rows)
    else:
        grouped = [((), np.arange(morsel.num_rows, dtype=np.int64))]
    groups: list[tuple] = []
    for key, idx in grouped:
        size = len(idx)
        partials: list[Any] = []
        for i, (_, call) in enumerate(aggregates):
            mode = modes[i]
            if mode == _MODE_COUNT_STAR:
                partials.append(size)
                continue
            if mode == _MODE_GATHER:
                partials.append(None)  # merged via row indices instead
                continue
            sliced = arg_columns[i].take(idx)
            if mode == _MODE_COUNT:
                partials.append(size - sliced.null_count())
            else:  # minmax / sum_int: the serial kernel is an exact partial
                partials.append(ops._aggregate_values(call, sliced, size))
        groups.append((_canonical_key(key), key, idx, size, partials))
    gather_columns = {
        i: arg_columns[i] for i, mode in enumerate(modes) if mode == _MODE_GATHER
    }
    return groups, gather_columns, morsel.num_rows


def fused_filter_aggregate(
    table: Table,
    predicate: Expression,
    group_exprs: Sequence[Expression],
    aggregates: Sequence[tuple[str, AggregateCall]],
    group_names: Sequence[str] | None = None,
    ranges: Sequence[tuple[int, int, bool]] | None = None,
) -> Table:
    """Filter + hash aggregate fused per morsel (the FusedAggregate kernel).

    Each morsel evaluates the predicate and its partial aggregation in
    one pass; the filtered table is never materialised as a whole.
    ``ranges`` is an optional zone-map classification ``[(start, stop,
    evaluate)]`` — FAIL zones are simply absent, and ``evaluate=False``
    marks a PASS zone whose rows are taken without evaluating the
    predicate.  None means every morsel of the table is evaluated.

    Bit-identical to ``hash_aggregate(filter(table, predicate), ...)``:
    the per-morsel filter masks concatenate to the serial mask.  On the
    worker pool the merge is exactly :func:`_merge_partial_aggregates`
    over the filtered table's own morselization; serially, the surviving
    filtered morsels concatenate into one aggregation pass — the same
    rows the unfused filter would materialise, minus the skipped zones
    and the full-table mask array.
    """
    # Type errors are dtype-dependent, not data-dependent: surface them
    # exactly as the unfused filter would even when every zone is skipped.
    truth_mask(predicate, table.slice(0, 0))
    num_rows = table.num_rows
    if ranges is None:
        ranges = [(start, stop, True) for start, stop in morsel_ranges(num_rows)]
    with trace(
        "op.fused_filter_aggregate",
        rows=num_rows,
        keys=len(group_exprs),
        morsels=len(ranges),
    ):
        if not ranges:
            return ops.hash_aggregate(
                table.slice(0, 0), group_exprs, aggregates, group_names
            )
        if not should_parallelize(num_rows):
            ctx = current_context()
            pieces: list[Table] = []
            for start, stop, evaluate in ranges:
                if ctx is not None:
                    ctx.check()
                morsel = table.slice(start, stop)
                if evaluate:
                    morsel = morsel.filter(truth_mask(predicate, morsel))
                pieces.append(morsel)
            if len(pieces) == 1:
                combined = pieces[0]
            else:
                combined = Table(
                    {
                        name: _concat_columns([p.column(name) for p in pieces])
                        for name in table.column_names
                    }
                )
            return ops.hash_aggregate(combined, group_exprs, aggregates, group_names)
        names = list(group_names) if group_names is not None else [
            strip_outer_parens(e.to_sql()) for e in group_exprs
        ]
        modes = _partial_modes(table, aggregates)
        results = _run_tasks(
            _fused_morsel,
            [
                (table, start, stop, predicate if evaluate else None,
                 group_exprs, aggregates, modes)
                for start, stop, evaluate in ranges
            ],
        )
        # rebase local filtered-row indices onto the concatenation of the
        # filtered morsels (which the gather columns are slices of)
        rebased: list[tuple[list[tuple], dict[int, Column]]] = []
        base = 0
        for groups, gather_columns, kept in results:
            rebased.append((
                [
                    (ckey, key, idx + base, size, partials)
                    for ckey, key, idx, size, partials in groups
                ],
                gather_columns,
            ))
            base += kept
        return _merge_partial_aggregates(rebased, group_exprs, aggregates, modes, names)


def _concat_columns(columns: list[Column]) -> Column:
    """Stack same-typed columns in one pass (pairwise concat is quadratic)."""
    from repro.engine.column import _wrap

    data = np.concatenate([c.data for c in columns])
    if all(c.validity is None for c in columns):
        validity = None
    else:
        validity = np.concatenate([
            c.validity if c.validity is not None else np.ones(len(c), bool)
            for c in columns
        ])
    return _wrap(data, columns[0].dtype, validity)


# -- sorting -------------------------------------------------------------------------


def _sort_morsel(
    keys: list[tuple[np.ndarray, np.ndarray, bool]], start: int, stop: int
) -> np.ndarray:
    return ops.sort_positions(keys, np.arange(start, stop, dtype=np.int64))


def _eval_sort_keys_morsel(
    table: Table, order_by: Sequence[OrderItem], start: int, stop: int
) -> list[tuple[np.ndarray, np.ndarray, bool]]:
    return ops.order_keys(table.slice(start, stop), order_by)


def parallel_sort(table: Table, order_by: Sequence[OrderItem]) -> Table:
    """Morsel-parallel ORDER BY: per-morsel sort runs + a stable k-way merge.

    Falls back to the serial sort when a key column contains NaN among
    its valid values (see module docstring).
    """
    if not order_by:
        return table
    num_rows = table.num_rows
    with trace(
        "op.sort",
        rows=num_rows,
        keys=len(order_by),
        parallel=True,
        morsels=morsel_count(num_rows),
    ):
        ranges = morsel_ranges(num_rows)
        if not ranges:
            return table
        # evaluate the key expressions morsel-wise (row-local, so the
        # concatenation equals full-table evaluation)
        key_parts = _run_tasks(
            _eval_sort_keys_morsel, [(table, order_by, s, e) for s, e in ranges]
        )
        keys: list[tuple[np.ndarray, np.ndarray, bool]] = []
        for item_index in range(len(order_by)):
            key_arr = np.concatenate([part[item_index][0] for part in key_parts])
            nulls = np.concatenate([part[item_index][1] for part in key_parts])
            keys.append((key_arr, nulls, key_parts[0][item_index][2]))
        for key_arr, nulls, _ in keys:
            if key_arr.dtype.kind == "f" and bool(np.isnan(key_arr[~nulls]).any()):
                return ops.sort_table(table, order_by)
        runs = _run_tasks(_sort_morsel, [(keys, s, e) for s, e in ranges])
        order = _merge_sorted_runs(runs, keys)
        return table.take(order)


def _merge_sorted_runs(
    runs: list[np.ndarray], keys: list[tuple[np.ndarray, np.ndarray, bool]]
) -> np.ndarray:
    """Stable k-way merge of sorted row-index runs.

    The comparator mirrors the serial ordering: NULLs before every valid
    value under ASC and after under DESC; ties preserve original row
    order (guaranteed by ``heapq.merge`` taking earlier runs first).
    """
    if len(runs) == 1:
        return runs[0]

    def compare(i: int, j: int) -> int:
        for key_arr, nulls, ascending in keys:
            ni = bool(nulls[i])
            nj = bool(nulls[j])
            if ni or nj:
                if ni and nj:
                    continue
                # one NULL: first under ASC, last under DESC
                if ni:
                    return -1 if ascending else 1
                return 1 if ascending else -1
            ki = key_arr[i]
            kj = key_arr[j]
            if ki == kj:
                continue
            if ki < kj:
                return -1 if ascending else 1
            return 1 if ascending else -1
        return 0

    merged = heapq.merge(*runs, key=cmp_to_key(compare))
    return np.fromiter(merged, dtype=np.int64, count=sum(len(r) for r in runs))
