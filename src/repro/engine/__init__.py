"""The column-store engine substrate.

Public surface::

    from repro.engine import Database, Table, Column, col, lit

    db = Database()
    db.create_table("t", {"a": [1, 2, 3], "b": [10.0, 20.0, 30.0]})
    result = db.sql("SELECT a, b FROM t WHERE a >= 2 ORDER BY b DESC")
"""

from repro.engine.catalog import Database, RangeIndex
from repro.engine.column import Column
from repro.engine.csv_io import read_csv, write_csv
from repro.engine.expressions import Expression, col, lit, truth_mask
from repro.engine.parallel import (
    ParallelConfig,
    configure as configure_parallel,
    get_threads,
    set_threads,
)
from repro.engine.planner import Plan, RangeProbe
from repro.engine.scanopt import (
    ScanAccelConfig,
    configure as configure_scan_accel,
)
from repro.engine.statistics import ColumnStatistics, TableStatistics, ZoneMap
from repro.engine.table import Schema, Table
from repro.engine.types import DataType

__all__ = [
    "Column",
    "ColumnStatistics",
    "Database",
    "DataType",
    "Expression",
    "ParallelConfig",
    "Plan",
    "RangeIndex",
    "RangeProbe",
    "ScanAccelConfig",
    "Schema",
    "Table",
    "TableStatistics",
    "ZoneMap",
    "col",
    "configure_parallel",
    "configure_scan_accel",
    "get_threads",
    "lit",
    "read_csv",
    "set_threads",
    "truth_mask",
    "write_csv",
]
