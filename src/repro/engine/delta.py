"""Per-table delta stores: the batched write path.

Writes no longer rebuild the columnar main.  ``INSERT`` appends row
tuples to a small row-major :class:`DeltaStore`; ``DELETE`` marks
tombstones (a boolean mask over the main, a set over the delta) without
moving a single row.  Scans union the columnar main with the live delta
rows as a trailing morsel — the zone-map and dictionary fast paths keep
applying to the main, and the delta tail is evaluated directly (it is
bounded by the merge threshold, so it stays cache-sized).

When the write pressure (pending inserts + tombstones) reaches the
configured threshold (``PRAGMA delta_rows`` / ``REPRO_DELTA_ROWS``), a
*merge* folds the delta into a new columnar main.  The merge is
incremental where the structures allow it:

- **dictionary codes** — the merged STRING column's sorted dictionary is
  ``unique(old_dict ∪ tail_distinct)``; old codes are remapped with one
  gather through a ``searchsorted`` translation table and tail codes are
  assigned by ``searchsorted``, so the O(n log n) re-encode of the main
  payload never reruns;
- **zone maps** — on a pure append (no tombstones) only the trailing
  partial zone and the new zones are recomputed; complete old zones are
  spliced in unchanged;
- **statistics** — on a pure append the cached main statistics are
  *absorbed* with O(delta) tail statistics: row/null counts and min/max
  stay exact, distinct counts come from the merged dictionary for
  encoded strings and a max() lower bound otherwise, and numeric
  histograms keep the old bounds (approximate until the next full
  rebuild).

A merge with tombstones compacts row positions, so it drops positional
structures (registered indexes, cached zone maps/statistics) instead of
maintaining them — deletes are the rare case in an exploration workload.

This is the "Updating a Cracked Database" [30] design promoted from the
:mod:`repro.indexing.updates` demo into the engine's real update path:
pending inserts and a pending-deletion set, merged when crossing a
threshold rather than eagerly per statement.

Durability (:mod:`repro.engine.wal`) treats the delta store as volatile:
what is logged is the *statement* that fed it, not the delta contents,
and each merge writes a marker record before folding.  Replay therefore
re-executes statements into a fresh delta store and merges exactly where
the markers say — merges change physical state only, so the recovered
logical contents are bit-identical whatever threshold was configured
when the log was written.

Out-of-core interaction (``PRAGMA storage=mmap``): the delta store
itself always stays in RAM — it is bounded by the merge threshold — but
the main it shadows may be a read-only memory map of checkpoint files.
Every write path here is already copy-on-write against the main
(:func:`assign_column` copies payload and validity before masked writes,
:func:`concat_string_encoded` and :func:`merged_table` build fresh
arrays), so a mapped main is never mutated in place; the catalog spills
the merged image to a fresh live directory (write-temp-then-rename) and
remaps it instead of overwriting the checkpoint bytes.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.engine.column import Column, _wrap
from repro.engine.statistics import (
    ColumnStatistics,
    ColumnZones,
    TableStatistics,
    ZoneMap,
)
from repro.engine.table import Table
from repro.engine.types import DataType
from repro.errors import TypeMismatchError

#: default merge threshold: delta rows + tombstones before folding into the main
DEFAULT_DELTA_ROWS = 8192


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    try:
        return int(raw)
    except ValueError:
        return default


@dataclass
class DeltaConfig:
    """Write-path knobs.

    Attributes:
        delta_rows: merge threshold — a table's delta is folded into the
            columnar main once pending inserts plus tombstones reach this
            count.  ``0`` merges on every write (the rebuild-per-statement
            behaviour, useful for stress tests); it never disables the
            delta store itself.
    """

    delta_rows: int = DEFAULT_DELTA_ROWS


_config = DeltaConfig(delta_rows=max(0, _env_int("REPRO_DELTA_ROWS", DEFAULT_DELTA_ROWS)))
_config_lock = threading.Lock()


def get_config() -> DeltaConfig:
    """The process-wide write-path configuration."""
    return _config


def configure(delta_rows: int | None = None) -> DeltaConfig:
    """Update the write-path configuration (None leaves a knob unchanged)."""
    global _config
    with _config_lock:
        new_delta_rows = _config.delta_rows if delta_rows is None else delta_rows
        if new_delta_rows < 0:
            raise ValueError("delta_rows must be >= 0")
        _config = DeltaConfig(delta_rows=new_delta_rows)
    return _config


class DeltaStore:
    """Pending writes against one table: inserted rows and tombstones.

    Inserted rows are row-major tuples in the main's column order; delta
    row ``i`` has the logical position ``main_rows + i``, so positions
    handed out by secondary indexes stay meaningful across appends.
    Deleted rows are never moved — main deletes flip a bit in a lazily
    allocated mask, delta deletes land in a set — so every surviving row
    keeps its position until the next merge compacts the table.
    """

    __slots__ = ("main_rows", "rows", "dead_delta", "_dead_main", "version")

    def __init__(self, main_rows: int) -> None:
        self.main_rows = main_rows
        self.rows: list[tuple[Any, ...]] = []
        self.dead_delta: set[int] = set()
        self._dead_main: np.ndarray | None = None
        #: bumped on every state change; keys the catalog's caches
        self.version = 0

    # -- state -----------------------------------------------------------------------

    def is_clean(self) -> bool:
        """True when the main table alone is the whole truth."""
        return not self.rows and not self.dead_delta and self._dead_main is None

    @property
    def pending_inserts(self) -> int:
        return len(self.rows)

    @property
    def main_tombstones(self) -> int:
        return 0 if self._dead_main is None else int(self._dead_main.sum())

    @property
    def write_pressure(self) -> int:
        """Pending inserts + tombstones: what the merge threshold compares."""
        return len(self.rows) + self.main_tombstones + len(self.dead_delta)

    def touch(self) -> None:
        """Bump the version: any cache keyed on it is now stale."""
        self.version += 1

    # -- mutation --------------------------------------------------------------------

    def append(self, rows: Sequence[tuple[Any, ...]]) -> None:
        """Append pre-coerced row tuples (main column order)."""
        self.rows.extend(rows)
        self.touch()

    def mark_main_deleted(self, mask: np.ndarray) -> None:
        """Tombstone main rows where ``mask`` is True."""
        if not mask.any():
            return
        if self._dead_main is None:
            self._dead_main = np.zeros(self.main_rows, dtype=bool)
        self._dead_main |= mask
        self.touch()

    def mark_delta_deleted(self, indices: Sequence[int]) -> None:
        """Tombstone delta rows by delta-local index."""
        if not len(indices):
            return
        self.dead_delta.update(int(i) for i in indices)
        self.touch()

    # -- masks -----------------------------------------------------------------------

    def live_main_mask(self) -> np.ndarray | None:
        """True where a main row survives, or None when nothing was deleted."""
        if self._dead_main is None:
            return None
        return ~self._dead_main

    def live_delta_mask(self) -> np.ndarray | None:
        """True where a delta row survives, or None when nothing was deleted."""
        if not self.dead_delta:
            return None
        mask = np.ones(len(self.rows), dtype=bool)
        for i in self.dead_delta:
            if i < len(mask):
                mask[i] = False
        return mask

    def live_delta_count(self) -> int:
        """Number of pending rows that have not been tombstoned."""
        return len(self.rows) - len(self.dead_delta)


# -- typed coercion ------------------------------------------------------------------


def coerce_scalar(value: Any, dtype: DataType, column: str) -> Any:
    """Check one INSERT value against the target column type.

    Exact widening (int → FLOAT64) is performed; lossy narrowing (a
    fractional float into INT64, a number into STRING, anything into
    BOOL but a bool) raises :class:`TypeMismatchError` instead of the
    silent truncation/stringification ``np.asarray`` would apply.
    """
    if value is None:
        return None
    if isinstance(value, np.generic):
        value = value.item()
    if dtype is DataType.BOOL:
        if isinstance(value, bool):
            return value
    elif dtype is DataType.STRING:
        if isinstance(value, str):
            return value
    elif dtype is DataType.INT64:
        if isinstance(value, bool):
            pass  # fall through to the error: TRUE is not an integer here
        elif isinstance(value, int):
            return value
        elif isinstance(value, float):
            if np.isfinite(value) and value.is_integer():
                return int(value)
            raise TypeMismatchError(
                f"cannot store {value!r} in INT64 column {column!r} "
                "without losing precision"
            )
    elif dtype is DataType.FLOAT64:
        if isinstance(value, bool):
            pass
        elif isinstance(value, (int, float)):
            return float(value)
    raise TypeMismatchError(
        f"cannot store {type(value).__name__} value {value!r} "
        f"in {dtype.name} column {column!r}"
    )


def assign_column(old: Column, values: Column, mask: np.ndarray) -> Column:
    """``old`` with ``values`` written into the rows where ``mask`` is True.

    The vectorised UPDATE kernel: payload and validity are copied once
    and patched in place, with the same typed-coercion contract as
    :func:`coerce_scalar` — int → float widens, a fractional float into
    INT64 (or any cross-kind write) raises :class:`TypeMismatchError`.
    """
    target, source = old.dtype, values.dtype
    new_validity = old.validity.copy() if old.validity is not None else np.ones(len(old), bool)
    values_valid = values.validity if values.validity is not None else np.ones(len(values), bool)
    new_validity[mask] = values_valid[mask]

    data = old.data.copy()
    write = mask & values_valid
    if source == target:
        data[write] = values.data[write]
    elif target is DataType.FLOAT64 and source is DataType.INT64:
        data[write] = values.data[write].astype(np.float64)
    elif target is DataType.INT64 and source is DataType.FLOAT64:
        incoming = values.data[write]
        if len(incoming) and not (
            np.isfinite(incoming).all() and np.equal(np.floor(incoming), incoming).all()
        ):
            raise TypeMismatchError(
                "UPDATE would store fractional FLOAT64 values in an INT64 "
                "column; cast explicitly or change the column type"
            )
        data[write] = incoming.astype(np.int64)
    else:
        raise TypeMismatchError(
            f"cannot assign {source.name} values to {target.name} column in UPDATE"
        )
    # park the null fill in newly nulled slots so the payload stays harmless
    nulled = mask & ~values_valid
    if nulled.any():
        fill: Any = "" if target is DataType.STRING else (False if target is DataType.BOOL else 0)
        data[nulled] = fill
    return _wrap(data, target, new_validity)


# -- tail materialisation and merge ---------------------------------------------------


def tail_table(store: DeltaStore, main: Table) -> Table:
    """All delta rows (dead ones included, for position stability) as a
    columnar table with the main's schema."""
    rows = list(store.rows)  # snapshot: appends may race a reader
    columns = []
    for j, name in enumerate(main.column_names):
        dtype = main.schema.type_of(name)
        values = [row[j] for row in rows]
        columns.append((name, Column(values, dtype=dtype)))
    return Table(columns)


def concat_string_encoded(base: Column, tail: Column) -> Column:
    """Concat a dictionary-encoded STRING column with a small tail,
    maintaining the encoding incrementally (no full re-unique of the base)."""
    pair = base.dictionary()
    if pair is None:
        return base.concat(tail)
    codes, dictionary = pair
    tail_valid = tail.validity if tail.validity is not None else np.ones(len(tail), bool)
    tail_data = tail.data
    try:
        tail_distinct = np.unique(tail_data[tail_valid])
        new_dict = np.unique(np.concatenate([dictionary, tail_distinct]))
        if len(new_dict) != len(dictionary):
            remap = np.searchsorted(new_dict, dictionary).astype(np.int32)
            base_codes = np.where(codes >= 0, remap[codes], np.int32(-1))
        else:
            base_codes = codes
        tail_codes = np.searchsorted(new_dict, tail_data).astype(np.int32)
        tail_codes[~tail_valid] = -1
    except TypeError:  # unsortable payload: fall back to an unencoded concat
        return base.concat(tail)
    data = np.concatenate([base.data, tail_data])
    if base.validity is None and tail.validity is None:
        validity = None
    else:
        left = base.validity if base.validity is not None else np.ones(len(base), bool)
        validity = np.concatenate([left, tail_valid])
    return _wrap(
        data,
        DataType.STRING,
        validity,
        np.concatenate([base_codes, tail_codes]),
        new_dict,
    )


def merged_table(main: Table, tail: Table, store: DeltaStore) -> Table:
    """The effective table: live main rows followed by live delta rows.

    Dictionary-encoded STRING columns keep their encoding (maintained
    incrementally); everything else is a plain concat.  This is both the
    table scans see while the delta is dirty and the new main a merge
    installs.
    """
    live_main = store.live_main_mask()
    live_delta = store.live_delta_mask()
    columns = []
    for name in main.column_names:
        base = main.column(name)
        if live_main is not None:
            base = base.filter(live_main)
        t = tail.column(name)
        if live_delta is not None:
            t = t.filter(live_delta)
        if base.dtype is DataType.STRING and base.dictionary() is not None:
            columns.append((name, concat_string_encoded(base, t)))
        else:
            columns.append((name, base.concat(t)))
    return Table(columns)


def extend_zone_map(old: ZoneMap, table: Table) -> ZoneMap:
    """Zone map of ``table`` given the map of its prefix (pure append only).

    Complete old zones are reused verbatim; only the trailing partial
    zone and the appended rows are re-summarised.
    """
    zone_rows = old.zone_rows
    n = table.num_rows
    if zone_rows <= 0 or old.row_count == n:
        return old
    keep = old.row_count // zone_rows  # complete zones to splice in unchanged
    start = keep * zone_rows
    fresh = ZoneMap.from_table(table.slice(start, n), zone_rows)
    merged = ZoneMap(zone_rows=zone_rows, row_count=n)
    for name, zones in old.columns.items():
        new_zones = fresh.columns.get(name)
        if new_zones is None:
            continue
        merged.columns[name] = ColumnZones(
            mins=np.concatenate([zones.mins[:keep], new_zones.mins]),
            maxs=np.concatenate([zones.maxs[:keep], new_zones.maxs]),
            real_counts=np.concatenate([zones.real_counts[:keep], new_zones.real_counts]),
            null_counts=np.concatenate([zones.null_counts[:keep], new_zones.null_counts]),
            nan_counts=np.concatenate([zones.nan_counts[:keep], new_zones.nan_counts]),
        )
    return merged


def _absorb_column(
    main: ColumnStatistics,
    tail: ColumnStatistics,
    row_count: int,
    exact_distinct: int | None = None,
) -> ColumnStatistics:
    """Main-column statistics absorbed with an O(delta) tail summary.

    Row/null counts and min/max combine exactly (min/max conservatively
    under tombstones — a superset's bounds stay sound); the distinct
    count is exact when the merged dictionary size is known and a
    ``max()`` lower bound otherwise; the histogram keeps the main's
    bounds (stale for appended out-of-range values, still sound for the
    clamped estimators).
    """

    def _combine(a: Any, b: Any, pick: Any) -> Any:
        if a is None:
            return b
        if b is None:
            return a
        return pick(a, b)

    distinct = exact_distinct if exact_distinct is not None else max(
        main.distinct_count, tail.distinct_count
    )
    return ColumnStatistics(
        dtype=main.dtype,
        row_count=row_count,
        null_count=main.null_count + tail.null_count,
        distinct_count=distinct,
        min_value=_combine(main.min_value, tail.min_value, min),
        max_value=_combine(main.max_value, tail.max_value, max),
        bucket_bounds=main.bucket_bounds,
        bucket_counts=main.bucket_counts,
    )


def effective_statistics(
    main_stats: TableStatistics, live_tail: Table, dead_main: int
) -> TableStatistics:
    """Statistics of main + live delta, absorbed without touching the main."""
    row_count = main_stats.row_count - dead_main + live_tail.num_rows
    tail_stats = TableStatistics.from_table(live_tail)
    columns = {}
    for name, stats in main_stats.columns.items():
        tail_col = tail_stats.column(name)
        if tail_col is None:
            columns[name] = stats
            continue
        columns[name] = _absorb_column(stats, tail_col, row_count)
    return TableStatistics(row_count=row_count, columns=columns)


def extend_statistics(
    main_stats: TableStatistics, merged_main: Table, old_rows: int
) -> TableStatistics:
    """Post-merge statistics seeded from the pre-merge main statistics.

    Pure-append only: absorbs the appended slice column-wise, takes the
    exact distinct count from maintained dictionaries, and extends every
    cached zone map incrementally.
    """
    tail = merged_main.slice(old_rows, merged_main.num_rows)
    tail_stats = TableStatistics.from_table(tail)
    row_count = merged_main.num_rows
    columns = {}
    for name, stats in main_stats.columns.items():
        tail_col = tail_stats.column(name)
        if tail_col is None:
            columns[name] = stats
            continue
        exact_distinct = None
        merged_column = merged_main.column(name)
        pair = merged_column.dictionary()
        if pair is not None:
            valid_codes = pair[0] if merged_column.validity is None else pair[0][merged_column.validity]
            exact_distinct = len(np.unique(valid_codes)) if len(valid_codes) else 0
        columns[name] = _absorb_column(stats, tail_col, row_count, exact_distinct)
    seeded = TableStatistics(row_count=row_count, columns=columns)
    for zone_rows, zones in main_stats.zone_maps.items():
        seeded.zone_maps[zone_rows] = extend_zone_map(zones, merged_main)
    return seeded
