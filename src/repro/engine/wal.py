"""Durability: write-ahead log, atomic checkpoints, crash recovery.

The write path of :mod:`repro.engine.catalog` becomes durable when a
database is opened with ``Database(path=...)``.  Three cooperating
pieces live here:

**Write-ahead log.**  An append-only file of length-prefixed,
CRC32-checksummed records.  Every INSERT/DELETE/UPDATE statement, every
DDL operation (as a full-table snapshot, so replay needs no SQL round
trip for programmatic writes) and every delta merge is logged *before*
it mutates in-memory state.  The frame is::

    file   := MAGIC record*
    record := u32 payload_len | u32 crc32(payload) | payload
    payload:= u8 kind | body            (kind 1: JSON; kind 2: JSON+blob)

``wal_sync`` picks the fsync policy: ``commit`` (fsync every record —
the default), ``batch`` (fsync every ``wal_batch`` records) or ``off``
(leave it to the OS).  What survives a crash is exactly the prefix up
to the last fsync, plus whatever the OS happened to flush.

**Checkpoints.**  :func:`write_checkpoint` serialises every table's
columnar main (one ``.npz`` per column through the
:mod:`repro.storage.layouts` seam, dictionary codes included), cached
statistics and zone maps into a numbered ``checkpoint-NNNNNN``
directory.  The manifest is written last via write-temp-then-
``os.replace``, so a directory with a readable manifest is complete by
construction; the ``CURRENT`` pointer file is swapped the same way.
Each checkpoint owns its own log file ``wal-NNNNNN.log`` — switching
log files instead of truncating in place means there is no instant at
which a crash could pair the *new* checkpoint with the *old* (already
replayed) log and double-apply records.

**Recovery.**  Opening a durable database loads the newest *valid*
checkpoint (``CURRENT`` first, then any complete numbered directory,
newest first — a completed-but-unswapped directory left by a crash
mid-checkpoint is a correct recovery source) and replays its WAL.
Every record is CRC-verified: a torn **tail** — an incomplete frame, or
a CRC-invalid record that ends exactly at end-of-file, the signature of
a crash during the final append — is silently discarded and truncated
away.  A CRC failure with further bytes *after* the bad record is
mid-log corruption and raises :class:`~repro.errors.RecoveryError`.

Crash points (``wal_pre_fsync``, ``wal_post_append``,
``wal_torn_write``, ``crash_mid_checkpoint``, ``crash_mid_merge``) hook
into the PR-3 fault injector; when one fires the log is truncated to
what a power loss would have left durable and
:class:`~repro.resilience.SimulatedCrashError` is raised.  The metrics
family is ``wal.*`` / ``recovery.*`` / ``write.checkpoint*``.
"""

from __future__ import annotations

import json
import os
import shutil
import struct
import zipfile
import zlib
from pathlib import Path
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.engine.statistics import (
    ColumnStatistics,
    ColumnZones,
    TableStatistics,
    ZoneMap,
)
from repro.engine.types import DataType, python_value
from repro.errors import RecoveryError, ReproError, WalError
from repro.obs.metrics import get_registry
from repro.obs.tracing import trace
from repro.resilience import SimulatedCrashError, get_injector
from repro.storage import layouts

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.engine.catalog import Database
    from repro.engine.table import Table

MAGIC = b"RPWAL001"
_FRAME = struct.Struct("<II")
_JLEN = struct.Struct("<I")
_KIND_JSON = 1
_KIND_BLOB = 2
#: frames claiming more than this are treated as garbage length fields
_MAX_RECORD = 1 << 31

SYNC_POLICIES = ("off", "commit", "batch")
DEFAULT_WAL_BATCH = 64
#: Checkpoint format: v1 stored one ``.npz`` per column; v2 stores raw
#: per-part ``.npy`` files so columns can be reopened as read-only
#: ``np.memmap`` views (``PRAGMA storage=mmap``).  v1 dirs stay readable.
_FORMAT_VERSION = 2
#: format 3 adds a per-table "sharding" manifest entry (mode, key,
#: offsets, bounds); readers without sharding support must not open it
_SHARDED_FORMAT_VERSION = 3
_READABLE_FORMATS = (1, 2, 3)


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, "") or default)
    except ValueError:
        return default


class WalConfig:
    """Durability tunables (one process-wide instance).

    Attributes:
        wal: whether durable databases log writes at all.  With the WAL
            off a ``Database(path=...)`` is checkpoint-only durable:
            writes since the last :meth:`~Database.checkpoint` die with
            the process.
        wal_sync: fsync policy — ``"commit"``, ``"batch"`` or ``"off"``.
        wal_batch: records between fsyncs under the ``batch`` policy.
    """

    __slots__ = ("wal", "wal_sync", "wal_batch")

    def __init__(self) -> None:
        self.wal = _env_int("REPRO_WAL", 1) != 0
        sync = os.environ.get("REPRO_WAL_SYNC", "commit").strip().lower()
        self.wal_sync = sync if sync in SYNC_POLICIES else "commit"
        self.wal_batch = max(1, _env_int("REPRO_WAL_BATCH", DEFAULT_WAL_BATCH))


_config = WalConfig()


def get_config() -> WalConfig:
    """The process-wide durability configuration."""
    return _config


def configure(
    wal: bool | int | None = None,
    wal_sync: str | None = None,
    wal_batch: int | None = None,
) -> WalConfig:
    """Update the durability configuration; omitted fields keep their value."""
    if wal is not None:
        _config.wal = bool(wal)
    if wal_sync is not None:
        policy = wal_sync.strip().lower()
        if policy not in SYNC_POLICIES:
            raise WalError(
                f"unknown wal_sync policy {wal_sync!r}; expected one of {list(SYNC_POLICIES)}"
            )
        _config.wal_sync = policy
    if wal_batch is not None:
        if wal_batch < 1:
            raise WalError("wal_batch must be >= 1")
        _config.wal_batch = wal_batch
    return _config


# -- record framing ----------------------------------------------------------------


def encode_record(meta: dict[str, Any], blob: bytes | None = None) -> bytes:
    """One framed WAL record: length, CRC, kind byte, JSON (+ blob)."""
    body = json.dumps(meta, separators=(",", ":")).encode("utf-8")
    if blob is None:
        payload = bytes([_KIND_JSON]) + body
    else:
        payload = bytes([_KIND_BLOB]) + _JLEN.pack(len(body)) + body + blob
    return _FRAME.pack(len(payload), zlib.crc32(payload)) + payload


def decode_payload(payload: bytes) -> tuple[dict[str, Any], bytes | None]:
    """Invert :func:`encode_record`'s payload (the CRC already passed)."""
    kind = payload[0]
    if kind == _KIND_JSON:
        return json.loads(payload[1:].decode("utf-8")), None
    if kind == _KIND_BLOB:
        (jlen,) = _JLEN.unpack_from(payload, 1)
        meta = json.loads(payload[5 : 5 + jlen].decode("utf-8"))
        return meta, payload[5 + jlen :]
    raise RecoveryError(f"unknown WAL record kind {kind}")


def read_wal(path: str | os.PathLike) -> tuple[list[tuple[dict[str, Any], bytes | None]], int]:
    """Every intact record of a WAL file, plus the byte length of that prefix.

    A torn tail (incomplete frame, or a CRC-bad record ending exactly at
    EOF) terminates the scan cleanly; the returned ``valid_bytes`` lets
    the writer truncate it away before appending.  A CRC-bad record
    *followed by further bytes* raises :class:`RecoveryError` — that is
    corruption in the middle of the durable history, not a crash
    artefact, and silently skipping it would replay a wrong state.
    """
    path = Path(path)
    if not path.exists():
        return [], 0
    data = path.read_bytes()
    size = len(data)
    if size < len(MAGIC):
        return [], 0
    if data[: len(MAGIC)] != MAGIC:
        raise RecoveryError(f"{path.name}: bad WAL magic header")
    records: list[tuple[dict[str, Any], bytes | None]] = []
    offset = len(MAGIC)
    while offset < size:
        if offset + _FRAME.size > size:
            break  # torn tail: incomplete frame header
        length, crc = _FRAME.unpack_from(data, offset)
        start = offset + _FRAME.size
        end = start + length
        if length > _MAX_RECORD or end > size:
            break  # torn tail: payload runs past EOF (or garbage length)
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            if end == size:
                break  # torn tail: final record half-written
            raise RecoveryError(
                f"{path.name}: CRC mismatch at byte {offset} with "
                f"{size - end} bytes following (mid-log corruption)"
            )
        try:
            meta, blob = decode_payload(payload)
        except RecoveryError:
            raise
        except Exception as exc:
            raise RecoveryError(
                f"{path.name}: undecodable record at byte {offset}: {exc}"
            ) from exc
        records.append((meta, blob))
        offset = end
    return records, offset


# -- the log writer ----------------------------------------------------------------


class WriteAheadLog:
    """Appender for one WAL file, with power-loss emulation for tests.

    ``records_logged``/``durable_records`` count appends *of this
    session*; ``durable_records`` trails until the next fsync.  An
    injected crash truncates the file to the bytes known durable (last
    fsync) before raising, so the on-disk state is exactly what a real
    power loss at that instant could leave behind.
    """

    def __init__(self, path: str | os.PathLike, valid_bytes: int | None = None) -> None:
        self.path = Path(path)
        existed = self.path.exists()
        try:
            self._file = open(self.path, "r+b" if existed else "w+b")
        except OSError as exc:
            raise WalError(f"cannot open WAL file {self.path}: {exc}") from exc
        self._file.seek(0, os.SEEK_END)
        size = self._file.tell()
        if valid_bytes is not None and valid_bytes < size:
            # discard a torn tail left by a crash mid-append
            self._file.truncate(valid_bytes)
            size = valid_bytes
        if size < len(MAGIC):
            self._file.seek(0)
            self._file.truncate(0)
            self._file.write(MAGIC)
            size = len(MAGIC)
        self._file.seek(size)
        self._file.flush()
        os.fsync(self._file.fileno())
        self._size = size
        self._durable_bytes = size
        self._appends_since_sync = 0
        self._closed = False
        self.records_logged = 0
        self.durable_records = 0

    @property
    def size(self) -> int:
        """Bytes written (durable or not) including the magic header."""
        return self._size

    @property
    def durable_bytes(self) -> int:
        """Bytes guaranteed on disk as of the last fsync."""
        return self._durable_bytes

    @property
    def closed(self) -> bool:
        return self._closed

    def append(self, meta: dict[str, Any], blob: bytes | None = None) -> int:
        """Append one record (returns its index within this session).

        Honours the configured sync policy and the ``wal_*`` crash
        points; the record index keys the injector's deterministic draw.
        """
        if self._closed:
            raise WalError("write-ahead log is closed")
        frame = encode_record(meta, blob)
        lsn = self.records_logged
        registry = get_registry()
        injector = get_injector()
        if injector is not None and injector.fires("wal_torn_write", ("wal", lsn)):
            torn = 1 + zlib.crc32(frame) % max(1, len(frame) - 1)
            self._file.write(frame[:torn])
            self._sync()  # the torn fragment did reach the platter
            self._die(f"torn write: {torn} of {len(frame)} bytes persisted")
        self._file.write(frame)
        self._file.flush()
        self._size += len(frame)
        self.records_logged += 1
        self._appends_since_sync += 1
        registry.counter("wal.appends").inc()
        registry.counter("wal.bytes").inc(len(frame))
        if injector is not None and injector.fires("wal_pre_fsync", ("wal", lsn)):
            self._die("crash after append, before fsync")
        config = get_config()
        if config.wal_sync == "commit" or (
            config.wal_sync == "batch" and self._appends_since_sync >= config.wal_batch
        ):
            self._sync()
        if injector is not None and injector.fires("wal_post_append", ("wal", lsn)):
            self._die("crash after append (and any policy fsync)")
        return lsn

    def _sync(self) -> None:
        self._file.flush()
        os.fsync(self._file.fileno())
        self._durable_bytes = self._file.tell()
        self.durable_records = self.records_logged
        self._appends_since_sync = 0
        get_registry().counter("wal.fsyncs").inc()

    def _die(self, reason: str) -> None:
        # power-loss emulation: everything after the last fsync is gone
        self._file.flush()
        self._file.truncate(self._durable_bytes)
        self._file.close()
        self._closed = True
        raise SimulatedCrashError(f"injected crash in {self.path.name}: {reason}")

    def simulate_crash(self, reason: str) -> None:
        """Kill this log as an injected crash site outside :meth:`append`."""
        self._die(reason)

    def flush(self) -> None:
        """Force everything appended so far to disk (any sync policy)."""
        if self._closed:
            return
        if self._durable_bytes < self._size or self.durable_records < self.records_logged:
            self._sync()

    def close(self) -> None:
        """Flush (per :meth:`flush`) and close the file; idempotent."""
        if self._closed:
            return
        self.flush()
        self._file.close()
        self._closed = True


# -- atomic file helpers -----------------------------------------------------------


def _fsync_dir(path: Path) -> None:
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # platforms that cannot open directories
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _fsync_write(path: Path, write) -> None:
    with open(path, "wb") as handle:
        write(handle)
        handle.flush()
        os.fsync(handle.fileno())


def _atomic_write(path: Path, data: bytes) -> None:
    """Write-temp-then-``os.replace``: readers see old bytes or new, never torn."""
    tmp = path.with_name(path.name + ".tmp")
    _fsync_write(tmp, lambda handle: handle.write(data))
    os.replace(tmp, path)
    _fsync_dir(path.parent)


def _copy_fsync(source: Path, target: Path) -> None:
    """Copy a file and flush the copy to disk before returning."""
    shutil.copyfile(source, target)
    with open(target, "rb+") as handle:
        os.fsync(handle.fileno())


# -- checkpoint serialisation ------------------------------------------------------


def _json_scalar(value: Any) -> Any:
    value = python_value(value)
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    return str(value)


def _stats_to_manifest(
    table: "Table", stats: TableStatistics | None
) -> tuple[dict[str, Any] | None, dict[str, np.ndarray]]:
    """Split cached statistics into JSON metadata and dense npz arrays.

    Histogram and zone-map arrays are keyed by *column index* (manifest
    column order), which keeps npz key parsing unambiguous for column
    names containing separators.
    """
    if stats is None:
        return None, {}
    meta: dict[str, Any] = {"row_count": stats.row_count, "columns": {}, "zone_maps": {}}
    arrays: dict[str, np.ndarray] = {}
    order = {name: i for i, name in enumerate(table.column_names)}
    for name, cs in stats.columns.items():
        if name not in order:
            continue
        ci = order[name]
        meta["columns"][name] = {
            "dtype": cs.dtype.name,
            "row_count": cs.row_count,
            "null_count": cs.null_count,
            "distinct_count": cs.distinct_count,
            "min": _json_scalar(cs.min_value),
            "max": _json_scalar(cs.max_value),
            "hist": cs.bucket_bounds is not None,
        }
        if cs.bucket_bounds is not None:
            arrays[f"h{ci}b"] = cs.bucket_bounds
            arrays[f"h{ci}c"] = cs.bucket_counts
    for zone_rows, zone_map in stats.zone_maps.items():
        meta["zone_maps"][str(zone_rows)] = {
            "row_count": zone_map.row_count,
            "columns": [name for name in zone_map.columns if name in order],
        }
        for name, zones in zone_map.columns.items():
            if name not in order:
                continue
            prefix = f"z{zone_rows}_{order[name]}_"
            arrays[prefix + "min"] = zones.mins
            arrays[prefix + "max"] = zones.maxs
            arrays[prefix + "real"] = zones.real_counts
            arrays[prefix + "null"] = zones.null_counts
            arrays[prefix + "nan"] = zones.nan_counts
    return meta, arrays


def _stats_from_manifest(
    meta: dict[str, Any],
    arrays: dict[str, np.ndarray],
    column_order: list[str],
) -> TableStatistics:
    order = {name: i for i, name in enumerate(column_order)}
    columns: dict[str, ColumnStatistics] = {}
    for name, entry in meta.get("columns", {}).items():
        ci = order[name]
        bounds = arrays.get(f"h{ci}b") if entry.get("hist") else None
        counts = arrays.get(f"h{ci}c") if entry.get("hist") else None
        columns[name] = ColumnStatistics(
            dtype=DataType[entry["dtype"]],
            row_count=int(entry["row_count"]),
            null_count=int(entry["null_count"]),
            distinct_count=int(entry["distinct_count"]),
            min_value=entry.get("min"),
            max_value=entry.get("max"),
            bucket_bounds=bounds,
            bucket_counts=counts,
        )
    zone_maps: dict[int, ZoneMap] = {}
    for zone_key, zone_meta in meta.get("zone_maps", {}).items():
        zone_rows = int(zone_key)
        zone_columns: dict[str, ColumnZones] = {}
        for name in zone_meta.get("columns", []):
            prefix = f"z{zone_rows}_{order[name]}_"
            zone_columns[name] = ColumnZones(
                mins=arrays[prefix + "min"],
                maxs=arrays[prefix + "max"],
                real_counts=arrays[prefix + "real"],
                null_counts=arrays[prefix + "null"],
                nan_counts=arrays[prefix + "nan"],
            )
        zone_maps[zone_rows] = ZoneMap(
            zone_rows=zone_rows,
            row_count=int(zone_meta["row_count"]),
            columns=zone_columns,
        )
    return TableStatistics(
        row_count=int(meta["row_count"]), columns=columns, zone_maps=zone_maps
    )


def checkpoint_dir_name(checkpoint_id: int) -> str:
    """The on-disk directory name of a numbered checkpoint."""
    return f"checkpoint-{checkpoint_id:06d}"


def wal_file_name(checkpoint_id: int) -> str:
    """The log file paired with a checkpoint (``wal-NNNNNN.log``)."""
    return f"wal-{checkpoint_id:06d}.log"


def write_checkpoint(db: "Database", root: Path, checkpoint_id: int) -> Path:
    """Serialise every table (deltas already flushed) into a numbered dir.

    The manifest goes in last, atomically — its presence marks the
    directory complete.  The ``CURRENT`` swap is the *caller's* job, so
    a crash here leaves at worst an orphan directory.
    """
    directory = root / checkpoint_dir_name(checkpoint_id)
    if directory.exists():  # leftovers of a crashed earlier attempt
        shutil.rmtree(directory)
    directory.mkdir(parents=True)
    tables_meta = []
    for ti, name in enumerate(db.table_names()):
        table = db.main_table(name)
        columns_meta = []
        for ci, column_name in enumerate(table.column_names):
            column = table.column(column_name)
            stem = f"t{ti}_c{ci}"
            backing = column.backing
            if (
                backing is not None
                and ("dictionary" in backing.files or column.dictionary() is None)
                and all(path.exists() for path in backing.paths().values())
            ):
                # a mapped column IS its file bytes (copy-on-write keeps
                # it immutable), so checkpointing is a file copy — cold
                # data is never re-serialised, or even read
                files = {}
                for part, source in backing.paths().items():
                    file_name = f"{stem}.{part}.npy"
                    _copy_fsync(source, directory / file_name)
                    files[part] = file_name
            else:
                files = layouts.save_column_files(directory, stem, column)
            columns_meta.append(
                {
                    "name": column_name,
                    "dtype": table.schema.type_of(column_name).name,
                    "files": files,
                }
            )
        stats_meta, stats_arrays = _stats_to_manifest(table, db.cached_statistics(name))
        stats_file = None
        if stats_arrays or stats_meta:
            stats_file = f"t{ti}_stats.npz"
            _fsync_write(
                directory / stats_file,
                lambda handle, _a=stats_arrays: np.savez(handle, **_a),
            )
        layout = db.shard_layout(name)
        tables_meta.append(
            {
                "name": name,
                "row_count": table.num_rows,
                "columns": columns_meta,
                "stats": stats_meta,
                "stats_file": stats_file,
                "sharding": layout.to_manifest() if layout is not None else None,
            }
        )
    version = (
        _SHARDED_FORMAT_VERSION
        if any(meta["sharding"] is not None for meta in tables_meta)
        else _FORMAT_VERSION
    )
    manifest = {"format": version, "id": checkpoint_id, "tables": tables_meta}
    _atomic_write(directory / "MANIFEST.json", json.dumps(manifest, indent=1).encode())
    _fsync_dir(directory)
    return directory


def _load_checkpoint_dir(
    directory: Path, storage: str = "memory"
) -> list[tuple[str, "Table", TableStatistics | None, dict | None]]:
    from repro.engine.table import Table

    manifest = json.loads((directory / "MANIFEST.json").read_text())
    if manifest.get("format") not in _READABLE_FORMATS:
        raise ValueError(f"unsupported checkpoint format {manifest.get('format')!r}")
    tables: list[tuple[str, Table, TableStatistics | None, dict | None]] = []
    for table_meta in manifest["tables"]:
        columns = []
        for column_meta in table_meta["columns"]:
            dtype = DataType[column_meta["dtype"]]
            if "files" in column_meta:  # v2: raw per-part files, mmap-able
                column = layouts.open_column_files(
                    directory, column_meta["files"], dtype, mode=storage
                )
            else:  # v1: one .npz per column, always materialised
                column = layouts.load_column(str(directory / column_meta["file"]), dtype)
            columns.append((column_meta["name"], column))
        table = Table(columns)
        stats = None
        if table_meta.get("stats") is not None:
            arrays: dict[str, np.ndarray] = {}
            if table_meta.get("stats_file"):
                with np.load(
                    str(directory / table_meta["stats_file"]), allow_pickle=False
                ) as npz:
                    arrays = {key: npz[key] for key in npz.files}
            stats = _stats_from_manifest(
                table_meta["stats"], arrays, [n for n, _ in columns]
            )
        tables.append((table_meta["name"], table, stats, table_meta.get("sharding")))
    return tables


def _checkpoint_id_of(name: str) -> int | None:
    prefix = "checkpoint-"
    if not name.startswith(prefix):
        return None
    try:
        return int(name[len(prefix) :])
    except ValueError:
        return None


def load_checkpoint(
    root: Path, storage: str = "memory"
) -> tuple[int, list[tuple[str, "Table", TableStatistics | None, dict | None]]] | None:
    """The newest *valid* checkpoint under ``root``, or None.

    ``CURRENT`` is tried first; if it is missing or names a broken
    directory, every numbered directory is tried newest-first.  An
    orphan left by a crash between manifest write and ``CURRENT`` swap
    is a complete, correct recovery source (it already contains every
    record of the log it was meant to supersede).
    """
    candidates: list[str] = []
    current = root / "CURRENT"
    if current.exists():
        name = current.read_text().strip()
        if _checkpoint_id_of(name) is not None:
            candidates.append(name)
    numbered = sorted(
        (
            entry.name
            for entry in root.iterdir()
            if entry.is_dir() and _checkpoint_id_of(entry.name) is not None
        ),
        key=_checkpoint_id_of,
        reverse=True,
    )
    candidates.extend(name for name in numbered if name not in candidates)
    for name in candidates:
        directory = root / name
        try:
            tables = _load_checkpoint_dir(directory, storage)
        except (OSError, ValueError, KeyError, TypeError, zipfile.BadZipFile):
            continue  # incomplete or damaged: fall back to an older one
        return _checkpoint_id_of(name), tables
    return None


# -- the durability manager --------------------------------------------------------

_REPLAY_OPS = frozenset({"sql", "create", "replace", "drop", "merge", "shard"})


class DurabilityManager:
    """One database's durable root: checkpoints, the live WAL, recovery."""

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise WalError(f"cannot create durability root {self.root}: {exc}") from exc
        self.checkpoint_id = 0
        self.wal: WriteAheadLog | None = None
        self.last_recovery: dict[str, Any] = {}
        # merge scratch dirs holding remapped mains (mmap mode only);
        # retired by the next checkpoint, rebuilt by replay on recovery
        self._live_counter = 0
        self._live_dirs: dict[str, Path] = {}

    def wal_path(self, checkpoint_id: int | None = None) -> Path:
        """Path of the log paired with a checkpoint (default: the live one)."""
        if checkpoint_id is None:
            checkpoint_id = self.checkpoint_id
        return self.root / wal_file_name(checkpoint_id)

    # -- recovery -------------------------------------------------------------------

    def open_into(self, db: "Database") -> dict[str, Any]:
        """Load checkpoint + WAL into ``db`` and arm the log for appends."""
        loaded = load_checkpoint(self.root, layouts.get_config().storage)
        tables: list[tuple[str, Any, TableStatistics | None, dict | None]] = []
        if loaded is not None:
            self.checkpoint_id, tables = loaded
        for name, table, stats, sharding in tables:
            db._install_recovered(name, table, stats, sharding=sharding)
        records, valid_bytes = read_wal(self.wal_path())
        # arm the writer first: it truncates any torn tail away
        self.wal = WriteAheadLog(self.wal_path(), valid_bytes=valid_bytes)
        with trace(
            "recovery.replay", records=len(records), checkpoint=self.checkpoint_id
        ):
            replayed, failed = self.replay_into(db, records)
        self._cleanup()
        self.last_recovery = {
            "checkpoint": self.checkpoint_id if loaded is not None else None,
            "tables_restored": len(tables),
            "records_replayed": replayed,
            "records_failed": failed,
        }
        return self.last_recovery

    def replay_into(self, db: "Database", records) -> tuple[int, int]:
        """Re-apply recovered records; returns (replayed, failed) counts.

        Records are logged after statement validation, so a replay
        failure means the environment diverged (e.g. a config-dependent
        limit); it is counted and skipped rather than aborting recovery.
        """
        registry = get_registry()
        replayed = failed = 0
        db._replaying = True
        try:
            for meta, blob in records:
                op = meta.get("op")
                if op not in _REPLAY_OPS:
                    raise RecoveryError(f"unknown WAL operation {op!r}")
                try:
                    if op == "sql":
                        db.execute(meta["stmt"])
                    elif op == "create":
                        db.create_table(meta["table"], layouts.table_from_bytes(blob))
                    elif op == "replace":
                        db.replace_table(meta["table"], layouts.table_from_bytes(blob))
                    elif op == "drop":
                        db.drop_table(meta["table"])
                    elif op == "merge":
                        if db.has_table(meta["table"]):
                            db.flush_deltas(meta["table"])
                    elif op == "shard":
                        if db.has_table(meta["table"]):
                            mode = meta.get("mode")
                            db.apply_sharding(
                                meta["table"],
                                int(meta.get("shards", 0)),
                                shard_by=(
                                    f"{mode}({meta['key']})" if mode else None
                                ),
                            )
                except ReproError:
                    failed += 1
                    continue
                replayed += 1
        finally:
            db._replaying = False
        registry.counter("recovery.records_replayed").inc(replayed)
        if failed:
            registry.counter("recovery.records_failed").inc(failed)
        return replayed, failed

    # -- checkpointing --------------------------------------------------------------

    def checkpoint(self, db: "Database") -> Path:
        """Write checkpoint ``id+1``, swap ``CURRENT``, retire the old log."""
        if self.wal is None:
            raise WalError("durability manager is not open")
        self.wal.flush()
        next_id = self.checkpoint_id + 1
        directory = write_checkpoint(db, self.root, next_id)
        new_wal_path = self.wal_path(next_id)
        if new_wal_path.exists():
            new_wal_path.unlink()
        new_wal = WriteAheadLog(new_wal_path)
        injector = get_injector()
        if injector is not None and injector.fires(
            "crash_mid_checkpoint", ("checkpoint", next_id)
        ):
            new_wal.close()
            # dir + new log exist, CURRENT still points at the old pair
            self.wal.simulate_crash(f"crash mid-checkpoint {next_id}")
        _atomic_write(self.root / "CURRENT", (directory.name + "\n").encode())
        old_wal, old_id = self.wal, self.checkpoint_id
        self.wal, self.checkpoint_id = new_wal, next_id
        old_wal.close()
        self._remove_pair(old_id)
        get_registry().counter("write.checkpoints").inc()
        return directory

    def spill_table(self, name: str, table, schema_types) -> "Table":
        """Persist a rewritten main to a live scratch dir; reopen it mapped.

        When a memory-mapped main is rewritten by a delta merge, the
        checkpoint files backing the old main must stay untouched — they
        are the recovery source until the next checkpoint.  The merged
        table is therefore written to a ``live-NNNNNN`` directory
        (write-temp-then-``os.replace``) and reopened as read-only mmap
        views.  Live dirs are scratch: recovery rebuilds them by
        replaying the WAL's merge markers, and the next checkpoint (which
        re-homes the data into its own directory) retires them.
        """
        from repro.engine.table import Table

        self._live_counter += 1
        final = self.root / f"live-{self._live_counter:06d}"
        tmp = self.root / f"live-{self._live_counter:06d}.tmp"
        for leftover in (tmp, final):  # stale dirs from a crashed session
            if leftover.exists():
                shutil.rmtree(leftover)
        tmp.mkdir(parents=True)
        files_by_column: dict[str, dict[str, str]] = {}
        for ci, column_name in enumerate(table.column_names):
            files_by_column[column_name] = layouts.save_column_files(
                tmp, f"c{ci}", table.column(column_name)
            )
        os.replace(tmp, final)
        _fsync_dir(self.root)
        columns = []
        for column_name in table.column_names:
            columns.append((
                column_name,
                layouts.open_column_files(
                    final,
                    files_by_column[column_name],
                    schema_types[column_name],
                    mode="mmap",
                ),
            ))
        old = self._live_dirs.pop(name, None)
        self._live_dirs[name] = final
        if old is not None:
            shutil.rmtree(old, ignore_errors=True)
        return Table(columns)

    def release_live_dirs(self) -> None:
        """Drop merge scratch dirs (after a checkpoint re-homed the data)."""
        for path in self._live_dirs.values():
            shutil.rmtree(path, ignore_errors=True)
        self._live_dirs.clear()

    def crash_point(self, point: str, key: Any) -> None:
        """Fire an injected crash at a named durability site, if configured."""
        injector = get_injector()
        if injector is None or self.wal is None or self.wal.closed:
            return
        if injector.fires(point, (point, key)):
            self.wal.simulate_crash(point)

    # -- housekeeping ---------------------------------------------------------------

    def _remove_pair(self, checkpoint_id: int) -> None:
        try:
            shutil.rmtree(self.root / checkpoint_dir_name(checkpoint_id), ignore_errors=True)
            path = self.wal_path(checkpoint_id)
            if path.exists():
                path.unlink()
        except OSError:
            pass  # cleanup is best-effort; recovery tolerates leftovers

    def _cleanup(self) -> None:
        """Drop orphan checkpoint dirs / logs from crashed checkpoints."""
        live = set(self._live_dirs.values())
        for entry in list(self.root.iterdir()):
            if entry.is_dir():
                orphan = _checkpoint_id_of(entry.name)
                if orphan is not None and orphan != self.checkpoint_id:
                    shutil.rmtree(entry, ignore_errors=True)
                elif entry.name.startswith("live-") and entry not in live:
                    # merge scratch from a previous session; replay has
                    # already rebuilt any dirs still needed
                    shutil.rmtree(entry, ignore_errors=True)
            elif entry.name.startswith("wal-") and entry.name.endswith(".log"):
                if entry.name != wal_file_name(self.checkpoint_id):
                    try:
                        entry.unlink()
                    except OSError:
                        pass

    def status(self) -> dict[str, Any]:
        """Introspection for the shell's ``\\wal`` command and tests."""
        wal = self.wal
        return {
            "root": str(self.root),
            "checkpoint_id": self.checkpoint_id,
            "wal_file": wal_file_name(self.checkpoint_id),
            "wal_bytes": wal.size if wal is not None else 0,
            "durable_bytes": wal.durable_bytes if wal is not None else 0,
            "records_logged": wal.records_logged if wal is not None else 0,
            "durable_records": wal.durable_records if wal is not None else 0,
            "sync_policy": get_config().wal_sync,
            "logging": get_config().wal,
        }

    def close(self) -> None:
        """Flush and close the live WAL; idempotent."""
        if self.wal is not None:
            self.wal.close()
