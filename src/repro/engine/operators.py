"""Vectorised physical operators.

Each operator is a pure function from tables/columns to tables/columns.
The executor composes them according to the plan produced by the planner.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.engine import scanopt
from repro.engine.column import Column, column_from_parts
from repro.engine.expressions import Expression, strip_outer_parens, truth_mask
from repro.engine.sql.ast import AggregateCall, OrderItem, SelectItem
from repro.engine.table import Table
from repro.engine.types import DataType
from repro.errors import ExecutionError
from repro.obs.tracing import trace


def filter_table(table: Table, predicate: Expression) -> Table:
    """Keep rows where ``predicate`` is strictly TRUE (SQL WHERE rule)."""
    with trace("op.filter", rows=table.num_rows):
        return table.filter(truth_mask(predicate, table))


def project(table: Table, items: Sequence[SelectItem]) -> Table:
    """Evaluate a non-aggregate select list."""
    columns: list[tuple[str, Column]] = []
    for item in items:
        if item.star:
            columns.extend((name, table.column(name)) for name in table.column_names)
            continue
        if item.aggregate is not None:
            raise ExecutionError("project() cannot evaluate aggregates")
        assert item.expression is not None
        columns.append((item.output_name(), item.expression.evaluate(table)))
    return Table(columns)


def limit(table: Table, n: int) -> Table:
    """First ``n`` rows; a negative ``n`` behaves like LIMIT 0."""
    return table.slice(0, min(max(0, n), table.num_rows))


# -- deduplication -----------------------------------------------------------------


def distinct(table: Table) -> Table:
    """Drop duplicate rows, keeping the first occurrence of each (in order).

    Equality semantics: NULL equals NULL and NaN equals NaN, so at most
    one all-NULL duplicate and one NaN duplicate survive per key
    combination; NULL, NaN and real values are mutually distinct.
    """
    if table.num_rows <= 1:
        return table
    with trace("op.distinct", rows=table.num_rows):
        codes = np.empty((table.num_rows, table.num_columns), dtype=np.int64)
        for j, name in enumerate(table.column_names):
            codes[:, j] = _distinct_codes(table.column(name))
        _, first_seen = np.unique(codes, axis=0, return_index=True)
        return table.take(np.sort(first_seen))


def _string_codes(column: Column) -> np.ndarray | None:
    """Dictionary codes of a STRING column, when encoded and enabled.

    Codes are order-isomorphic to the strings they stand for (equal codes
    iff equal strings, code order = string order), so they substitute for
    the payload in equality- and order-based operators.
    """
    if not scanopt.get_config().dict_encode:
        return None
    encoded = column.dictionary()
    return encoded[0] if encoded is not None else None


def _distinct_codes(column: Column) -> np.ndarray:
    """Integer codes with equal codes iff values are DISTINCT-equal.

    Code 0 marks NULL and code 1 marks NaN; real values get dense codes
    from 2 upward, so the special values never collide with payloads.
    """
    null = column.is_null_mask()
    if column.dtype is DataType.STRING:
        dict_codes = _string_codes(column)
        if dict_codes is not None:
            codes = dict_codes.astype(np.int64) + 2
            codes[null] = 0
            return codes
        data = np.asarray(
            ["" if v is None else str(v) for v in column.data], dtype=str
        )
        _, inverse = np.unique(data, return_inverse=True)
        codes = inverse.astype(np.int64) + 2
        codes[null] = 0
        return codes
    data = column.data.astype(np.float64, copy=False)
    nan = np.isnan(data) & ~null
    _, inverse = np.unique(np.where(nan | null, 0.0, data), return_inverse=True)
    codes = inverse.astype(np.int64) + 2
    codes[nan] = 1
    codes[null] = 0
    return codes


# -- sorting -----------------------------------------------------------------------


def _sort_key_array(column: Column) -> np.ndarray:
    """A comparable payload array for argsort.

    Null slots hold harmless placeholder payloads; their ordering is
    decided separately from the validity mask (see
    :func:`_argsort_with_nulls`), so real ``-inf`` floats and real empty
    strings sort correctly relative to NULL.
    """
    if column.dtype is DataType.STRING:
        dict_codes = _string_codes(column)
        if dict_codes is not None:
            # order-isomorphic to the strings, so argsort order matches
            return dict_codes
        return np.asarray(
            ["" if v is None else str(v) for v in column.to_list()], dtype=str
        )
    return column.data.astype(np.float64, copy=False)


def _argsort_with_nulls(
    keys: np.ndarray, nulls: np.ndarray, ascending: bool
) -> np.ndarray:
    """Stable argsort that orders NULL below every real value.

    NULLs come first under ASC and last under DESC, keeping their
    original relative order; valid keys are sorted stably.
    """
    null_idx = np.flatnonzero(nulls)
    valid_idx = np.flatnonzero(~nulls)
    order = valid_idx[np.argsort(keys[valid_idx], kind="stable")]
    if ascending:
        return np.concatenate([null_idx, order])
    order = order[::-1]
    # keep equal keys in stable (original) order under DESC
    order = _stabilise_descending(keys, order)
    return np.concatenate([order, null_idx])


def order_keys(
    table: Table, order_by: Sequence[OrderItem]
) -> list[tuple[np.ndarray, np.ndarray, bool]]:
    """Evaluate ORDER BY keys to ``(payload, null_mask, ascending)`` triples.

    The payload/null arrays are positionally aligned with ``table``; they
    are the unit the morsel-parallel sort shards and merges.
    """
    keys = []
    for item in order_by:
        column = item.expression.evaluate(table)
        keys.append((_sort_key_array(column), column.is_null_mask(), item.ascending))
    return keys


def sort_positions(
    keys: Sequence[tuple[np.ndarray, np.ndarray, bool]], positions: np.ndarray
) -> np.ndarray:
    """Stable multi-key sort of a row subset, returned as row positions.

    ``positions`` selects (and orders) the rows to sort; key arrays are
    indexed globally, so disjoint position ranges can be sorted
    independently and merged.
    """
    indices = positions
    # numpy's stable sort applied from the least-significant key backwards
    for key_arr, nulls, ascending in reversed(list(keys)):
        indices = indices[_argsort_with_nulls(key_arr[indices], nulls[indices], ascending)]
    return indices


def sort_table(table: Table, order_by: Sequence[OrderItem]) -> Table:
    """Stable multi-key sort."""
    if not order_by:
        return table
    with trace("op.sort", rows=table.num_rows, keys=len(order_by)):
        positions = sort_positions(
            order_keys(table, order_by), np.arange(table.num_rows)
        )
        return table.take(positions)


def _stabilise_descending(keys: np.ndarray, order: np.ndarray) -> np.ndarray:
    """Re-stabilise a reversed ascending argsort for descending order."""
    sorted_keys = keys[order]
    result = order.copy()
    start = 0
    n = len(order)
    while start < n:
        end = start + 1
        while end < n and sorted_keys[end] == sorted_keys[start]:
            end += 1
        if end - start > 1:
            result[start:end] = np.sort(order[start:end])
        start = end
    return result


# -- joins --------------------------------------------------------------------------


def hash_join(
    left: Table,
    right: Table,
    left_key: str,
    right_key: str,
    kind: str = "inner",
) -> Table:
    """Equi-join two tables on one key column each.

    Columns of the right table that clash with left column names are
    prefixed with ``right_`` in the output; if the prefixed name is
    itself taken (a left column literally named ``right_<x>``), further
    ``right_`` prefixes are prepended until the name is unique, so the
    output never carries duplicate columns.  ``kind`` is ``inner`` or
    ``left``; a left join emits unmatched left rows with NULL right columns.
    """
    if kind not in ("inner", "left"):
        raise ExecutionError(f"unsupported join kind {kind!r}")
    with trace("op.hash_join", left_rows=left.num_rows, right_rows=right.num_rows, kind=kind):
        left_idx, right_idx = _match_join_keys(
            left.column(left_key), right.column(right_key), kind
        )
        out: list[tuple[str, Column]] = [
            (name, left.column(name).take(left_idx)) for name in left.column_names
        ]
        pad_mask = right_idx < 0
        safe_right_idx = np.where(pad_mask, 0, right_idx)
        used_names = set(left.column_names)
        for name in right.column_names:
            out_name = name
            while out_name in used_names:
                out_name = f"right_{out_name}"
            used_names.add(out_name)
            source = right.column(name)
            if len(right) == 0:
                # all output rows (if any) are left-join padding: emit nulls
                taken = column_from_parts(
                    np.zeros(len(left_idx), dtype=source.dtype.numpy_dtype),
                    source.dtype,
                    np.zeros(len(left_idx), dtype=bool) if len(left_idx) else None,
                )
                out.append((out_name, taken))
                continue
            taken = source.take(safe_right_idx)
            if pad_mask.any():
                validity = (
                    taken.validity.copy() if taken.validity is not None
                    else np.ones(len(taken), bool)
                )
                validity[pad_mask] = False
                taken = column_from_parts(taken.data, taken.dtype, validity)
            out.append((out_name, taken))
        if left.num_rows and not out:
            raise ExecutionError("join produced no columns")
        return Table(out) if out else left


def _join_key_array(column: Column) -> np.ndarray:
    """A comparable key array for join matching (nulls handled by mask)."""
    if column.dtype is DataType.STRING:
        return np.asarray(
            ["" if v is None else str(v) for v in column.data], dtype=str
        )
    return column.data.astype(np.float64, copy=False)


def _match_join_keys(
    left_col: Column, right_col: Column, kind: str
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised equi-join matching.

    Returns aligned (left row, right row) index arrays in left-row order,
    with matches for one left row in right-row order; a right index of -1
    marks left-join padding.  Null keys never match.
    """
    if (left_col.dtype is DataType.STRING) != (right_col.dtype is DataType.STRING):
        # incomparable key types: nothing joins
        n_left = len(left_col)
        if kind == "left":
            return (
                np.arange(n_left, dtype=np.int64),
                np.full(n_left, -1, dtype=np.int64),
            )
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)

    left_vals = _join_key_array(left_col)
    right_vals = _join_key_array(right_col)
    left_valid = ~left_col.is_null_mask()
    right_valid = ~right_col.is_null_mask()

    # group right rows by key (valid rows only)
    right_rows = np.flatnonzero(right_valid)
    unique_keys, inverse = (
        np.unique(right_vals[right_rows], return_inverse=True)
        if len(right_rows)
        else (right_vals[:0], np.empty(0, dtype=np.int64))
    )
    order = np.argsort(inverse, kind="stable")
    grouped_rows = right_rows[order]  # right row ids, grouped by key, ascending
    counts_per_key = np.bincount(inverse, minlength=len(unique_keys))
    group_starts = np.concatenate([[0], np.cumsum(counts_per_key)[:-1]])

    # probe: locate each left key among the unique right keys
    if len(unique_keys) == 0:
        matched = np.zeros(len(left_vals), dtype=bool)
        match_counts = np.zeros(len(left_vals), dtype=np.int64)
        clipped = np.zeros(len(left_vals), dtype=np.int64)
    else:
        positions = np.searchsorted(unique_keys, left_vals)
        clipped = np.clip(positions, 0, len(unique_keys) - 1)
        matched = (
            left_valid
            & (positions < len(unique_keys))
            & (unique_keys[clipped] == left_vals)
        )
        match_counts = np.where(matched, counts_per_key[clipped], 0)
    if kind == "left":
        out_counts = np.maximum(match_counts, 1)  # unmatched rows emit padding
    else:
        out_counts = match_counts

    total = int(out_counts.sum())
    left_idx = np.repeat(np.arange(len(left_vals), dtype=np.int64), out_counts)
    right_idx = np.full(total, -1, dtype=np.int64)
    # fill matched slots: for each matched left row, a contiguous run of
    # its key group in `grouped_rows`
    run_starts = np.cumsum(out_counts) - out_counts
    matched_rows = np.flatnonzero(matched & (match_counts > 0))
    if len(matched_rows):
        starts = group_starts[clipped[matched_rows]]
        counts = match_counts[matched_rows]
        flat_targets = np.repeat(run_starts[matched_rows], counts)
        flat_sources = np.repeat(starts, counts)
        intra = np.arange(int(counts.sum())) - np.repeat(
            np.cumsum(counts) - counts, counts
        )
        right_idx[flat_targets + intra] = grouped_rows[flat_sources + intra]
    return left_idx, right_idx


# -- aggregation ------------------------------------------------------------------------


def _aggregate_values(call: AggregateCall, column: Column | None, group_size: int) -> Any:
    """Evaluate one aggregate over the (already filtered) group values."""
    if call.argument is None:  # COUNT(*)
        return group_size
    assert column is not None
    if call.function == "COUNT":
        if call.distinct:
            return len({v for v in column.to_list() if v is not None})
        return group_size - column.null_count()
    valid = column.valid_data()
    if call.distinct:
        if column.dtype is DataType.STRING:
            valid = np.asarray(sorted(set(valid)), dtype=object)
        else:
            valid = np.unique(valid)
    if len(valid) == 0:
        return None
    if call.function == "SUM":
        return float(valid.sum()) if column.dtype is DataType.FLOAT64 else int(valid.sum())
    if call.function == "AVG":
        return float(np.mean(valid.astype(np.float64)))
    if call.function == "MIN":
        value = min(valid) if column.dtype is DataType.STRING else valid.min()
        return value if isinstance(value, str) else value.item()
    if call.function == "MAX":
        value = max(valid) if column.dtype is DataType.STRING else valid.max()
        return value if isinstance(value, str) else value.item()
    raise ExecutionError(f"unknown aggregate function {call.function}")


def hash_aggregate(
    table: Table,
    group_exprs: Sequence[Expression],
    aggregates: Sequence[tuple[str, AggregateCall]],
    group_names: Sequence[str] | None = None,
) -> Table:
    """GROUP BY via hashing on materialised key columns.

    Args:
        table: input rows (already WHERE-filtered).
        group_exprs: grouping expressions; empty means a single global group.
        aggregates: (output name, call) pairs.
        group_names: output names for the group keys; defaults to the
            expressions' SQL text.

    Returns:
        One row per group: key columns first, aggregate columns after.
    """
    with trace("op.hash_aggregate", rows=table.num_rows, keys=len(group_exprs)):
        names = list(group_names) if group_names is not None else [
            strip_outer_parens(e.to_sql()) for e in group_exprs
        ]
        key_columns = [expr.evaluate(table) for expr in group_exprs]
        arg_columns: dict[int, Column] = {}
        for i, (_, call) in enumerate(aggregates):
            if call.argument is not None:
                arg_columns[i] = call.argument.evaluate(table)

        if not group_exprs:
            row: list[Any] = []
            for i, (_, call) in enumerate(aggregates):
                row.append(_aggregate_values(call, arg_columns.get(i), table.num_rows))
            return Table.from_rows([tuple(row)], [name for name, _ in aggregates])

        grouped = _group_rows(key_columns, table.num_rows)

        out_rows: list[tuple[Any, ...]] = []
        for key, idx in grouped:
            row_values: list[Any] = list(key)
            for i, (_, call) in enumerate(aggregates):
                arg = arg_columns.get(i)
                sliced = arg.take(idx) if arg is not None else None
                row_values.append(_aggregate_values(call, sliced, len(idx)))
            out_rows.append(tuple(row_values))
        out_names = names + [name for name, _ in aggregates]
        return Table.from_rows(out_rows, out_names)


def _group_rows(
    key_columns: list[Column], num_rows: int
) -> list[tuple[tuple[Any, ...], np.ndarray]]:
    """Partition row indices by key tuple, in first-appearance order.

    Null-free key columns go through a vectorised ``np.unique`` path;
    anything else falls back to a per-row hash loop.
    """
    if num_rows == 0:
        return []
    if all(not column.has_nulls for column in key_columns):
        codes = np.zeros(num_rows, dtype=np.int64)
        for column in key_columns:
            if column.dtype is DataType.STRING:
                dict_codes = _string_codes(column)
                if dict_codes is not None:
                    data = dict_codes
                else:
                    data = np.asarray(
                        ["" if v is None else str(v) for v in column.data], dtype=str
                    )
            else:
                data = column.data
            _, inverse = np.unique(data, return_inverse=True)
            codes = codes * (int(inverse.max()) + 1 if len(inverse) else 1) + inverse
        order = np.argsort(codes, kind="stable")
        sorted_codes = codes[order]
        boundaries = np.flatnonzero(sorted_codes[1:] != sorted_codes[:-1]) + 1
        starts = np.concatenate([[0], boundaries])
        ends = np.concatenate([boundaries, [num_rows]])
        groups = []
        for start, end in zip(starts, ends):
            idx = np.sort(order[start:end])
            key = tuple(column[int(idx[0])] for column in key_columns)
            groups.append((key, idx))
        groups.sort(key=lambda item: int(item[1][0]))  # first-appearance order
        return groups

    buckets: dict[tuple[Any, ...], list[int]] = {}
    order_keys: list[tuple[Any, ...]] = []
    for row_idx in range(num_rows):
        key = tuple(column[row_idx] for column in key_columns)
        bucket = buckets.get(key)
        if bucket is None:
            buckets[key] = [row_idx]
            order_keys.append(key)
        else:
            bucket.append(row_idx)
    return [
        (key, np.asarray(buckets[key], dtype=np.int64)) for key in order_keys
    ]
