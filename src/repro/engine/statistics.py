"""Per-column statistics used by the planner and the exploration layers.

These are the classical optimizer statistics: row counts, min/max, distinct
counts, and a small equi-width histogram per numeric column.  The
selectivity estimators implement the textbook uniformity assumptions and are
deliberately simple; the point of the exploration work in the paper is
precisely that such static statistics are insufficient for ad-hoc
workloads, which the adaptive components then address.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.engine.column import Column
from repro.engine.table import Table
from repro.engine.types import DataType

_HISTOGRAM_BUCKETS = 32


@dataclass
class ColumnStatistics:
    """Summary statistics of one column."""

    dtype: DataType
    row_count: int
    null_count: int
    distinct_count: int
    min_value: Any = None
    max_value: Any = None
    bucket_bounds: np.ndarray | None = None
    bucket_counts: np.ndarray | None = None

    @classmethod
    def from_column(cls, column: Column) -> "ColumnStatistics":
        """Compute statistics for a column in one pass."""
        valid = column.valid_data()
        stats = cls(
            dtype=column.dtype,
            row_count=len(column),
            null_count=column.null_count(),
            distinct_count=column.distinct_count(),
            min_value=column.min(),
            max_value=column.max(),
        )
        if column.dtype.is_numeric and len(valid) > 0:
            lo = float(valid.min())
            hi = float(valid.max())
            if hi > lo:
                counts, bounds = np.histogram(
                    valid.astype(np.float64), bins=_HISTOGRAM_BUCKETS, range=(lo, hi)
                )
                stats.bucket_bounds = bounds
                stats.bucket_counts = counts
        return stats

    # -- selectivity estimation ---------------------------------------------------

    def estimate_equality_selectivity(self, value: Any = None) -> float:
        """Fraction of rows expected to equal a point value (1/NDV)."""
        if self.row_count == 0 or self.distinct_count == 0:
            return 0.0
        if (
            value is not None
            and self.dtype.is_numeric
            and self.min_value is not None
            and not (self.min_value <= value <= self.max_value)
        ):
            return 0.0
        return 1.0 / self.distinct_count

    def estimate_range_selectivity(
        self, low: float | None, high: float | None
    ) -> float:
        """Fraction of rows expected inside ``[low, high]``.

        Uses the histogram when present, otherwise a linear interpolation
        between min and max.  Non-numeric columns fall back to 1/3 (the
        classical System R default).
        """
        if self.row_count == 0:
            return 0.0
        if not self.dtype.is_numeric or self.min_value is None:
            return 1.0 / 3.0
        lo = float(self.min_value) if low is None else float(low)
        hi = float(self.max_value) if high is None else float(high)
        if hi < lo:
            return 0.0
        if self.bucket_bounds is not None and self.bucket_counts is not None:
            return self._histogram_fraction(lo, hi)
        span = float(self.max_value) - float(self.min_value)
        if span <= 0:
            return 1.0 if lo <= float(self.min_value) <= hi else 0.0
        clipped_lo = max(lo, float(self.min_value))
        clipped_hi = min(hi, float(self.max_value))
        if clipped_hi < clipped_lo:
            return 0.0
        return (clipped_hi - clipped_lo) / span

    def _histogram_fraction(self, lo: float, hi: float) -> float:
        assert self.bucket_bounds is not None and self.bucket_counts is not None
        bounds = self.bucket_bounds
        counts = self.bucket_counts
        total = counts.sum()
        if total == 0:
            return 0.0
        covered = 0.0
        for i in range(len(counts)):
            b_lo, b_hi = float(bounds[i]), float(bounds[i + 1])
            if b_hi < lo or b_lo > hi:
                continue
            width = b_hi - b_lo
            if width <= 0:
                covered += counts[i] if lo <= b_lo <= hi else 0.0
                continue
            overlap = min(hi, b_hi) - max(lo, b_lo)
            covered += counts[i] * max(0.0, overlap) / width
        return min(1.0, covered / total)


@dataclass
class TableStatistics:
    """Statistics for every column of a table."""

    row_count: int
    columns: dict[str, ColumnStatistics] = field(default_factory=dict)

    @classmethod
    def from_table(cls, table: Table) -> "TableStatistics":
        """Compute statistics for every column."""
        return cls(
            row_count=table.num_rows,
            columns={
                name: ColumnStatistics.from_column(table.column(name))
                for name in table.column_names
            },
        )

    def column(self, name: str) -> ColumnStatistics | None:
        """Statistics for one column, or None if unknown."""
        return self.columns.get(name)
