"""Per-column statistics used by the planner and the exploration layers.

These are the classical optimizer statistics: row counts, min/max, distinct
counts, and a small equi-width histogram per numeric column.  The
selectivity estimators implement the textbook uniformity assumptions and are
deliberately simple; the point of the exploration work in the paper is
precisely that such static statistics are insufficient for ad-hoc
workloads, which the adaptive components then address.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.engine.column import Column
from repro.engine.table import Table
from repro.engine.types import DataType

_HISTOGRAM_BUCKETS = 32


@dataclass
class ColumnStatistics:
    """Summary statistics of one column."""

    dtype: DataType
    row_count: int
    null_count: int
    distinct_count: int
    min_value: Any = None
    max_value: Any = None
    bucket_bounds: np.ndarray | None = None
    bucket_counts: np.ndarray | None = None

    @classmethod
    def from_column(cls, column: Column) -> "ColumnStatistics":
        """Compute statistics for a column in one pass."""
        valid = column.valid_data()
        stats = cls(
            dtype=column.dtype,
            row_count=len(column),
            null_count=column.null_count(),
            distinct_count=column.distinct_count(),
            min_value=column.min(),
            max_value=column.max(),
        )
        if column.dtype.is_numeric and len(valid) > 0:
            lo = float(valid.min())
            hi = float(valid.max())
            if hi > lo:
                counts, bounds = np.histogram(
                    valid.astype(np.float64), bins=_HISTOGRAM_BUCKETS, range=(lo, hi)
                )
                stats.bucket_bounds = bounds
                stats.bucket_counts = counts
        return stats

    # -- selectivity estimation ---------------------------------------------------

    def estimate_equality_selectivity(self, value: Any = None) -> float:
        """Fraction of rows expected to equal a point value (1/NDV)."""
        if self.row_count == 0 or self.distinct_count == 0:
            return 0.0
        if (
            value is not None
            and self.dtype.is_numeric
            and self.min_value is not None
            and not (self.min_value <= value <= self.max_value)
        ):
            return 0.0
        return 1.0 / self.distinct_count

    def estimate_range_selectivity(
        self, low: float | None, high: float | None
    ) -> float:
        """Fraction of rows expected inside ``[low, high]``.

        Uses the histogram when present, otherwise a linear interpolation
        between min and max.  Non-numeric columns fall back to 1/3 (the
        classical System R default).
        """
        if self.row_count == 0:
            return 0.0
        if not self.dtype.is_numeric or self.min_value is None:
            return 1.0 / 3.0
        lo = float(self.min_value) if low is None else float(low)
        hi = float(self.max_value) if high is None else float(high)
        if hi < lo:
            return 0.0
        if self.bucket_bounds is not None and self.bucket_counts is not None:
            return self._histogram_fraction(lo, hi)
        span = float(self.max_value) - float(self.min_value)
        if span <= 0:
            return 1.0 if lo <= float(self.min_value) <= hi else 0.0
        clipped_lo = max(lo, float(self.min_value))
        clipped_hi = min(hi, float(self.max_value))
        if clipped_hi < clipped_lo:
            return 0.0
        return (clipped_hi - clipped_lo) / span

    def _histogram_fraction(self, lo: float, hi: float) -> float:
        assert self.bucket_bounds is not None and self.bucket_counts is not None
        bounds = self.bucket_bounds
        counts = self.bucket_counts
        total = counts.sum()
        if total == 0:
            return 0.0
        covered = 0.0
        for i in range(len(counts)):
            b_lo, b_hi = float(bounds[i]), float(bounds[i + 1])
            if b_hi < lo or b_lo > hi:
                continue
            width = b_hi - b_lo
            if width <= 0:
                covered += counts[i] if lo <= b_lo <= hi else 0.0
                continue
            overlap = min(hi, b_hi) - max(lo, b_lo)
            covered += counts[i] * max(0.0, overlap) / width
        return min(1.0, covered / total)


@dataclass
class ColumnZones:
    """Per-zone summaries of one numeric column.

    ``mins``/``maxs`` stay in the column's native dtype (an int64 bound
    cast to float64 could round across a probe value) and cover valid,
    non-NaN values only; a zone with none has ``real_counts`` 0 and
    meaningless bounds.  ``null_counts``/``nan_counts`` record how many
    rows carry no comparable value.  NULL/NaN rows never satisfy a range
    probe, so min/max disproof stays sound; proving a zone *passes*
    additionally requires both counts to be zero.
    """

    mins: np.ndarray
    maxs: np.ndarray
    real_counts: np.ndarray
    null_counts: np.ndarray
    nan_counts: np.ndarray


@dataclass
class ZoneMap:
    """Zone (a.k.a. morsel-granular) min/max/null summaries of a table.

    Zones are contiguous ``zone_rows``-sized row ranges; the last zone may
    be short.  Only numeric columns are summarised — string predicates go
    through dictionary codes instead.
    """

    zone_rows: int
    row_count: int
    columns: dict[str, ColumnZones] = field(default_factory=dict)

    @property
    def num_zones(self) -> int:
        if self.zone_rows <= 0 or self.row_count == 0:
            return 0
        return (self.row_count + self.zone_rows - 1) // self.zone_rows

    def zone_bounds(self, zone: int) -> tuple[int, int]:
        """Row range ``[start, stop)`` of one zone."""
        start = zone * self.zone_rows
        return start, min(start + self.zone_rows, self.row_count)

    def column(self, name: str) -> ColumnZones | None:
        """Zone summaries for one column, or None when not summarised."""
        return self.columns.get(name)

    @classmethod
    def from_table(cls, table: Table, zone_rows: int) -> "ZoneMap":
        """Summarise every numeric column of ``table`` zone by zone."""
        n = table.num_rows
        zone_map = cls(zone_rows=zone_rows, row_count=n)
        if zone_rows <= 0 or n == 0:
            return zone_map
        starts = range(0, n, zone_rows)
        num_zones = zone_map.num_zones
        for name in table.column_names:
            column = table.column(name)
            if not column.dtype.is_numeric:
                continue
            data = column.data
            validity = column.validity
            mins = np.zeros(num_zones, dtype=data.dtype)
            maxs = np.zeros(num_zones, dtype=data.dtype)
            real_counts = np.zeros(num_zones, dtype=np.int64)
            null_counts = np.zeros(num_zones, dtype=np.int64)
            nan_counts = np.zeros(num_zones, dtype=np.int64)
            is_float = data.dtype.kind == "f"
            for zone, start in enumerate(starts):
                stop = min(start + zone_rows, n)
                chunk = data[start:stop]
                if validity is not None:
                    valid = validity[start:stop]
                    null_counts[zone] = int((~valid).sum())
                    chunk = chunk[valid]
                if is_float:
                    nan = np.isnan(chunk)
                    if nan.any():
                        nan_counts[zone] = int(nan.sum())
                        chunk = chunk[~nan]
                real_counts[zone] = len(chunk)
                if len(chunk):
                    mins[zone] = chunk.min()
                    maxs[zone] = chunk.max()
            zone_map.columns[name] = ColumnZones(
                mins, maxs, real_counts, null_counts, nan_counts
            )
        return zone_map


@dataclass
class TableStatistics:
    """Statistics for every column of a table."""

    row_count: int
    columns: dict[str, ColumnStatistics] = field(default_factory=dict)
    zone_maps: dict[int, ZoneMap] = field(default_factory=dict)

    @classmethod
    def from_table(cls, table: Table) -> "TableStatistics":
        """Compute statistics for every column."""
        return cls(
            row_count=table.num_rows,
            columns={
                name: ColumnStatistics.from_column(table.column(name))
                for name in table.column_names
            },
        )

    def column(self, name: str) -> ColumnStatistics | None:
        """Statistics for one column, or None if unknown."""
        return self.columns.get(name)

    def zone_map(self, table: Table, zone_rows: int) -> ZoneMap:
        """The zone map of ``table`` at ``zone_rows`` granularity (cached).

        Recomputed when the cached map was built for a different row count
        — the catalog additionally version-checks the whole statistics
        object, so a stale map can never describe a replaced table.
        """
        zones = self.zone_maps.get(zone_rows)
        if zones is None or zones.row_count != table.num_rows:
            zones = ZoneMap.from_table(table, zone_rows)
            self.zone_maps[zone_rows] = zones
        return zones
