"""Scan-path acceleration knobs: dictionary encoding, zone maps, plan cache.

One process-wide :class:`ScanAccelConfig` instance (mirroring
:mod:`repro.engine.parallel`) gates the three techniques of the scan
acceleration layer:

- **dictionary encoding** (``dict_encode``): STRING columns carry an
  int32 code array plus a sorted value dictionary, and comparisons,
  DISTINCT, group keys and sort keys operate on codes instead of
  materialising Python strings;
- **zone maps** (``zone_rows``): per-zone min/max/null summaries let
  scans skip whole row ranges whose zone provably fails (or wholesale
  accept ranges that provably pass) a range predicate; ``zone_rows=0``
  disables skipping;
- **plan cache** (``plan_cache``): a catalog-versioned LRU keyed on SQL
  text that skips parse/bind/plan on repeat queries;
- **plan optimizer** (``optimizer``): the rule-based rewrite pass of
  :mod:`repro.engine.optimizer` (constant folding, predicate pushdown,
  probe merging, projection pruning, join reordering, filter+aggregate
  fusion) runs between planning and execution.

All default to on and are tunable per process via ``PRAGMA
dict_encode``, ``PRAGMA zone_rows``, ``PRAGMA plan_cache`` and ``PRAGMA
optimizer`` (or the ``REPRO_DICT_ENCODE`` / ``REPRO_ZONE_ROWS`` /
``REPRO_PLAN_CACHE`` / ``REPRO_OPTIMIZER`` environment variables).
Every accelerated path is bit-identical to the unaccelerated one — the
knobs trade build/bookkeeping cost against scan latency, never answers.
"""

from __future__ import annotations

import os

DEFAULT_ZONE_ROWS = 65_536
DEFAULT_PLAN_CACHE_SIZE = 256


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, "") or default)
    except ValueError:
        return default


class ScanAccelConfig:
    """Tunables of the scan acceleration layer (one process-wide instance).

    Attributes:
        dict_encode: build and use dictionary encodings for STRING columns.
        zone_rows: rows per zone-map zone; 0 disables zone-map skipping.
        plan_cache: cache bound plans keyed on SQL text.
        plan_cache_size: LRU capacity of the plan cache.
        optimizer: run the rule-based plan optimizer before execution.
    """

    __slots__ = ("dict_encode", "zone_rows", "plan_cache", "plan_cache_size", "optimizer")

    def __init__(self) -> None:
        self.dict_encode = _env_int("REPRO_DICT_ENCODE", 1) != 0
        self.zone_rows = max(0, _env_int("REPRO_ZONE_ROWS", DEFAULT_ZONE_ROWS))
        self.plan_cache = _env_int("REPRO_PLAN_CACHE", 1) != 0
        self.plan_cache_size = max(1, _env_int("REPRO_PLAN_CACHE_SIZE", DEFAULT_PLAN_CACHE_SIZE))
        self.optimizer = _env_int("REPRO_OPTIMIZER", 1) != 0


_config = ScanAccelConfig()


def get_config() -> ScanAccelConfig:
    """The process-wide scan-acceleration configuration."""
    return _config


def configure(
    dict_encode: int | bool | None = None,
    zone_rows: int | None = None,
    plan_cache: int | bool | None = None,
    plan_cache_size: int | None = None,
    optimizer: int | bool | None = None,
) -> ScanAccelConfig:
    """Update the scan-acceleration config; omitted fields keep their value."""
    if dict_encode is not None:
        _config.dict_encode = bool(dict_encode)
    if zone_rows is not None:
        if zone_rows < 0:
            raise ValueError("zone_rows must be >= 0 (0 disables zone maps)")
        _config.zone_rows = zone_rows
    if plan_cache is not None:
        _config.plan_cache = bool(plan_cache)
    if plan_cache_size is not None:
        if plan_cache_size < 1:
            raise ValueError("plan_cache_size must be >= 1")
        _config.plan_cache_size = plan_cache_size
    if optimizer is not None:
        _config.optimizer = bool(optimizer)
    return _config
