"""Tables: ordered collections of equal-length named columns."""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.engine.column import Column
from repro.engine.types import DataType
from repro.errors import CatalogError


class Schema:
    """An ordered mapping of column names to logical types."""

    __slots__ = ("_names", "_types")

    def __init__(self, fields: Sequence[tuple[str, DataType]]) -> None:
        names = [name for name, _ in fields]
        if len(set(names)) != len(names):
            raise CatalogError(f"duplicate column names in schema: {names}")
        self._names = tuple(names)
        self._types = tuple(dtype for _, dtype in fields)

    @property
    def names(self) -> tuple[str, ...]:
        """Column names in order."""
        return self._names

    @property
    def types(self) -> tuple[DataType, ...]:
        """Column types in order."""
        return self._types

    def fields(self) -> list[tuple[str, DataType]]:
        """(name, type) pairs in order."""
        return list(zip(self._names, self._types))

    def type_of(self, name: str) -> DataType:
        """Type of the named column.

        Raises:
            CatalogError: if the column does not exist.
        """
        try:
            return self._types[self._names.index(name)]
        except ValueError:
            raise CatalogError(f"unknown column {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._names

    def __len__(self) -> int:
        return len(self._names)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._names == other._names and self._types == other._types

    def __repr__(self) -> str:
        cols = ", ".join(f"{n}:{t.name}" for n, t in self.fields())
        return f"Schema({cols})"


class Table:
    """An in-memory table of named, equal-length columns.

    Tables are the unit of query input and output.  They are immutable from
    the query layer's point of view; mutating operations return new tables.
    """

    def __init__(self, columns: Mapping[str, Column] | Sequence[tuple[str, Column]]) -> None:
        items = list(columns.items()) if isinstance(columns, Mapping) else list(columns)
        if not items:
            raise CatalogError("a table needs at least one column")
        lengths = {len(col) for _, col in items}
        if len(lengths) > 1:
            raise CatalogError(f"columns have differing lengths: {sorted(lengths)}")
        names = [name for name, _ in items]
        if len(set(names)) != len(names):
            raise CatalogError(f"duplicate column names: {names}")
        self._columns: dict[str, Column] = dict(items)
        self._schema = Schema([(name, col.dtype) for name, col in items])

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_dict(cls, data: Mapping[str, Sequence[Any]]) -> "Table":
        """Build a table from ``{name: values}``; types are inferred."""
        return cls({name: Column(values) for name, values in data.items()})

    @classmethod
    def from_rows(
        cls, rows: Sequence[Sequence[Any]], names: Sequence[str]
    ) -> "Table":
        """Build a table from row tuples and column names."""
        if rows and any(len(row) != len(names) for row in rows):
            raise CatalogError("row width does not match the number of column names")
        columns = {
            name: Column([row[i] for row in rows]) for i, name in enumerate(names)
        }
        return cls(columns)

    # -- accessors --------------------------------------------------------------

    @property
    def schema(self) -> Schema:
        """The table schema."""
        return self._schema

    @property
    def num_rows(self) -> int:
        """Number of rows."""
        return len(next(iter(self._columns.values())))

    @property
    def num_columns(self) -> int:
        """Number of columns."""
        return len(self._columns)

    @property
    def column_names(self) -> tuple[str, ...]:
        """Column names in schema order."""
        return self._schema.names

    @property
    def is_mapped(self) -> bool:
        """True when any column is an mmap view over checkpoint files."""
        return any(col.is_mapped for col in self._columns.values())

    def column(self, name: str) -> Column:
        """The named column.

        Raises:
            CatalogError: if the column does not exist.
        """
        try:
            return self._columns[name]
        except KeyError:
            raise CatalogError(f"unknown column {name!r}") from None

    def __getitem__(self, name: str) -> Column:
        return self.column(name)

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def __len__(self) -> int:
        return self.num_rows

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        return self._schema == other._schema and all(
            self._columns[n] == other._columns[n] for n in self.column_names
        )

    def row(self, index: int) -> tuple[Any, ...]:
        """Row at ``index`` as a tuple of Python values."""
        return tuple(self._columns[name][index] for name in self.column_names)

    def rows(self) -> Iterator[tuple[Any, ...]]:
        """Iterate rows as tuples."""
        for i in range(self.num_rows):
            yield self.row(i)

    def to_dicts(self) -> list[dict[str, Any]]:
        """Materialise as a list of ``{column: value}`` dicts."""
        names = self.column_names
        return [dict(zip(names, row)) for row in self.rows()]

    def __repr__(self) -> str:
        return f"Table({self._schema!r}, rows={self.num_rows})"

    def pretty(self, limit: int = 20) -> str:
        """A fixed-width textual rendering, for examples and debugging."""
        names = self.column_names
        shown = [tuple("NULL" if v is None else str(v) for v in row)
                 for _, row in zip(range(limit), self.rows())]
        widths = [
            max(len(names[i]), *(len(r[i]) for r in shown)) if shown else len(names[i])
            for i in range(len(names))
        ]
        header = " | ".join(n.ljust(w) for n, w in zip(names, widths))
        rule = "-+-".join("-" * w for w in widths)
        body = "\n".join(
            " | ".join(cell.ljust(w) for cell, w in zip(row, widths)) for row in shown
        )
        footer = "" if self.num_rows <= limit else f"\n... ({self.num_rows} rows total)"
        return "\n".join(x for x in (header, rule, body) if x) + footer

    # -- relational operations ----------------------------------------------------

    def select(self, names: Sequence[str]) -> "Table":
        """Project onto the named columns, in the given order."""
        return Table([(name, self.column(name)) for name in names])

    def filter(self, mask: np.ndarray) -> "Table":
        """Keep rows where the boolean ``mask`` is True."""
        return Table([(n, c.filter(mask)) for n, c in self._columns.items()])

    def take(self, indices: np.ndarray) -> "Table":
        """Gather rows by position."""
        return Table([(n, c.take(indices)) for n, c in self._columns.items()])

    def slice(self, start: int, stop: int) -> "Table":
        """Contiguous row range ``[start, stop)``."""
        return Table([(n, c.slice(start, stop)) for n, c in self._columns.items()])

    def rename(self, mapping: Mapping[str, str]) -> "Table":
        """Rename columns according to ``mapping`` (missing names unchanged)."""
        return Table([(mapping.get(n, n), c) for n, c in self._columns.items()])

    def with_column(self, name: str, column: Column) -> "Table":
        """Return a table with ``column`` added or replaced under ``name``."""
        if len(column) != self.num_rows:
            raise CatalogError("new column length does not match the table")
        items = [(n, c) for n, c in self._columns.items() if n != name]
        items.append((name, column))
        return Table(items)

    def drop(self, names: Iterable[str]) -> "Table":
        """Return a table without the listed columns."""
        drop_set = set(names)
        keep = [(n, c) for n, c in self._columns.items() if n not in drop_set]
        if not keep:
            raise CatalogError("cannot drop every column of a table")
        return Table(keep)

    def concat(self, other: "Table") -> "Table":
        """Stack another table with the same schema underneath this one."""
        if other.schema != self._schema:
            raise CatalogError("cannot concat tables with different schemas")
        return Table([
            (n, self._columns[n].concat(other.column(n))) for n in self.column_names
        ])

    def head(self, n: int = 5) -> "Table":
        """First ``n`` rows."""
        return self.slice(0, min(n, self.num_rows))
