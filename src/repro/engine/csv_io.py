"""CSV reading and writing.

Two readers are provided:

- :func:`read_csv` — eager: parse the whole file into a :class:`Table`.
  This is the "traditional full load" baseline of the adaptive-loading
  experiments (NoDB, S5).
- :func:`scan_lines` — lazy line access used by
  :mod:`repro.loading` to parse only the fields a query touches.

Real-world exploration data is dirty, so :func:`read_csv` takes an
``on_error`` policy for malformed rows: ``raise`` (default, surfaces
:class:`~repro.errors.LoadingError`), ``skip`` (drop the row, counted by
the ``loading.rows_skipped`` metric) or ``null`` (keep the row with the
unparseable fields as NULL).  The ``malformed_row`` fault point of
:mod:`repro.resilience.faults` exercises these policies in tests.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Any, Iterator, Sequence

from repro.engine import scanopt
from repro.engine.column import Column
from repro.engine.table import Table
from repro.engine.types import DataType
from repro.errors import LoadingError
from repro.obs.metrics import get_registry
from repro.resilience import get_injector


def write_csv(table: Table, path: str | Path, header: bool = True) -> None:
    """Write a table to a CSV file."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        if header:
            writer.writerow(table.column_names)
        for row in table.rows():
            writer.writerow(["" if v is None else v for v in row])


def parse_field(text: str, dtype: DataType) -> Any:
    """Parse one CSV field into a typed value (empty string = NULL)."""
    if text == "":
        return None
    try:
        if dtype is DataType.INT64:
            return int(text)
        if dtype is DataType.FLOAT64:
            return float(text)
        if dtype is DataType.BOOL:
            lowered = text.strip().lower()
            if lowered in ("true", "1", "t", "yes"):
                return True
            if lowered in ("false", "0", "f", "no"):
                return False
            raise ValueError(text)
        return text
    except ValueError as exc:
        raise LoadingError(f"cannot parse {text!r} as {dtype.name}") from exc


def infer_field_type(samples: Sequence[str]) -> DataType:
    """Infer a column type from sample field texts (most specific wins)."""
    non_empty = [s for s in samples if s != ""]
    if not non_empty:
        return DataType.STRING

    def all_parse(dtype: DataType) -> bool:
        try:
            for s in non_empty:
                parse_field(s, dtype)
            return True
        except LoadingError:
            return False

    for dtype in (DataType.INT64, DataType.FLOAT64, DataType.BOOL):
        if all_parse(dtype):
            return dtype
    return DataType.STRING


def read_header(path: str | Path) -> list[str]:
    """Column names from the first line of a CSV file."""
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        try:
            return next(reader)
        except StopIteration:
            raise LoadingError(f"{path} is empty") from None


def read_csv(
    path: str | Path,
    dtypes: Sequence[DataType] | None = None,
    sample_rows: int = 100,
    on_error: str = "raise",
) -> Table:
    """Eagerly parse a CSV file with a header row into a table.

    Args:
        path: file to read.
        dtypes: per-column types; inferred from the first ``sample_rows``
            data rows when omitted.
        sample_rows: how many rows to examine for type inference.
        on_error: malformed-row policy — ``"raise"`` surfaces
            :class:`~repro.errors.LoadingError`; ``"skip"`` drops the row
            (counted by ``loading.rows_skipped``); ``"null"`` keeps the
            row with unparseable fields as NULL.  A row of the wrong
            width counts as malformed.
    """
    if on_error not in ("raise", "skip", "null"):
        raise ValueError("on_error must be 'raise', 'skip' or 'null'")
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        try:
            names = next(reader)
        except StopIteration:
            raise LoadingError(f"{path} is empty") from None
        rows = list(reader)
    if dtypes is None:
        samples = [
            [row[i] for row in rows[:sample_rows] if i < len(row)]
            for i in range(len(names))
        ]
        dtypes = [infer_field_type(s) for s in samples]
    if len(dtypes) != len(names):
        raise LoadingError("dtypes length does not match the header width")
    width = len(names)
    injector = get_injector()
    parsed: list[list[Any]] = []
    skipped = 0
    for row_index, row in enumerate(rows):
        injected = injector is not None and injector.malformed_row(
            ("csv_row", row_index)
        )
        values = _parse_row(
            row, dtypes, width, on_error, injected, f"row {row_index + 2} of {path}"
        )
        if values is None:
            skipped += 1
            continue
        parsed.append(values)
    if skipped:
        get_registry().counter("loading.rows_skipped").inc(skipped)
    columns = []
    encode = scanopt.get_config().dict_encode
    for i, (name, dtype) in enumerate(zip(names, dtypes)):
        column = Column([row[i] for row in parsed], dtype=dtype)
        if encode and dtype is DataType.STRING:
            column.encode_dictionary()
        columns.append((name, column))
    return Table(columns)


def _parse_row(
    row: list[str],
    dtypes: Sequence[DataType],
    width: int,
    on_error: str,
    injected: bool,
    where: str,
) -> list[Any] | None:
    """Parse one data row under the ``on_error`` policy; None means skip."""
    if injected or len(row) != width:
        if on_error == "raise":
            detail = (
                "injected malformed row"
                if injected
                else f"expected {width} fields, got {len(row)}"
            )
            raise LoadingError(f"malformed {where}: {detail}")
        if on_error == "skip":
            return None
        return [None] * width
    values: list[Any] = []
    for field, dtype in zip(row, dtypes):
        try:
            values.append(parse_field(field, dtype))
        except LoadingError:
            if on_error == "raise":
                raise
            if on_error == "skip":
                return None
            values.append(None)
    return values


def scan_lines(path: str | Path) -> Iterator[tuple[int, str]]:
    """Yield ``(byte offset, raw line)`` for each data line after the header."""
    with open(path, "rb") as handle:
        header = handle.readline()
        offset = len(header)
        for raw in handle:
            yield offset, raw.decode("utf-8").rstrip("\r\n")
            offset += len(raw)


def split_line(line: str) -> list[str]:
    """Split one CSV line into fields, honouring quoting."""
    return next(csv.reader(io.StringIO(line)))
