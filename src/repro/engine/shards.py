"""Sharded execution: partitioned tables with scatter-gather operators.

A *shard layout* splits a table's rows into N contiguous extents of one
re-clustered columnar main: rows are routed to a shard by a hash or
range function of a key column, stably reordered so shard ``s`` owns the
row range ``[offsets[s], offsets[s+1])``, and the layout (mode, key,
offsets, range bounds) persists through checkpoints and WAL replay.
Because shards are extents of the ordinary format-2 part files, mmap
mode maps the one file and slices shards lazily — a shard that is never
scheduled never faults its pages in.

Execution is scatter-gather: filter, fused filter+aggregate and sort
fan out one task per shard over the existing morsel pool and recombine
with the exact partial-merge rules from the parallel module, so results
are bit-identical to serial execution over the same (re-clustered)
table by construction.  Zone-map pruning runs before scheduling: the
global FAIL/MAYBE/PASS ranges are intersected with shard extents, and a
shard left with no surviving span is never scheduled at all.

In process-pool mode shards are shipped to workers **once per catalog
epoch**: the parent serialises each scheduled shard to a scratch file
keyed by ``(layout uid, shard, table version, columns)``, tasks carry
the small ``("shardref", key, path)`` handle instead of the columns,
and each worker caches the materialised shard until the version moves.
``parallel.bytes_shipped`` counts the bytes actually serialised, so
repeated queries against an unchanged table ship nothing.

Each shard may also own a partition-local
:class:`~repro.indexing.updates.UpdatableCrackerIndex`
(:class:`ShardedCrackerIndex`): range probes crack each shard
independently, prune shards by their actual key min/max, and rebase the
local row ids onto the global extent.
"""

from __future__ import annotations

import atexit
import bisect
import itertools
import math
import os
import shutil
import tempfile
import zlib
from typing import Any, Sequence

import numpy as np

from repro.engine import operators as ops
from repro.engine import parallel, scanopt, zonemap
from repro.engine.expressions import strip_outer_parens, truth_mask
from repro.engine.table import Table
from repro.indexing.updates import UpdatableCrackerIndex
from repro.obs.metrics import get_registry
from repro.resilience import current_context
from repro.storage import layouts


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, "") or default)
    except ValueError:
        return default


def parse_shard_by(text: str) -> tuple[str, str | None]:
    """Parse a ``hash``/``hash(col)``/``range(col)`` spec into (mode, key)."""
    spec = str(text).strip().strip("'\"").strip()
    head, paren, tail = spec.partition("(")
    mode = head.strip().lower()
    key: str | None = None
    if paren:
        if not tail.endswith(")"):
            raise ValueError(f"malformed shard_by spec: {text!r}")
        key = tail[:-1].strip() or None
    if mode not in ("hash", "range"):
        raise ValueError(
            f"shard_by must be hash[(col)] or range(col), got {text!r}"
        )
    return mode, key


class ShardConfig:
    """Tunables of the sharding layer (one process-wide instance).

    Attributes:
        shards: default shard count for new/merged tables; 0 disables
            automatic sharding (tables can still be sharded via PRAGMA).
        shard_by: default partitioning spec, ``"hash"``/``"hash(col)"``
            or ``"range(col)"``; without a column the table's first
            column is the key.
        shard_min_rows: tables smaller than this are not auto-sharded.
        shard_index: build a partition-local cracker index on the shard
            key (1, default) or not (0).
    """

    __slots__ = ("shards", "shard_by", "shard_min_rows", "shard_index")

    def __init__(self) -> None:
        self.shards = max(0, _env_int("REPRO_SHARDS", 0))
        raw = os.environ.get("REPRO_SHARD_BY", "hash")
        try:
            parse_shard_by(raw)
            self.shard_by = raw
        except ValueError:
            self.shard_by = "hash"
        self.shard_min_rows = max(1, _env_int("REPRO_SHARD_MIN_ROWS", 65_536))
        self.shard_index = _env_int("REPRO_SHARD_INDEX", 1) != 0


_config = ShardConfig()


def get_config() -> ShardConfig:
    """The process-wide sharding configuration."""
    return _config


def configure(
    shards: int | None = None,
    shard_by: str | None = None,
    shard_min_rows: int | None = None,
    shard_index: bool | None = None,
) -> ShardConfig:
    """Update the sharding configuration; omitted fields keep their value."""
    if shards is not None:
        if shards < 0:
            raise ValueError("shards must be >= 0")
        _config.shards = shards
    if shard_by is not None:
        parse_shard_by(shard_by)  # validates
        _config.shard_by = shard_by
    if shard_min_rows is not None:
        if shard_min_rows < 1:
            raise ValueError("shard_min_rows must be >= 1")
        _config.shard_min_rows = shard_min_rows
    if shard_index is not None:
        _config.shard_index = bool(shard_index)
    return _config


# -- layouts -------------------------------------------------------------------------

_layout_counter = itertools.count(1)


class ShardLayout:
    """Immutable description of one table's shard partitioning.

    ``offsets`` has N+1 entries; shard ``s`` is the row extent
    ``[offsets[s], offsets[s+1])`` of the re-clustered main.  ``bounds``
    (range mode) has N−1 ascending split points: shard 0 takes values
    ``<= bounds[0]``, shard s the values in ``(bounds[s-1], bounds[s]]``.
    ``uid`` identifies this layout instance process-wide (ship-cache key).
    """

    __slots__ = ("mode", "key", "offsets", "bounds", "uid")

    def __init__(
        self,
        mode: str,
        key: str,
        offsets: Sequence[int],
        bounds: Sequence[float] | None,
        uid: int | None = None,
    ) -> None:
        self.mode = mode
        self.key = key
        self.offsets = [int(o) for o in offsets]
        self.bounds = [float(b) for b in bounds] if bounds is not None else None
        self.uid = uid if uid is not None else next(_layout_counter)

    @property
    def num_shards(self) -> int:
        return len(self.offsets) - 1

    @property
    def total_rows(self) -> int:
        return self.offsets[-1]

    def shard_rows(self, shard: int) -> int:
        """Row count of one shard's extent."""
        return self.offsets[shard + 1] - self.offsets[shard]

    def to_manifest(self) -> dict:
        """JSON-safe form persisted inside checkpoint manifests."""
        return {
            "mode": self.mode,
            "key": self.key,
            "offsets": list(self.offsets),
            "bounds": list(self.bounds) if self.bounds is not None else None,
        }

    @classmethod
    def from_manifest(cls, meta: dict) -> "ShardLayout":
        return cls(meta["mode"], meta["key"], meta["offsets"], meta.get("bounds"))


# -- partitioning --------------------------------------------------------------------


def _splitmix(x: np.ndarray) -> np.ndarray:
    """Vectorised splitmix64 finaliser over a uint64 array."""
    x = x.copy()
    with np.errstate(over="ignore"):
        x += np.uint64(0x9E3779B97F4B7C15)
        x ^= x >> np.uint64(30)
        x *= np.uint64(0xBF58476D1CE4E5B9)
        x ^= x >> np.uint64(27)
        x *= np.uint64(0x94D049BB133111EB)
        x ^= x >> np.uint64(31)
    return x


def _hash_ids(column, n: int) -> np.ndarray:
    """Deterministic shard id per row of a column under hash partitioning.

    Numeric payloads hash their 64-bit patterns through splitmix64;
    strings hash per distinct value via crc32 (through the dictionary
    codes when encoded).  NULL and NaN rows route to shard 0.
    """
    data = column.data
    if data.dtype.kind in "iufb":
        if data.dtype.kind == "f":
            bits = np.ascontiguousarray(data, dtype=np.float64).view(np.uint64)
        else:
            bits = np.ascontiguousarray(data.astype(np.int64)).view(np.uint64)
        ids = (_splitmix(bits) % np.uint64(n)).astype(np.int64)
        if data.dtype.kind == "f":
            ids = np.where(np.isnan(data), 0, ids)
    else:
        encoding = column.dictionary()
        if encoding is not None:
            codes, values = encoding
            per_value = np.asarray(
                [zlib.crc32(str(v).encode("utf-8")) % n for v in values],
                dtype=np.int64,
            )
            ids = np.where(codes >= 0, per_value[np.maximum(codes, 0)], 0)
        else:
            ids = np.asarray(
                [zlib.crc32(str(v).encode("utf-8")) % n for v in data],
                dtype=np.int64,
            )
    if column.validity is not None:
        ids = np.where(column.validity, ids, 0)
    return ids


def compute_bounds(column, n: int) -> list[float]:
    """N−1 ascending range split points from the column's value quantiles."""
    values = column.valid_data()
    if values.dtype.kind == "f":
        values = values[~np.isnan(values)]
    values = np.asarray(values, dtype=np.float64)
    if len(values) == 0:
        return [0.0] * (n - 1)
    return [float(np.quantile(values, i / n)) for i in range(1, n)]


def _range_ids(column, bounds: Sequence[float]) -> np.ndarray:
    """Shard id per row under range partitioning; NULL/NaN route to 0."""
    data = np.asarray(column.data, dtype=np.float64)
    ids = np.searchsorted(
        np.asarray(bounds, dtype=np.float64), data, side="left"
    ).astype(np.int64)
    ids = np.where(np.isnan(data), 0, ids)
    if column.validity is not None:
        ids = np.where(column.validity, ids, 0)
    return ids


def apply_layout(
    table: Table, mode: str, key: str, num_shards: int, uid: int | None = None
) -> tuple[Table, ShardLayout, bool]:
    """Partition ``table`` by ``key`` into ``num_shards`` extents.

    Returns ``(table, layout, identity)``.  The table is stably
    reordered so each shard is contiguous; when the rows already sit in
    shard order (``identity`` True — e.g. range partitioning of a
    monotone key) the input table is returned untouched, so zone maps,
    statistics and mapped backings stay valid.
    """
    column = table.column(key)
    bounds: list[float] | None = None
    if mode == "range":
        if column.data.dtype.kind not in "iufb":
            raise ValueError(
                f"range sharding requires a numeric key column, got {key!r}"
            )
        bounds = compute_bounds(column, num_shards)
        ids = _range_ids(column, bounds)
    else:
        ids = _hash_ids(column, num_shards)
    counts = np.bincount(ids, minlength=num_shards)
    offsets = np.zeros(num_shards + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    layout = ShardLayout(mode, key, offsets.tolist(), bounds, uid=uid)
    identity = table.num_rows == 0 or bool(np.all(ids[1:] >= ids[:-1]))
    if identity:
        return table, layout, True
    order = np.argsort(ids, kind="stable")
    return table.take(order), layout, False


def route_ids(layout: ShardLayout, column) -> np.ndarray:
    """Shard id per row of ``column`` under an existing layout's function."""
    if layout.mode == "range":
        return _range_ids(column, layout.bounds or [])
    return _hash_ids(column, layout.num_shards)


# -- scheduling ----------------------------------------------------------------------


def plan_spans(
    layout: ShardLayout, ranges: Sequence[tuple[int, int, bool]] | None
) -> list[list[tuple[int, int, bool]]]:
    """Surviving global row spans per shard.

    ``ranges`` is a zone-map classification (FAIL zones absent) over the
    whole table, or None for an unpruned scan.  Each global range is
    split at shard boundaries; a shard with no surviving span is pruned
    from scheduling entirely.
    """
    n = layout.num_shards
    spans: list[list[tuple[int, int, bool]]] = [[] for _ in range(n)]
    if ranges is None:
        for s in range(n):
            start, stop = layout.offsets[s], layout.offsets[s + 1]
            if stop > start:
                spans[s].append((start, stop, True))
        return spans
    offsets = layout.offsets
    for start, stop, evaluate in ranges:
        s = max(0, min(bisect.bisect_right(offsets, start) - 1, n - 1))
        while start < stop and s < n:
            piece_stop = min(stop, offsets[s + 1])
            if piece_stop > start:
                spans[s].append((start, piece_stop, evaluate))
            start = max(start, offsets[s + 1])
            s += 1
    return spans


# -- epoch shipping (process pool) ---------------------------------------------------

_SCRATCH: str | None = None
_CACHE: dict[tuple, Table] = {}
_SHIPPED: dict[tuple, str] = {}
_ship_counter = itertools.count()


def _scratch_dir() -> str:
    global _SCRATCH
    if _SCRATCH is None:
        _SCRATCH = tempfile.mkdtemp(prefix="repro-shards-")
        atexit.register(shutil.rmtree, _SCRATCH, ignore_errors=True)
    return _SCRATCH


def _evict_stale(key: tuple, shipped: dict, cache: dict) -> None:
    """Drop entries for the same (layout, shard, columns) at other versions."""
    uid, shard, _version, cols = key
    for old in [k for k in shipped if (k[0], k[1], k[3]) == (uid, shard, cols) and k != key]:
        path = shipped.pop(old)
        try:
            os.unlink(path)
        except OSError:
            pass
    for old in [k for k in cache if (k[0], k[1], k[3]) == (uid, shard, cols) and k != key]:
        cache.pop(old, None)


def _ship_shard(table: Table, layout: ShardLayout, shard: int, version: int):
    """Serialise one shard to the scratch dir once per epoch; return a ref.

    The ref ``("shardref", key, path)`` is what crosses the process
    boundary.  ``parallel.bytes_shipped`` counts only actual
    serialisations: repeated queries at an unchanged table version reuse
    the file (and the workers' caches) and ship nothing.
    """
    key = (layout.uid, shard, version, tuple(table.column_names))
    if key not in _SHIPPED:
        start, stop = layout.offsets[shard], layout.offsets[shard + 1]
        blob = layouts.table_to_bytes(table.slice(start, stop))
        path = os.path.join(_scratch_dir(), f"shard-{next(_ship_counter):06d}.bin")
        with open(path, "wb") as handle:
            handle.write(blob)
        _evict_stale(key, _SHIPPED, _CACHE)
        _SHIPPED[key] = path
        _CACHE[key] = table.slice(start, stop)
        get_registry().counter("parallel.bytes_shipped").inc(len(blob))
    return ("shardref", key, _SHIPPED[key])


def _resolve(source) -> Table:
    """Materialise a task's table: a Table passes through, a shardref
    loads from the worker-side epoch cache (or the scratch file once)."""
    if isinstance(source, Table):
        return source
    _tag, key, path = source
    cached = _CACHE.get(key)
    if cached is not None:
        return cached
    with open(path, "rb") as handle:
        table = layouts.table_from_bytes(handle.read())
    _evict_stale(key, {}, _CACHE)
    _CACHE[key] = table
    return table


# -- scatter kernels (module level: picklable for the process pool) ------------------


def _coalesce(
    spans: Sequence[tuple[int, int, bool]],
) -> list[tuple[int, int, bool]]:
    """Merge adjacent spans with the same evaluate flag.

    Partial-aggregate merging and row-local filter masks are invariant
    to chunk boundaries, so fewer, larger pieces mean fewer kernel
    launches and smaller result payloads.  Gaps between spans (pruned
    zones) are never bridged — in mmap mode they stay unread.
    """
    out: list[tuple[int, int, bool]] = []
    for start, stop, evaluate in spans:
        if out and out[-1][1] == start and out[-1][2] == evaluate:
            out[-1] = (out[-1][0], stop, evaluate)
        else:
            out.append((start, stop, evaluate))
    return out


_EMPTY_IDX = np.empty(0, dtype=np.int64)


def _filter_shard_task(source, spans, predicate) -> list[Table]:
    """Filter one shard's surviving local spans; one piece per span."""
    table = _resolve(source)
    pieces: list[Table] = []
    for start, stop, evaluate in _coalesce(spans):
        piece = table.slice(start, stop)
        if evaluate:
            piece = piece.filter(truth_mask(predicate, piece))
        pieces.append(piece)
    return pieces


def _fused_shard_task(
    source, spans, predicate, group_exprs, aggregates, modes
) -> list[tuple]:
    """Fused filter+partial-aggregate over one shard's local spans.

    Group row indices only feed gather-mode merges; without one they are
    dropped before the result crosses the process boundary (they are as
    large as the filtered shard itself).
    """
    table = _resolve(source)
    trim = parallel._MODE_GATHER not in modes
    results: list[tuple] = []
    for start, stop, evaluate in _coalesce(spans):
        groups, gather_columns, kept = parallel._fused_morsel(
            table, start, stop, predicate if evaluate else None,
            group_exprs, aggregates, modes,
        )
        if trim:
            groups = [
                (ckey, key, _EMPTY_IDX, size, partials)
                for ckey, key, _idx, size, partials in groups
            ]
        results.append((groups, gather_columns, kept))
    return results


def _sort_shard_task(source, order_by) -> tuple:
    """Sort one whole shard; returns (order keys, local sorted positions)."""
    table = _resolve(source)
    keys = ops.order_keys(table, order_by)
    local = ops.sort_positions(keys, np.arange(table.num_rows, dtype=np.int64))
    return keys, local


def _run(fn, tasks: list[tuple], pooled: bool) -> list:
    """One task per shard, on the morsel pool or a governed serial loop."""
    if pooled:
        return parallel._run_tasks(fn, tasks)
    ctx = current_context()
    results = []
    for args in tasks:
        if ctx is not None:
            ctx.check()
        results.append(fn(*args))
    return results


def _local_spans(
    layout: ShardLayout, shard: int, spans: Sequence[tuple[int, int, bool]]
) -> list[tuple[int, int, bool]]:
    base = layout.offsets[shard]
    return [(start - base, stop - base, evaluate) for start, stop, evaluate in spans]


def _classify(name, table, predicate, database, profiler):
    """Zone-map classification for a scatter: ``(ranges, zones_pruned)``.

    ``ranges`` is None when the scan is ungated (no zone map, or the
    map does not cover the table)."""
    config = scanopt.get_config()
    if config.zone_rows <= 0 or table.num_rows <= config.zone_rows:
        return None, 0
    zones = database.zone_map(name)
    if zones.row_count != table.num_rows:
        return None, 0
    ranges, pruned, passed, num_zones = zonemap.classify_ranges(predicate, zones)
    registry = get_registry()
    registry.counter("scan.zones_pruned").inc(pruned)
    registry.counter("scan.zones_passed").inc(passed)
    if profiler is not None and num_zones:
        profiler.annotate(f"zones: {pruned} pruned, {passed} passed of {num_zones}")
    return ranges, pruned


def _schedule(layout, ranges, profiler):
    """Span plan + shard.* accounting; returns (spans, scheduled shards)."""
    spans = plan_spans(layout, ranges)
    scheduled = [s for s in range(layout.num_shards) if spans[s]]
    pruned = layout.num_shards - len(scheduled)
    registry = get_registry()
    registry.counter("shard.tasks").inc(len(scheduled))
    registry.counter("shard.shards_pruned").inc(pruned)
    registry.counter("shard.rows").inc(
        sum(stop - start for s in scheduled for start, stop, _ in spans[s])
    )
    if profiler is not None:
        profiler.annotate(
            f"shards: {len(scheduled)} of {layout.num_shards} scheduled, "
            f"{pruned} pruned"
        )
    return spans, scheduled


def _account_io(
    table, spans, scheduled, zones_skipped, pruned_shards, profiler
) -> None:
    """I/O accounting for a scatter over a mapped table (pruned zones —
    and with them whole shards — are never sliced, so their pages are
    never read).  ``io.zones_skipped_io`` counts FAIL *zones*, same
    unit as the unsharded streamed path."""
    from repro.engine.executor import _ranges_nbytes

    flat = [span for s in scheduled for span in spans[s]]
    read = _ranges_nbytes(table, flat)
    registry = get_registry()
    registry.counter("io.zones_skipped_io").inc(zones_skipped)
    registry.counter("io.morsels_streamed").inc(len(flat))
    registry.counter("io.bytes_read").inc(read)
    if profiler is not None:
        profiler.annotate(
            f"io: {read} bytes read, {zones_skipped} zones skipped, "
            f"{pruned_shards} shards skipped, {len(flat)} morsels streamed"
        )


def _sources(name, table, layout, scheduled, database, pooled):
    """Per-shard task sources: slices, or epoch-cached refs in process mode."""
    use_refs = pooled and parallel.get_config().pool_kind == "process"
    sources = []
    for s in scheduled:
        if use_refs:
            sources.append(
                _ship_shard(table, layout, s, database.table_version(name))
            )
        else:
            sources.append(table.slice(layout.offsets[s], layout.offsets[s + 1]))
    return sources


def _note_shard_fanout(profiler, tasks: int) -> None:
    if profiler is not None:
        profiler.annotate(
            f"parallel: {tasks} shard tasks x {parallel.get_threads()} threads"
        )


def scatter_filter(
    name: str, table: Table, predicate, layout: ShardLayout, database, profiler
) -> Table | None:
    """Scatter a filtered scan across shards; gather by concatenation.

    Bit-identical to ``table.filter(truth_mask(...))`` over the same
    re-clustered table: spans partition the surviving rows in ascending
    global order and each span's mask comes from the same row-local
    kernel.  Returns None when the layout does not cover this table
    (row-count drift — the caller falls back to the unsharded path).
    """
    if layout.total_rows != table.num_rows:
        return None
    # Type errors are dtype-dependent, not data-dependent: surface them
    # exactly as the unsharded filter would even when every shard prunes.
    truth_mask(predicate, table.slice(0, 0))
    ranges, zones_pruned = _classify(name, table, predicate, database, profiler)
    spans, scheduled = _schedule(layout, ranges, profiler)
    if table.is_mapped and ranges is not None:
        _account_io(
            table, spans, scheduled, zones_pruned,
            layout.num_shards - len(scheduled), profiler,
        )
    if not scheduled:
        return table.slice(0, 0)
    pooled = parallel.should_parallelize(table.num_rows)
    sources = _sources(name, table, layout, scheduled, database, pooled)
    tasks = [
        (source, _local_spans(layout, s, spans[s]), predicate)
        for source, s in zip(sources, scheduled)
    ]
    if pooled:
        _note_shard_fanout(profiler, len(tasks))
    results = _run(_filter_shard_task, tasks, pooled)
    pieces = [piece for shard_pieces in results for piece in shard_pieces]
    if not pieces:
        return table.slice(0, 0)
    if len(pieces) == 1:
        return pieces[0]
    return Table(
        {
            column: parallel._concat_stream_columns([p.column(column) for p in pieces])
            for column in table.column_names
        }
    )


def scatter_fused_aggregate(
    name: str,
    table: Table,
    predicate,
    group_exprs,
    aggregates,
    group_names,
    ranges,
    layout: ShardLayout,
    database,
    profiler,
) -> Table | None:
    """Scatter the fused filter+aggregate across shards; merge partials.

    Per-shard tasks produce the same per-morsel partial states as the
    parallel fused kernel; the gather step rebases the local row ids in
    shard-span order and recombines with the exact partial-merge rules,
    so the output equals serial execution over the same table.
    ``ranges`` is the caller's zone classification (the executor already
    recorded the zone/io counters for it), or None for an unpruned scan.
    """
    if layout.total_rows != table.num_rows:
        return None
    truth_mask(predicate, table.slice(0, 0))
    spans, scheduled = _schedule(layout, ranges, profiler)
    names = list(group_names) if group_names is not None else [
        strip_outer_parens(e.to_sql()) for e in group_exprs
    ]
    if not scheduled:
        return ops.hash_aggregate(table.slice(0, 0), group_exprs, aggregates, names)
    modes = parallel._partial_modes(table, aggregates)
    pooled = parallel.should_parallelize(table.num_rows)
    sources = _sources(name, table, layout, scheduled, database, pooled)
    tasks = [
        (source, _local_spans(layout, s, spans[s]), predicate,
         group_exprs, aggregates, modes)
        for source, s in zip(sources, scheduled)
    ]
    if pooled:
        _note_shard_fanout(profiler, len(tasks))
    results = _run(_fused_shard_task, tasks, pooled)
    # rebase local filtered-row indices onto the concatenation of all
    # filtered spans in shard order (= ascending global row order)
    rebased = []
    base = 0
    for shard_results in results:
        for groups, gather_columns, kept in shard_results:
            rebased.append((
                [
                    (ckey, key, idx + base, size, partials)
                    for ckey, key, idx, size, partials in groups
                ],
                gather_columns,
            ))
            base += kept
    return parallel._merge_partial_aggregates(
        rebased, group_exprs, aggregates, modes, names
    )


def scatter_sort(
    name: str, table: Table, order_by, layout: ShardLayout, database, profiler
) -> Table | None:
    """Scatter an ORDER BY across shards; gather by stable k-way merge.

    Each shard sorts its extent with the serial multi-key routine; the
    merge comparator mirrors the serial NULL/ASC/DESC ordering and ties
    fall back to shard (= global row) order, reproducing the serial
    stable sort.  Returns None to decline (layout drift, NaN sort keys,
    or a degenerate layout) — the caller falls back.
    """
    if not order_by or layout.total_rows != table.num_rows or table.num_rows == 0:
        return None
    nonempty = [s for s in range(layout.num_shards) if layout.shard_rows(s) > 0]
    if len(nonempty) < 2:
        return None
    pooled = parallel.should_parallelize(table.num_rows)
    sources = _sources(name, table, layout, nonempty, database, pooled)
    tasks = [(source, order_by) for source in sources]
    get_registry().counter("shard.tasks").inc(len(tasks))
    if profiler is not None:
        profiler.annotate(
            f"shards: {len(tasks)} of {layout.num_shards} scheduled, 0 pruned"
        )
    if pooled:
        _note_shard_fanout(profiler, len(tasks))
    results = _run(_sort_shard_task, tasks, pooled)
    keys = []
    for item_index in range(len(order_by)):
        key_arr = np.concatenate([keys_part[item_index][0] for keys_part, _ in results])
        nulls = np.concatenate([keys_part[item_index][1] for keys_part, _ in results])
        keys.append((key_arr, nulls, results[0][0][item_index][2]))
    for key_arr, nulls, _ in keys:
        if key_arr.dtype.kind == "f" and bool(np.isnan(key_arr[~nulls]).any()):
            return None  # stable merge can't reproduce serial NaN ordering
    # key arrays concatenate only the nonempty shards, in shard order —
    # rebase each run onto that concatenation, not the global row space
    runs = []
    base = 0
    gather = np.empty(table.num_rows, dtype=np.int64)
    for s, (_, local) in zip(nonempty, results):
        runs.append(local + base)
        rows = layout.shard_rows(s)
        gather[base : base + rows] = np.arange(
            layout.offsets[s], layout.offsets[s + 1], dtype=np.int64
        )
        base += rows
    order = parallel._merge_sorted_runs(runs, keys)
    return table.take(gather[order])


# -- partition-local cracking --------------------------------------------------------


class ShardedCrackerIndex:
    """One lazy :class:`UpdatableCrackerIndex` per shard of a key column.

    Range lookups prune shards by the actual key min/max of each extent
    (computed lazily and NaN-safe: a NaN bound never proves exclusion),
    crack only the shards the range touches, and rebase the local row
    ids onto the shard's global offset.  Delta appends land in a linear
    tail buffer addressed at ``total_rows + i`` — matching the logical
    row ids the delta scan path expects — until the next merge rebuilds
    the index over the re-clustered main.
    """

    def __init__(
        self, column, layout: ShardLayout, variant: str = "standard", seed: int = 0
    ) -> None:
        self._column = column
        self._layout = layout
        self._variant = variant
        self._seed = seed
        self._crackers: dict[int, UpdatableCrackerIndex] = {}
        self._pending_deletes: dict[int, set[int]] = {}
        self._minmax: dict[int, tuple[float, float]] = {}
        self._tail_values: list[float] = []
        self._tail_dead: set[int] = set()
        self._next_id = layout.total_rows

    @property
    def shards_built(self) -> int:
        """Number of shards whose cracker has been materialised."""
        return len(self._crackers)

    def insert(self, value: Any) -> int:
        """Queue one appended row; returns its logical row id.  O(1)."""
        row_id = self._next_id
        self._next_id += 1
        self._tail_values.append(float(value))
        return row_id

    def delete(self, row_id: int) -> None:
        """Queue a delete by logical row id.  O(1)."""
        layout = self._layout
        if row_id >= layout.total_rows:
            self._tail_dead.add(row_id - layout.total_rows)
            return
        shard = bisect.bisect_right(layout.offsets, row_id) - 1
        local = row_id - layout.offsets[shard]
        cracker = self._crackers.get(shard)
        if cracker is not None:
            cracker.delete(local)
        else:
            self._pending_deletes.setdefault(shard, set()).add(local)

    def lookup_range(
        self,
        low: Any,
        high: Any,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> np.ndarray:
        """Global row ids whose key falls in the range, shard by shard."""
        layout = self._layout
        parts: list[np.ndarray] = []
        pruned = 0
        for shard in range(layout.num_shards):
            if layout.shard_rows(shard) == 0:
                continue
            if self._pruned(shard, low, high, low_inclusive, high_inclusive):
                pruned += 1
                continue
            local = self._cracker_for(shard).lookup_range(
                low, high, low_inclusive, high_inclusive
            )
            # sorted per shard -> globally ascending (extents ascend), so a
            # probe returns rows in physical order, bit-identical to a scan
            # regardless of this index's crack history
            parts.append(
                np.sort(np.asarray(local, dtype=np.int64)) + layout.offsets[shard]
            )
        if pruned:
            get_registry().counter("shard.shards_pruned").inc(pruned)
        for i, value in enumerate(self._tail_values):
            if i not in self._tail_dead and _value_in_range(
                value, low, high, low_inclusive, high_inclusive
            ):
                parts.append(
                    np.asarray([layout.total_rows + i], dtype=np.int64)
                )
        if not parts:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(parts)

    # -- internals -------------------------------------------------------------------

    def _shard_minmax(self, shard: int) -> tuple[float, float]:
        cached = self._minmax.get(shard)
        if cached is None:
            start, stop = self._layout.offsets[shard], self._layout.offsets[shard + 1]
            data = np.asarray(self._column.data[start:stop], dtype=np.float64)
            if len(data) == 0:
                cached = (math.inf, -math.inf)
            else:
                cached = (float(np.min(data)), float(np.max(data)))
            self._minmax[shard] = cached
        return cached

    def _pruned(self, shard, low, high, low_inc, high_inc) -> bool:
        mn, mx = self._shard_minmax(shard)
        # NaN bounds make every comparison False: the shard stays scheduled
        if low is not None and (mx < low or (mx == low and not low_inc)):
            return True
        if high is not None and (mn > high or (mn == high and not high_inc)):
            return True
        return False

    def _cracker_for(self, shard: int) -> UpdatableCrackerIndex:
        cracker = self._crackers.get(shard)
        if cracker is None:
            start, stop = self._layout.offsets[shard], self._layout.offsets[shard + 1]
            values = np.asarray(self._column.data[start:stop], dtype=np.float64)
            cracker = UpdatableCrackerIndex(
                values, variant=self._variant, seed=self._seed + shard
            )
            for local in self._pending_deletes.pop(shard, ()):
                cracker.delete(local)
            self._crackers[shard] = cracker
        return cracker


def _value_in_range(value: float, low, high, low_inc: bool, high_inc: bool) -> bool:
    if math.isnan(value):
        return False
    if low is not None and (value < low or (value == low and not low_inc)):
        return False
    if high is not None and (value > high or (value == high and not high_inc)):
        return False
    return True


# -- observability -------------------------------------------------------------------


def record_layout_metrics(layout: ShardLayout) -> None:
    """Publish the shard.* gauges describing one layout's row balance."""
    registry = get_registry()
    rows = [layout.shard_rows(s) for s in range(layout.num_shards)]
    biggest = max(rows) if rows else 0
    average = (sum(rows) / len(rows)) if rows else 0.0
    registry.gauge("shard.count").set(layout.num_shards)
    registry.gauge("shard.rows_max").set(biggest)
    registry.gauge("shard.rows_avg").set(average)
    registry.gauge("shard.skew_ratio").set(biggest / average if average else 0.0)
