"""Zone-map data skipping for scan predicates.

A :class:`~repro.engine.statistics.ZoneMap` summarises contiguous row
ranges ("zones") of a base table with per-column min/max/null/NaN
counts.  Before a scan evaluates its predicate row by row, each range
conjunct (recognised by :func:`~repro.engine.planner.extract_probe`) is
tested against the zone summaries, classifying every zone as:

- **FAIL** — no row of the zone can satisfy the conjunct as TRUE, so the
  whole predicate can't be TRUE there: the zone is skipped outright;
- **PASS** — every row provably satisfies *all* conjuncts (which requires
  every conjunct to be a recognised probe and the zone to carry no NULLs
  or NaNs): the zone is accepted wholesale;
- **MAYBE** — anything else: the predicate is evaluated per row, exactly
  as the unpruned scan would.

Soundness rests on two facts: NULL and NaN rows never satisfy a range
probe as TRUE (``extract_probe`` never emits ``<>`` probes), and zone
bounds are kept in the column's native dtype so decisions use the same
arithmetic as the expression kernels.  The pruned mask is bit-identical
to the serial ``truth_mask`` — FAIL zones would have produced all-False,
PASS zones all-True, and MAYBE zones are computed by the same row-local
kernel (serially or on the morsel pool).
"""

from __future__ import annotations

import numpy as np

from repro.engine import parallel
from repro.engine.expressions import Expression, truth_mask
from repro.engine.planner import RangeProbe, extract_probe, split_conjuncts
from repro.engine.statistics import ColumnZones, ZoneMap
from repro.resilience import current_context

#: Zone classifications, ordered so that ``min`` combines conjuncts:
#: a zone is as good as its worst conjunct.
FAIL, MAYBE, PASS = 0, 1, 2
_FAIL, _MAYBE, _PASS = FAIL, MAYBE, PASS


def _probe_statuses(probe: RangeProbe, zones: ColumnZones) -> np.ndarray:
    """Per-zone FAIL/MAYBE/PASS of one range conjunct."""
    num_zones = len(zones.mins)
    empty = zones.real_counts == 0
    # a zone of only NULL/NaN rows can't satisfy a range probe anywhere
    fail = empty.copy()
    can_pass = (zones.null_counts == 0) & (zones.nan_counts == 0) & ~empty
    if probe.low is not None:
        if probe.low_inclusive:
            fail |= ~empty & (zones.maxs < probe.low)
            can_pass &= zones.mins >= probe.low
        else:
            fail |= ~empty & (zones.maxs <= probe.low)
            can_pass &= zones.mins > probe.low
    if probe.high is not None:
        if probe.high_inclusive:
            fail |= ~empty & (zones.mins > probe.high)
            can_pass &= zones.maxs <= probe.high
        else:
            fail |= ~empty & (zones.mins >= probe.high)
            can_pass &= zones.maxs < probe.high
    status = np.full(num_zones, _MAYBE, dtype=np.int8)
    status[can_pass] = _PASS
    status[fail] = _FAIL
    return status


def zone_statuses(predicate: Expression, zone_map: ZoneMap) -> np.ndarray:
    """Per-zone FAIL/MAYBE/PASS classification of a whole scan predicate.

    Every range conjunct narrows the classification (``min``); conjuncts
    the probe extractor cannot read degrade PASS to MAYBE but leave FAIL
    standing — a single disproved conjunct disproves the conjunction.
    """
    statuses = np.full(zone_map.num_zones, _PASS, dtype=np.int8)
    for conj in split_conjuncts(predicate):
        probe = extract_probe(conj)
        zones = zone_map.column(probe.column) if probe is not None else None
        if zones is None:
            # unprovable conjunct: PASS degrades to MAYBE, FAIL stands
            np.minimum(statuses, _MAYBE, out=statuses)
        else:
            np.minimum(statuses, _probe_statuses(probe, zones), out=statuses)
    return statuses


def classify_ranges(
    predicate: Expression, zone_map: ZoneMap
) -> tuple[list[tuple[int, int, bool]], int, int, int]:
    """Zone-aligned row ranges that survive pruning, FAIL zones omitted.

    Returns ``(ranges, zones_pruned, zones_passed, num_zones)``.  Each
    range is ``(start, stop, evaluate)`` where ``evaluate`` is False for
    PASS zones (every row qualifies — no predicate evaluation needed)
    and True for MAYBE zones.  Because FAIL zones are never emitted, a
    consumer that only slices the returned ranges never reads the
    skipped rows at all — on a memory-mapped table the pruned pages are
    never faulted in, which is where zone pruning pays at the I/O level.
    """
    statuses = zone_statuses(predicate, zone_map)
    ranges = [
        (*zone_map.zone_bounds(int(zone)), bool(statuses[zone] != _PASS))
        for zone in np.flatnonzero(statuses != _FAIL)
    ]
    pruned = int((statuses == _FAIL).sum())
    passed = int((statuses == _PASS).sum())
    return ranges, pruned, passed, zone_map.num_zones


def pruned_truth_mask(
    predicate: Expression, table, zone_map: ZoneMap
) -> tuple[np.ndarray, int, int, int]:
    """Zone-pruned equivalent of ``truth_mask(predicate, table)``.

    Returns ``(mask, zones_pruned, zones_passed, num_zones)`` where the
    mask is bit-identical to the unpruned serial mask.
    """
    # Type errors are dtype-dependent, not data-dependent: surface them
    # exactly as the unpruned path would even when every zone is skipped.
    truth_mask(predicate, table.slice(0, 0))

    num_zones = zone_map.num_zones
    statuses = zone_statuses(predicate, zone_map)

    mask = np.zeros(zone_map.row_count, dtype=bool)
    passed = np.flatnonzero(statuses == _PASS)
    for zone in passed:
        start, stop = zone_map.zone_bounds(int(zone))
        mask[start:stop] = True

    ranges = [zone_map.zone_bounds(int(z)) for z in np.flatnonzero(statuses == _MAYBE)]
    if ranges:
        rows_to_eval = sum(stop - start for start, stop in ranges)
        if len(ranges) > 1 and parallel.should_parallelize(rows_to_eval):
            parts = parallel.mask_ranges(predicate, table, ranges)
        else:
            ctx = current_context()
            parts = []
            for start, stop in ranges:
                if ctx is not None:
                    ctx.check()
                parts.append(truth_mask(predicate, table.slice(start, stop)))
        for (start, stop), part in zip(ranges, parts):
            mask[start:stop] = part

    pruned = int((statuses == _FAIL).sum())
    return mask, pruned, len(passed), num_zones
