"""Column type system for the repro engine.

The engine supports four logical types, each backed by a NumPy dtype:

========= ================ =========================================
Logical    NumPy backing    Notes
========= ================ =========================================
INT64      ``int64``        exact integers
FLOAT64    ``float64``      IEEE doubles
BOOL       ``bool_``        predicates and flags
STRING     ``object``       Python ``str`` values (dictionary-free)
========= ================ =========================================

Nulls are represented out-of-band with a boolean validity mask on each
:class:`~repro.engine.column.Column`, so the payload arrays stay dense and
vectorisable.
"""

from __future__ import annotations

import enum
from typing import Any

import numpy as np

from repro.errors import TypeMismatchError


class DataType(enum.Enum):
    """Logical data types supported by the engine."""

    INT64 = "int64"
    FLOAT64 = "float64"
    BOOL = "bool"
    STRING = "string"

    @property
    def numpy_dtype(self) -> np.dtype:
        """The NumPy dtype used to store values of this logical type."""
        return _NUMPY_DTYPES[self]

    @property
    def is_numeric(self) -> bool:
        """True for INT64 and FLOAT64."""
        return self in (DataType.INT64, DataType.FLOAT64)

    @property
    def is_orderable(self) -> bool:
        """True if values of this type support ``<``/``>`` comparisons."""
        return self is not DataType.BOOL

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DataType.{self.name}"


_NUMPY_DTYPES = {
    DataType.INT64: np.dtype(np.int64),
    DataType.FLOAT64: np.dtype(np.float64),
    DataType.BOOL: np.dtype(np.bool_),
    DataType.STRING: np.dtype(object),
}


def infer_type(values: Any) -> DataType:
    """Infer the logical type of a NumPy array or Python sequence.

    Booleans are checked before integers because ``bool`` is a subclass of
    ``int`` in Python.

    Raises:
        TypeMismatchError: if the values mix incompatible kinds.
    """
    if isinstance(values, np.ndarray) and values.dtype != object:
        arr = values
        if arr.dtype == np.bool_:
            return DataType.BOOL
        if np.issubdtype(arr.dtype, np.integer):
            return DataType.INT64
        if np.issubdtype(arr.dtype, np.floating):
            return DataType.FLOAT64
        if arr.dtype.kind in ("U", "S"):
            return DataType.STRING
        raise TypeMismatchError(f"unsupported dtype {arr.dtype!r}")
    # Python sequence (or object array): inspect the value kinds directly —
    # np.asarray would silently stringify mixed input, masking type errors
    items = values.ravel().tolist() if isinstance(values, np.ndarray) else list(values)
    kinds = {type(v) for v in items if v is not None}
    numpy_bool = {k for k in kinds if issubclass(k, np.bool_)}
    numpy_int = {k for k in kinds if issubclass(k, np.integer)}
    numpy_float = {k for k in kinds if issubclass(k, np.floating)}
    kinds = (kinds - numpy_bool - numpy_int - numpy_float) | (
        {bool} if numpy_bool else set()
    ) | ({int} if numpy_int else set()) | ({float} if numpy_float else set())
    if not kinds:
        return DataType.FLOAT64  # empty / all-null: the permissive default
    if kinds <= {bool}:
        return DataType.BOOL
    if kinds <= {int, bool}:
        return DataType.INT64
    if kinds <= {int, float, bool}:
        return DataType.FLOAT64
    if kinds <= {str}:
        return DataType.STRING
    raise TypeMismatchError(f"cannot infer a column type for value kinds {kinds}")


def common_type(left: DataType, right: DataType) -> DataType:
    """Return the type two operands promote to in arithmetic/comparison.

    INT64 and FLOAT64 promote to FLOAT64; identical types promote to
    themselves.  Anything else is a type error.
    """
    if left == right:
        return left
    numeric = {DataType.INT64, DataType.FLOAT64}
    if left in numeric and right in numeric:
        return DataType.FLOAT64
    raise TypeMismatchError(f"no common type for {left.name} and {right.name}")


def coerce_array(values: Any, dtype: DataType) -> np.ndarray:
    """Coerce ``values`` into a NumPy array of the given logical type.

    Nulls (``None``) are not handled here; callers strip or mask them first.
    """
    if dtype is DataType.STRING:
        arr = np.empty(len(values), dtype=object)
        for i, v in enumerate(values):
            arr[i] = None if v is None else str(v)
        return arr
    try:
        return np.asarray(values, dtype=dtype.numpy_dtype)
    except (ValueError, TypeError) as exc:
        raise TypeMismatchError(f"cannot coerce values to {dtype.name}: {exc}") from exc


def python_value(value: Any) -> Any:
    """Convert a NumPy scalar to the closest native Python value."""
    if isinstance(value, np.generic):
        return value.item()
    return value
